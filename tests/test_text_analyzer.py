"""Tests for the analysis pipeline and stop words."""

from repro.text.analyzer import Analyzer, DEFAULT_ANALYZER
from repro.text.stopwords import ENGLISH_STOPWORDS, is_stopword


class TestStopwords:
    def test_paper_examples(self):
        # Definition 1 names "this" and "that" as excluded stop words.
        assert is_stopword("this")
        assert is_stopword("that")

    def test_common_words(self):
        for word in ["the", "a", "and", "is", "at"]:
            assert is_stopword(word)

    def test_content_words_kept(self):
        for word in ["hotel", "restaurant", "babysitter", "toronto"]:
            assert not is_stopword(word)

    def test_microblog_noise(self):
        assert is_stopword("rt")
        assert is_stopword("via")

    def test_list_is_lowercase(self):
        assert all(word == word.lower() for word in ENGLISH_STOPWORDS)


class TestAnalyzer:
    def test_full_pipeline(self):
        terms = Analyzer().analyze("I'm at the Four Seasons Hotels in Toronto!")
        assert "hotel" in terms          # stemmed plural
        assert "toronto" in terms
        assert "the" not in terms        # stop word
        assert "in" not in terms

    def test_bag_semantics_preserved(self):
        terms = Analyzer().analyze("pizza pizza pizza place")
        assert terms.count("pizza") == 3

    def test_no_stemming_option(self):
        analyzer = Analyzer(use_stemming=False)
        assert "hotels" in analyzer.analyze("nice hotels")

    def test_no_stopwords_option(self):
        analyzer = Analyzer(use_stopwords=False)
        assert "the" in analyzer.analyze("the hotel")

    def test_min_token_length(self):
        analyzer = Analyzer(min_token_length=3)
        terms = analyzer.analyze("go to big cafe")
        assert "go" not in terms
        assert "big" in terms

    def test_term_frequencies(self):
        freqs = Analyzer().term_frequencies("spicy restaurant, spicy!")
        assert freqs["spici"] == 2
        assert freqs["restaur"] == 1

    def test_query_keyword_analysis_deduplicates(self):
        analyzer = Analyzer()
        terms = analyzer.analyze_query_keywords(["restaurants", "restaurant"])
        assert terms == ["restaur"]

    def test_query_keywords_preserve_order(self):
        analyzer = Analyzer()
        terms = analyzer.analyze_query_keywords(["hotel", "spicy restaurant"])
        assert terms == ["hotel", "spici", "restaur"]

    def test_query_matches_document_normalisation(self):
        """The core IR invariant: a query keyword must hit the indexed
        form of the same surface word."""
        analyzer = DEFAULT_ANALYZER
        doc_terms = analyzer.analyze("Best restaurants in town")
        query_terms = analyzer.analyze_query_keywords(["restaurant"])
        assert set(query_terms) & set(doc_terms)

    def test_empty_input(self):
        assert Analyzer().analyze("") == []
        assert Analyzer().term_frequencies("") == {}
