"""Tests for the microblog tokenizer."""

from repro.text.tokenizer import iter_tokens, tokenize


class TestBasicTokenization:
    def test_simple_sentence(self):
        assert tokenize("I'm at Four Seasons Hotel Toronto") == [
            "i", "at", "four", "seasons", "hotel", "toronto"]

    def test_lowercasing(self):
        assert tokenize("HOTEL Hotel hotel") == ["hotel"] * 3

    def test_punctuation_split(self):
        assert tokenize("Finally Toronto (at Clarion Hotel).") == [
            "finally", "toronto", "at", "clarion", "hotel"]

    def test_numbers_kept(self):
        assert tokenize("meet at gate 42") == ["meet", "at", "gate", "42"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   !!! ...") == []


class TestMicroblogArtifacts:
    def test_urls_removed(self):
        assert tokenize("great pizza http://t.co/abc123 downtown") == [
            "great", "pizza", "downtown"]
        assert tokenize("see www.example.com now") == ["see", "now"]

    def test_mentions_removed(self):
        assert tokenize("@alice let's meet @bob_smith at the cafe") == [
            "let", "meet", "at", "the", "cafe"]

    def test_hashtags_keep_body(self):
        tokens = tokenize("Saturday night #fashion #style #toronto")
        assert "fashion" in tokens and "style" in tokens and "toronto" in tokens
        assert "#fashion" not in tokens

    def test_possessives_stripped(self):
        assert tokenize("marriott's rooftop") == ["marriott", "rooftop"]

    def test_paper_table1_tweet(self):
        tokens = tokenize(
            "And that was the best massage I've ever had."
            "(@ The Spa at Four Seasons Hotel Toronto)")
        assert "hotel" in tokens
        assert "massage" in tokens
        # "I've" keeps its head word only.
        assert "i" in tokens and "ve" not in tokens


class TestIterTokens:
    def test_matches_tokenize(self):
        text = "Veal, lemon ricotta gnocchi @ Four Seasons Hotel Toronto."
        assert list(iter_tokens(text)) == tokenize(text)
