"""Tests for the top-k user priority queue (Algorithm 5's topKUser)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.query.topk import TopKUserQueue


class TestBasics:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopKUserQueue(0)

    def test_fills_to_k(self):
        queue = TopKUserQueue(3)
        for uid in range(3):
            assert queue.offer(uid, float(uid))
        assert queue.full
        assert len(queue) == 3

    def test_peek_is_minimum(self):
        queue = TopKUserQueue(3)
        for uid, score in [(1, 0.5), (2, 0.2), (3, 0.9)]:
            queue.offer(uid, score)
        assert queue.peek() == 0.2

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            TopKUserQueue(3).peek()

    def test_threshold_before_full(self):
        queue = TopKUserQueue(3)
        queue.offer(1, 0.5)
        assert queue.threshold() == float("-inf")
        queue.offer(2, 0.6)
        queue.offer(3, 0.7)
        assert queue.threshold() == 0.5


class TestReplacement:
    def test_better_candidate_evicts_minimum(self):
        queue = TopKUserQueue(2)
        queue.offer(1, 0.1)
        queue.offer(2, 0.2)
        assert queue.offer(3, 0.5)
        assert 1 not in queue
        assert sorted(queue._scores) == [2, 3]

    def test_worse_candidate_rejected_when_full(self):
        queue = TopKUserQueue(2)
        queue.offer(1, 0.3)
        queue.offer(2, 0.4)
        assert not queue.offer(3, 0.1)
        assert not queue.offer(3, 0.3)  # tie with min also rejected
        assert 3 not in queue

    def test_existing_user_score_raised(self):
        queue = TopKUserQueue(2)
        queue.offer(1, 0.3)
        assert queue.offer(1, 0.7)
        assert queue.score_of(1) == 0.7
        assert len(queue) == 1

    def test_existing_user_score_never_lowered(self):
        queue = TopKUserQueue(2)
        queue.offer(1, 0.7)
        assert not queue.offer(1, 0.3)
        assert queue.score_of(1) == 0.7

    def test_raise_after_stale_heap_entries(self):
        queue = TopKUserQueue(2)
        queue.offer(1, 0.1)
        queue.offer(1, 0.5)
        queue.offer(2, 0.3)
        # Min must be 0.3, not the stale 0.1.
        assert queue.peek() == 0.3


class TestRanked:
    def test_descending_order(self):
        queue = TopKUserQueue(5)
        for uid, score in [(1, 0.2), (2, 0.9), (3, 0.5)]:
            queue.offer(uid, score)
        assert queue.ranked() == [(2, 0.9), (3, 0.5), (1, 0.2)]

    def test_ties_broken_by_uid(self):
        queue = TopKUserQueue(5)
        queue.offer(9, 0.5)
        queue.offer(3, 0.5)
        assert queue.ranked() == [(3, 0.5), (9, 0.5)]


offers = st.lists(st.tuples(st.integers(0, 30),
                            st.floats(min_value=0, max_value=1,
                                      allow_nan=False)),
                  min_size=1, max_size=200)


class TestPropertyBased:
    @given(offers, st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_oracle(self, sequence, k):
        queue = TopKUserQueue(k)
        best = {}
        for uid, score in sequence:
            queue.offer(uid, score)
            best[uid] = max(best.get(uid, float("-inf")), score)
        expected = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        got = queue.ranked()
        # Score multiset must match exactly; uid sets can differ only on
        # ties at the k-th score.
        assert [score for _u, score in got] == [score for _u, score in expected]
        expected_above_cut = {uid for uid, score in expected
                              if score > expected[-1][1]}
        got_uids = {uid for uid, _s in got}
        assert expected_above_cut <= got_uids

    @given(offers, st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_size_never_exceeds_k(self, sequence, k):
        queue = TopKUserQueue(k)
        for uid, score in sequence:
            queue.offer(uid, score)
            assert len(queue) <= k
