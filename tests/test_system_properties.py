"""System-level invariants of the full TkLUS pipeline."""

import pytest

from repro.core.model import Semantics
from repro.data.generator import generate_corpus
from repro.dfs.cluster import paper_cluster
from repro.index.builder import IndexConfig
from repro.query.engine import EngineConfig, TkLUSEngine


class TestTopKProperties:
    def test_smaller_k_is_prefix(self, engine, workload):
        """The top-5 must be a prefix of the top-10 (same query)."""
        for spec in workload.specs(1)[:5]:
            big = workload.bind(spec, radius_km=25.0, k=10)
            small = workload.bind(spec, radius_km=25.0, k=5,
                                  location=big.location)
            for method in ("sum", "max"):
                top10 = engine.search(big, method=method).users
                top5 = engine.search(small, method=method).users
                assert top10[:len(top5)] == top5

    def test_radius_monotone_candidates(self, engine, workload):
        """Growing the radius can only add candidates."""
        for spec in workload.specs(1)[:5]:
            inner = workload.bind(spec, radius_km=10.0)
            outer = workload.bind(spec, radius_km=30.0,
                                  location=inner.location)
            assert (engine.search_sum(outer).stats.candidates_in_radius
                    >= engine.search_sum(inner).stats.candidates_in_radius)

    def test_every_user_appears_once(self, engine, workload):
        for spec in workload.specs(1)[:5]:
            query = workload.bind(spec, radius_km=25.0, k=10)
            for method in ("sum", "max"):
                uids = [uid for uid, _s in engine.search(query, method=method).users]
                assert len(uids) == len(set(uids))


class TestBuildDeterminism:
    @pytest.fixture(scope="class")
    def posts(self):
        return generate_corpus(num_users=100, num_root_tweets=400,
                               seed=23).posts

    def _rankings(self, engine, keywords=("restaurant",)):
        query = engine.make_query((43.6532, -79.3832), 25.0, list(keywords),
                                  k=10)
        return engine.search_sum(query).users

    def test_rebuild_identical(self, posts):
        a = TkLUSEngine.from_posts(posts, precompute_bounds=False)
        b = TkLUSEngine.from_posts(posts, precompute_bounds=False)
        assert self._rankings(a) == self._rankings(b)

    def test_parallel_build_identical(self, posts):
        sequential = TkLUSEngine.from_posts(
            posts, config=EngineConfig(index=IndexConfig(workers=1)),
            precompute_bounds=False)
        parallel = TkLUSEngine.from_posts(
            posts, config=EngineConfig(index=IndexConfig(workers=4)),
            precompute_bounds=False)
        assert self._rankings(sequential) == self._rankings(parallel)

    def test_task_count_invariant(self, posts):
        few = TkLUSEngine.from_posts(
            posts, config=EngineConfig(index=IndexConfig(
                num_map_tasks=1, num_reduce_tasks=1)),
            precompute_bounds=False)
        many = TkLUSEngine.from_posts(
            posts, config=EngineConfig(index=IndexConfig(
                num_map_tasks=8, num_reduce_tasks=7)),
            precompute_bounds=False)
        assert self._rankings(few) == self._rankings(many)

    def test_geohash_length_invariant_results(self, posts):
        """The encoding length changes performance, never answers."""
        engines = [
            TkLUSEngine.from_posts(
                posts, cluster=paper_cluster(),
                config=EngineConfig(index=IndexConfig(geohash_length=n)),
                precompute_bounds=False)
            for n in (2, 3, 4)
        ]
        baseline = self._rankings(engines[0])
        for engine in engines[1:]:
            assert self._rankings(engine) == baseline


class TestScoreSemantics:
    def test_alpha_zero_ranks_by_distance_only(self, workload):
        from repro.core.scoring import ScoringConfig
        posts = generate_corpus(num_users=100, num_root_tweets=400,
                                seed=29).posts
        engine = TkLUSEngine.from_posts(
            posts, config=EngineConfig(scoring=ScoringConfig(alpha=0.0)),
            precompute_bounds=False)
        query = engine.make_query((43.6532, -79.3832), 25.0,
                                  ["restaurant"], k=10)
        result = engine.search_sum(query)
        # With alpha = 0 the score is exactly delta(u, q) <= 1.
        for _uid, score in result.users:
            assert 0.0 <= score <= 1.0

    def test_alpha_one_ignores_distance_part(self):
        from repro.core.scoring import ScoringConfig
        posts = generate_corpus(num_users=100, num_root_tweets=400,
                                seed=29).posts
        keyword_only = TkLUSEngine.from_posts(
            posts, config=EngineConfig(scoring=ScoringConfig(alpha=1.0)),
            precompute_bounds=False)
        query = keyword_only.make_query((43.6532, -79.3832), 25.0,
                                        ["restaurant"], k=10)
        result = keyword_only.search_sum(query)
        # Scores are pure keyword relevance sums: strictly positive for
        # every returned user.
        for _uid, score in result.users:
            assert score > 0.0
