"""Tests for saving/loading a built engine."""

import json
import os

import pytest

from repro.data.generator import generate_corpus
from repro.dfs.cluster import paper_cluster
from repro.index.builder import IndexConfig
from repro.index.generations import GenerationalIndex
from repro.query.engine import EngineConfig, TkLUSEngine
from repro.query.persistence import (
    MANIFEST_NAME,
    PersistenceError,
    load_engine,
    save_engine,
)


@pytest.fixture(scope="module")
def built_engine():
    corpus = generate_corpus(num_users=120, num_root_tweets=500, seed=31)
    return corpus, TkLUSEngine.from_posts(corpus.posts)


class TestRoundtrip:
    def test_save_load_preserves_rankings(self, built_engine, tmp_path):
        corpus, engine = built_engine
        directory = str(tmp_path / "deployment")
        save_engine(engine, directory)
        loaded = load_engine(directory)

        for keywords, radius in ((["restaurant"], 15.0), (["hotel"], 30.0)):
            query = engine.make_query((43.6532, -79.3832), radius, keywords,
                                      k=10)
            original = engine.search_sum(query).users
            reloaded = loaded.search_sum(query).users
            assert [(u, pytest.approx(s)) for u, s in original] == reloaded
            original_max = engine.search_max(query).users
            reloaded_max = loaded.search_max(query).users
            assert [(u, pytest.approx(s)) for u, s in original_max] \
                == reloaded_max

    def test_bounds_preserved(self, built_engine, tmp_path):
        _corpus, engine = built_engine
        directory = str(tmp_path / "bounds")
        save_engine(engine, directory)
        loaded = load_engine(directory)
        assert loaded.bounds.global_bound == engine.bounds.global_bound
        assert loaded.bounds.keyword_bounds == engine.bounds.keyword_bounds

    def test_database_size_preserved(self, built_engine, tmp_path):
        corpus, engine = built_engine
        directory = str(tmp_path / "db")
        save_engine(engine, directory)
        loaded = load_engine(directory)
        assert len(loaded.database) == len(corpus.posts)
        loaded.database.check_invariants()

    def test_manifest_contents(self, built_engine, tmp_path):
        _corpus, engine = built_engine
        directory = str(tmp_path / "manifest")
        save_engine(engine, directory)
        with open(os.path.join(directory, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["index"]["geohash_length"] == 4
        assert manifest["index"]["postings_format"] == "block"
        assert manifest["index"]["block_size"] == 128
        assert manifest["scoring"]["alpha"] == 0.5
        assert manifest["parts"]


class TestMigration:
    """Deployments saved before the block postings format keep working."""

    def make_flat_deployment(self, tmp_path):
        """A saved engine exactly as pre-block code wrote it: flat
        12-byte postings payloads and a manifest without the
        postings_format / block_size keys."""
        corpus = generate_corpus(num_users=80, num_root_tweets=300, seed=53)
        config = EngineConfig(index=IndexConfig(postings_format="flat"))
        flat_engine = TkLUSEngine.from_posts(corpus.posts, config=config)
        directory = str(tmp_path / "legacy")
        save_engine(flat_engine, directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        del manifest["index"]["postings_format"]
        del manifest["index"]["block_size"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        return corpus, directory

    def test_legacy_manifest_defaults_to_flat(self, tmp_path):
        _corpus, directory = self.make_flat_deployment(tmp_path)
        loaded = load_engine(directory)
        assert loaded.index.config.postings_format == "flat"

    def test_legacy_flat_deployment_matches_block_rebuild(self, tmp_path):
        # The migration round trip: the same corpus built fresh under the
        # block format must rank identically to the legacy flat
        # deployment read through the version-dispatching reader.
        corpus, directory = self.make_flat_deployment(tmp_path)
        legacy = load_engine(directory)
        block_engine = TkLUSEngine.from_posts(corpus.posts)
        assert block_engine.index.config.postings_format == "block"
        for keywords, radius in ((["restaurant"], 15.0),
                                 (["hotel", "museum"], 30.0)):
            query = legacy.make_query((43.6532, -79.3832), radius, keywords,
                                      k=10)
            assert (legacy.search_sum(query).users
                    == block_engine.search_sum(query).users)
            assert (legacy.search_max(query).users
                    == block_engine.search_max(query).users)

    def test_block_deployment_round_trips(self, built_engine, tmp_path):
        # Block-format payloads survive save -> load byte-for-byte: the
        # reloaded engine decodes them lazily, not as flat entries.
        _corpus, engine = built_engine
        directory = str(tmp_path / "blockdep")
        save_engine(engine, directory)
        loaded = load_engine(directory)
        assert loaded.index.config.postings_format == "block"
        query = loaded.make_query((43.6532, -79.3832), 20.0, ["restaurant"],
                                  k=5)
        result = loaded.search_sum(query)
        assert result.users
        assert loaded.index.stats.blocks_decoded > 0


def _make_generational_engine(corpus, postings_format="block"):
    """An engine whose index is a three-batch GenerationalIndex (the
    index-swap wiring the generational tests established)."""
    posts = corpus.posts
    third = len(posts) // 3
    batches = [posts[:third], posts[third:2 * third], posts[2 * third:]]
    generational = GenerationalIndex(
        paper_cluster(), config=IndexConfig(postings_format=postings_format))
    for batch in batches:
        generational.ingest(batch)
    engine = TkLUSEngine.from_posts(
        posts, config=EngineConfig(
            index=IndexConfig(postings_format=postings_format)))
    engine.index = generational
    engine._sum.index = generational
    engine._max.index = generational
    return engine


class TestGenerationalRoundtrip:
    """save/load over a GenerationalIndex — previously unsupported."""

    @pytest.fixture(scope="class")
    def gen_corpus(self):
        return generate_corpus(num_users=100, num_root_tweets=400, seed=19)

    @pytest.mark.parametrize("postings_format", ["block", "flat"])
    def test_generational_round_trip_preserves_rankings(
            self, gen_corpus, tmp_path, postings_format):
        engine = _make_generational_engine(gen_corpus, postings_format)
        directory = str(tmp_path / f"gen-{postings_format}")
        save_engine(engine, directory)
        loaded = load_engine(directory)
        assert isinstance(loaded.index, GenerationalIndex)
        assert loaded.index.generation_count == 3
        assert loaded.index.base_config.postings_format == postings_format
        for keywords, radius in ((["restaurant"], 15.0),
                                 (["hotel", "museum"], 30.0)):
            query = engine.make_query((43.6532, -79.3832), radius, keywords,
                                      k=10)
            original = engine.search_sum(query).users
            assert [(u, pytest.approx(s)) for u, s in original] \
                == loaded.search_sum(query).users
            original_max = engine.search_max(query).users
            assert [(u, pytest.approx(s)) for u, s in original_max] \
                == loaded.search_max(query).users

    def test_generational_manifest_shape(self, gen_corpus, tmp_path):
        engine = _make_generational_engine(gen_corpus)
        directory = str(tmp_path / "gen-manifest")
        save_engine(engine, directory)
        with open(os.path.join(directory, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["parts"] == []
        assert [entry["number"] for entry in manifest["generations"]] \
            == [0, 1, 2]
        for entry in manifest["generations"]:
            assert entry["parts"]
            assert entry["post_count"] > 0

    def test_loaded_generational_keeps_generation_numbering(
            self, gen_corpus, tmp_path):
        engine = _make_generational_engine(gen_corpus)
        directory = str(tmp_path / "gen-number")
        save_engine(engine, directory)
        loaded = load_engine(directory)
        fresh = loaded.index.ingest(gen_corpus.posts[:50])
        assert fresh.number == 3  # continues after the saved generations

    def test_loaded_generational_compact_requires_posts(
            self, gen_corpus, tmp_path):
        # Batches are not persisted, so a loaded index cannot compact
        # from retention — it must say so instead of silently rebuilding
        # from nothing.
        engine = _make_generational_engine(gen_corpus)
        directory = str(tmp_path / "gen-compact")
        save_engine(engine, directory)
        loaded = load_engine(directory)
        with pytest.raises(ValueError, match="retain_batches"):
            loaded.index.compact()

    def test_index_report_survives_generational_index(self, gen_corpus):
        engine = _make_generational_engine(gen_corpus)
        report = engine.index_report()
        assert report["tweets"] == len(gen_corpus.posts)
        assert report["forward_entries"] is None  # no single forward index
        assert report["inverted_bytes"] > 0


class TestExplicitFormatRoundtrip:
    """Both postings formats must survive a monolithic round trip."""

    @pytest.mark.parametrize("postings_format", ["block", "flat"])
    def test_format_round_trip(self, tmp_path, postings_format):
        corpus = generate_corpus(num_users=80, num_root_tweets=300, seed=23)
        engine = TkLUSEngine.from_posts(
            corpus.posts, config=EngineConfig(
                index=IndexConfig(postings_format=postings_format)))
        directory = str(tmp_path / postings_format)
        save_engine(engine, directory)
        loaded = load_engine(directory)
        assert loaded.index.config.postings_format == postings_format
        query = engine.make_query((43.6532, -79.3832), 20.0,
                                  ["restaurant", "pizza"], k=10)
        original = engine.search_max(query).users
        assert [(u, pytest.approx(s)) for u, s in original] \
            == loaded.search_max(query).users


class TestErrors:
    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_engine(str(tmp_path / "nothing"))

    def test_double_save_rejected(self, built_engine, tmp_path):
        _corpus, engine = built_engine
        directory = str(tmp_path / "twice")
        save_engine(engine, directory)
        with pytest.raises(PersistenceError):
            save_engine(engine, directory)

    def test_bad_version_rejected(self, built_engine, tmp_path):
        _corpus, engine = built_engine
        directory = str(tmp_path / "versioned")
        save_engine(engine, directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = 999
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(PersistenceError):
            load_engine(directory)

    def test_tweet_count_mismatch_rejected(self, built_engine, tmp_path):
        _corpus, engine = built_engine
        directory = str(tmp_path / "mismatch")
        save_engine(engine, directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["tweets"] += 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(PersistenceError):
            load_engine(directory)
