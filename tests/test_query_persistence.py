"""Tests for saving/loading a built engine."""

import json
import os

import pytest

from repro.data.generator import generate_corpus
from repro.index.builder import IndexConfig
from repro.query.engine import EngineConfig, TkLUSEngine
from repro.query.persistence import (
    MANIFEST_NAME,
    PersistenceError,
    load_engine,
    save_engine,
)


@pytest.fixture(scope="module")
def built_engine():
    corpus = generate_corpus(num_users=120, num_root_tweets=500, seed=31)
    return corpus, TkLUSEngine.from_posts(corpus.posts)


class TestRoundtrip:
    def test_save_load_preserves_rankings(self, built_engine, tmp_path):
        corpus, engine = built_engine
        directory = str(tmp_path / "deployment")
        save_engine(engine, directory)
        loaded = load_engine(directory)

        for keywords, radius in ((["restaurant"], 15.0), (["hotel"], 30.0)):
            query = engine.make_query((43.6532, -79.3832), radius, keywords,
                                      k=10)
            original = engine.search_sum(query).users
            reloaded = loaded.search_sum(query).users
            assert [(u, pytest.approx(s)) for u, s in original] == reloaded
            original_max = engine.search_max(query).users
            reloaded_max = loaded.search_max(query).users
            assert [(u, pytest.approx(s)) for u, s in original_max] \
                == reloaded_max

    def test_bounds_preserved(self, built_engine, tmp_path):
        _corpus, engine = built_engine
        directory = str(tmp_path / "bounds")
        save_engine(engine, directory)
        loaded = load_engine(directory)
        assert loaded.bounds.global_bound == engine.bounds.global_bound
        assert loaded.bounds.keyword_bounds == engine.bounds.keyword_bounds

    def test_database_size_preserved(self, built_engine, tmp_path):
        corpus, engine = built_engine
        directory = str(tmp_path / "db")
        save_engine(engine, directory)
        loaded = load_engine(directory)
        assert len(loaded.database) == len(corpus.posts)
        loaded.database.check_invariants()

    def test_manifest_contents(self, built_engine, tmp_path):
        _corpus, engine = built_engine
        directory = str(tmp_path / "manifest")
        save_engine(engine, directory)
        with open(os.path.join(directory, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["index"]["geohash_length"] == 4
        assert manifest["index"]["postings_format"] == "block"
        assert manifest["index"]["block_size"] == 128
        assert manifest["scoring"]["alpha"] == 0.5
        assert manifest["parts"]


class TestMigration:
    """Deployments saved before the block postings format keep working."""

    def make_flat_deployment(self, tmp_path):
        """A saved engine exactly as pre-block code wrote it: flat
        12-byte postings payloads and a manifest without the
        postings_format / block_size keys."""
        corpus = generate_corpus(num_users=80, num_root_tweets=300, seed=53)
        config = EngineConfig(index=IndexConfig(postings_format="flat"))
        flat_engine = TkLUSEngine.from_posts(corpus.posts, config=config)
        directory = str(tmp_path / "legacy")
        save_engine(flat_engine, directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        del manifest["index"]["postings_format"]
        del manifest["index"]["block_size"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        return corpus, directory

    def test_legacy_manifest_defaults_to_flat(self, tmp_path):
        _corpus, directory = self.make_flat_deployment(tmp_path)
        loaded = load_engine(directory)
        assert loaded.index.config.postings_format == "flat"

    def test_legacy_flat_deployment_matches_block_rebuild(self, tmp_path):
        # The migration round trip: the same corpus built fresh under the
        # block format must rank identically to the legacy flat
        # deployment read through the version-dispatching reader.
        corpus, directory = self.make_flat_deployment(tmp_path)
        legacy = load_engine(directory)
        block_engine = TkLUSEngine.from_posts(corpus.posts)
        assert block_engine.index.config.postings_format == "block"
        for keywords, radius in ((["restaurant"], 15.0),
                                 (["hotel", "museum"], 30.0)):
            query = legacy.make_query((43.6532, -79.3832), radius, keywords,
                                      k=10)
            assert (legacy.search_sum(query).users
                    == block_engine.search_sum(query).users)
            assert (legacy.search_max(query).users
                    == block_engine.search_max(query).users)

    def test_block_deployment_round_trips(self, built_engine, tmp_path):
        # Block-format payloads survive save -> load byte-for-byte: the
        # reloaded engine decodes them lazily, not as flat entries.
        _corpus, engine = built_engine
        directory = str(tmp_path / "blockdep")
        save_engine(engine, directory)
        loaded = load_engine(directory)
        assert loaded.index.config.postings_format == "block"
        query = loaded.make_query((43.6532, -79.3832), 20.0, ["restaurant"],
                                  k=5)
        result = loaded.search_sum(query)
        assert result.users
        assert loaded.index.stats.blocks_decoded > 0


class TestErrors:
    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_engine(str(tmp_path / "nothing"))

    def test_double_save_rejected(self, built_engine, tmp_path):
        _corpus, engine = built_engine
        directory = str(tmp_path / "twice")
        save_engine(engine, directory)
        with pytest.raises(PersistenceError):
            save_engine(engine, directory)

    def test_bad_version_rejected(self, built_engine, tmp_path):
        _corpus, engine = built_engine
        directory = str(tmp_path / "versioned")
        save_engine(engine, directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = 999
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(PersistenceError):
            load_engine(directory)

    def test_tweet_count_mismatch_rejected(self, built_engine, tmp_path):
        _corpus, engine = built_engine
        directory = str(tmp_path / "mismatch")
        save_engine(engine, directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["tweets"] += 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(PersistenceError):
            load_engine(directory)
