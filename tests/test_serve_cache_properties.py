"""Property test: the result cache can never serve a stale answer.

For *any* interleaving of ingest appends and served (cached) queries,
every answer the server returns must be identical to a fresh, uncached
execution of the same query at the same watermark.  The property holds
because the cache key embeds the ``(watermark, generation epoch)``
version token, which moves on every append and every flush — hypothesis
explores interleavings (including flush boundaries, where the watermark
itself regresses and only the epoch distinguishes states).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.model import Semantics  # noqa: E402
from repro.data.generator import generate_corpus  # noqa: E402
from repro.data.queries import QueryWorkload  # noqa: E402
from repro.ingest import IngestConfig, IngestService  # noqa: E402
from repro.serve import QueryServer, ServeConfig  # noqa: E402

NUM_QUERIES = 4
PRELOAD = 80
#: small enough that append bursts regularly cross flush boundaries
FLUSH_POSTS = 25


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(num_users=40, num_root_tweets=200, seed=19)


@pytest.fixture(scope="module")
def query_pool(corpus):
    workload = QueryWorkload(corpus, seed=5)
    return workload.make_queries(1, 30.0, k=5, semantics=Semantics.OR,
                                 limit=NUM_QUERIES)


#: an operation is either an append burst (size 1-12) or a query index
operations = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(min_value=1, max_value=12)),
        st.tuples(st.just("query"), st.integers(min_value=0,
                                                max_value=NUM_QUERIES - 1)),
    ),
    min_size=1, max_size=12)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=operations)
def test_cached_results_match_fresh_execution(tmp_path_factory, corpus,
                                              query_pool, ops):
    directory = tmp_path_factory.mktemp("serve-prop")
    service = IngestService(
        str(directory / "svc"),
        ingest_config=IngestConfig(flush_posts=FLUSH_POSTS))
    posts = iter(corpus.posts)
    for _ in range(PRELOAD):
        service.append(next(posts))
    service.flush()
    engine = service.build_query_engine()
    try:
        with QueryServer(engine, live=service.live,
                         config=ServeConfig(workers=2)) as server:
            hits = 0
            for kind, value in ops:
                if kind == "append":
                    for _ in range(value):
                        post = next(posts, None)
                        if post is None:
                            break
                        service.append(post)
                else:
                    query = query_pool[value]
                    ticket = server.submit(query)
                    served = ticket.result(60.0)
                    hits += ticket.cached
                    # Fresh uncached execution at the same watermark —
                    # no appends run between the served result and this
                    # check, so any difference is a stale cache entry.
                    fresh = engine.search(query, "max").users
                    assert served == fresh
            stats = server.stats()["cache"]
            assert stats["hits"] == hits
    finally:
        service.close()
