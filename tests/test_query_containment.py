"""Tests for the inside/boundary cell-containment optimization."""

import pytest

from repro.query.max_ranking import MaxScoreProcessor
from repro.query.sum_ranking import SumScoreProcessor


def make_processors(engine, use_containment):
    sum_processor = SumScoreProcessor(
        engine.index, engine.database, engine.threads,
        engine.config.scoring, engine.metric,
        use_cell_containment=use_containment)
    max_processor = MaxScoreProcessor(
        engine.index, engine.database, engine.threads, engine.bounds,
        engine.config.scoring, engine.metric,
        use_cell_containment=use_containment)
    return sum_processor, max_processor


class TestAnswerPreservation:
    @pytest.mark.parametrize("radius", [10.0, 30.0, 60.0])
    def test_rankings_identical(self, engine, workload, radius):
        with_sum, with_max = make_processors(engine, True)
        without_sum, without_max = make_processors(engine, False)
        for spec in workload.specs(1)[:6]:
            query = workload.bind(spec, radius_km=radius, k=10)
            engine.threads.clear_cache()
            a = with_sum.search(query)
            engine.threads.clear_cache()
            b = without_sum.search(query)
            assert a.users == b.users
            engine.threads.clear_cache()
            c = with_max.search(query)
            engine.threads.clear_cache()
            d = without_max.search(query)
            assert c.users == d.users

    def test_candidate_counts_identical(self, engine, workload):
        with_sum, _ = make_processors(engine, True)
        without_sum, _ = make_processors(engine, False)
        for spec in workload.specs(1)[:6]:
            query = workload.bind(spec, radius_km=40.0, k=10)
            a = with_sum.search(query)
            b = without_sum.search(query)
            assert a.stats.candidates_in_radius == b.stats.candidates_in_radius


class TestSkipAccounting:
    def test_skips_happen_at_large_radius(self, engine, workload):
        """Radii well above the cell size produce fully-inside cells, so
        some distance checks must be skipped."""
        with_sum, _ = make_processors(engine, True)
        total_skipped = 0
        for spec in workload.specs(1)[:8]:
            query = workload.bind(spec, radius_km=60.0, k=10)
            total_skipped += with_sum.search(query).stats.distance_checks_skipped
        assert total_skipped > 0

    def test_no_skips_when_disabled(self, engine, workload):
        _, without_max = make_processors(engine, False)
        query = workload.bind(workload.specs(1)[0], radius_km=60.0, k=10)
        assert without_max.search(query).stats.distance_checks_skipped == 0

    def test_small_radius_may_have_no_inside_cells(self, engine, workload):
        """At radii below the cell size, no cell is fully inside — the
        optimization silently degrades to the baseline behaviour."""
        with_sum, _ = make_processors(engine, True)
        query = workload.bind(workload.specs(1)[0], radius_km=2.0, k=10)
        result = with_sum.search(query)
        # Works either way; just must not crash or alter shape.
        assert result.stats.distance_checks_skipped >= 0
