"""RL102 seeded violations: registry pins leaked on some path."""


def snapshot_leaks_on_exception(registry, compute):
    pin = registry.pin()  # seeded-violation
    # compute() may raise -> the pin is never released on that path.
    result = compute(pin.items)
    pin.release()
    return result


def early_return_leaks(registry, wanted):
    pin = registry.pin()  # seeded-violation
    if wanted not in pin.items:
        return None
    value = len(pin.items)
    pin.release()
    return value
