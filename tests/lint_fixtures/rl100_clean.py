"""RL100 clean twin: every guarded access is under the lock, via a
``holds-lock`` method, or via the ``_locked``-suffix convention."""

import threading


class Telemetry:
    def __init__(self):
        self._lock = threading.Lock()
        self._events = 0  # guarded-by: _lock
        self._dropped = 0  # guarded-by: _lock

    def record(self):
        with self._lock:
            self._events += 1

    def drop(self):
        with self._lock:
            self._events += 1
            self._dropped += 1

    def snapshot(self):
        with self._lock:
            return self._events, self._dropped

    # holds-lock: _lock
    def _flush_unlocked_name(self):
        return self._events

    def _drain_locked(self):
        drained = self._events + self._dropped
        self._events = 0
        self._dropped = 0
        return drained
