"""RL106 clean twin: context manager, try/finally, and the exempt
lock-wrapper class that legitimately calls the primitives."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def bump(self, amount):
        with self._lock:
            self._value += amount

    def bump_raw(self, amount):
        self._lock.acquire()
        try:
            self._value += amount
        finally:
            self._lock.release()


class TracingLock:
    def __init__(self, inner):
        self._inner_lock = inner
        self.acquired = 0

    def acquire(self):
        self._inner_lock.acquire()
        self.acquired += 1
