"""RL105 seeded violation: the registry is published before the rename
makes the manifest durable -- a crash in between exposes state recovery
will not rebuild."""

import os


def commit_generation(registry, entry, manifest_tmp, manifest_path):
    registry.append(entry)  # seeded-violation
    os.replace(manifest_tmp, manifest_path)
