"""Seeded-violation fixture corpus for the RL100 concurrency family.

Each rule has a ``rlNNN_violation.py`` that must produce exactly the
seeded findings and an ``rlNNN_clean.py`` twin that must produce none.
``tests/test_lint_concurrency.py`` runs every pair through
:func:`repro.lint.lint_source`; a rule change that stops catching its
violation (or starts flagging its clean twin) fails the suite.

The fixtures are data, not code under test: the RL100 family sets
``include_tests = False``, so linting the real tree never scans them,
and the test harness passes the rules explicitly.
"""
