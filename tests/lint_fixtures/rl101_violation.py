"""RL101 seeded violation: the same two locks nested in both orders."""

import threading


class Pair:
    def __init__(self):
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()
        self.forward_steps = 0
        self.backward_steps = 0

    def forward(self):
        with self._alpha_lock:
            with self._beta_lock:  # seeded-violation
                self.forward_steps += 1

    def backward(self):
        with self._beta_lock:
            with self._alpha_lock:
                self.backward_steps += 1
