"""RL101 clean twin: both paths honour one global order (alpha first)."""

import threading


class Pair:
    def __init__(self):
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()
        self.forward_steps = 0
        self.backward_steps = 0

    def forward(self):
        with self._alpha_lock:
            with self._beta_lock:
                self.forward_steps += 1

    def backward(self):
        with self._alpha_lock:
            with self._beta_lock:
                self.backward_steps += 1
