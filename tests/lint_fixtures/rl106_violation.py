"""RL106 seeded violations: raw acquire without release on every path."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def bump(self, amount):
        self._lock.acquire()  # seeded-violation
        # amount may be anything -> the += can raise with the lock held.
        self._value += amount
        self._lock.release()

    def take_forever(self):
        self._lock.acquire()  # seeded-violation
        return self._value
