"""RL103 seeded violations: lifecycle state changed outside the diagram."""

from repro.compaction.lifecycle import GenerationState, advance_state


def resurrect(generation):
    generation.state = GenerationState.ACTIVE  # seeded-violation


def skip_the_check(generation):
    advance_state(GenerationState.REMOVED, GenerationState.ACTIVE)  # seeded-violation
