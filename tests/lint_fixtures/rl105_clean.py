"""RL105 clean twin: publish strictly follows the durable commit (and a
pure in-memory publish with no commit in sight is not a commit section)."""

import os


def commit_generation(registry, entry, manifest_tmp, manifest_path):
    os.replace(manifest_tmp, manifest_path)
    registry.append(entry)


def swap_in_memory(generations, items):
    generations.swap(items)
