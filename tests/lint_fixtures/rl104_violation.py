"""RL104 seeded violations: rename commits data that was never fsynced."""

import json
import os


def commit_manifest_no_fsync(path, payload):
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(json.dumps(payload))
    os.replace(tmp, path)  # seeded-violation


def fsync_then_write_again(path, payload):
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(payload)
        os.fsync(handle.fileno())
        handle.write("\n")
    os.replace(tmp, path)  # seeded-violation
