"""RL100 seeded violations: guarded-by fields touched without the lock."""

import threading


class Telemetry:
    def __init__(self):
        self._lock = threading.Lock()
        self._events = 0  # guarded-by: _lock
        self._dropped = 0  # guarded-by: _lock

    def record(self):
        self._events += 1  # seeded-violation

    def drop(self):
        with self._lock:
            self._events += 1
        self._dropped += 1  # seeded-violation

    def snapshot(self):
        with self._lock:
            events = self._events
        return events, self._dropped  # seeded-violation
