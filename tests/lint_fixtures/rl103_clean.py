"""RL103 clean twin: transitions go through advance_state and stay on
the ACTIVE -> COMPACTING -> SUPERSEDED -> REMOVED diagram."""

from repro.compaction.lifecycle import GenerationState, advance_state


def begin_compaction(generation):
    generation.state = advance_state(generation.state,
                                     GenerationState.COMPACTING)


def supersede(generation):
    generation.state = advance_state(GenerationState.COMPACTING,
                                     GenerationState.SUPERSEDED)


def reclaim(generation):
    generation.state = advance_state(GenerationState.SUPERSEDED,
                                     GenerationState.REMOVED)


def dynamic_operands_are_runtime_checked(generation, target):
    generation.state = advance_state(generation.state, target)
