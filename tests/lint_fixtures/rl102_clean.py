"""RL102 clean twin: every acquisition shape that counts as released.

Covers the finally block, the ``with registry.pinned()`` manager, the
rescue pattern (catch-all handler + ``if pin is not None`` guarded
release), and ownership escape by return.
"""


def snapshot_with_finally(registry, compute):
    pin = registry.pin()
    try:
        return compute(pin.items)
    finally:
        pin.release()


def snapshot_with_manager(registry, compute):
    with registry.pinned() as items:
        return compute(items)


def snapshot_with_rescue(registry, make_snapshot):
    # Ownership transfers to the snapshot on success; the catch-all
    # handler releases on any failure before the handoff.
    pin = None
    try:
        pin = registry.pin()
        return make_snapshot(pin)
    except BaseException:
        if pin is not None:
            pin.release()
        raise


def hand_off(registry):
    pin = registry.pin()
    return pin
