"""RL104 clean twin: the full write -> flush -> fsync -> rename protocol,
plus a rename of data this function never wrote (not a commit section)."""

import json
import os


def commit_manifest(path, payload):
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(json.dumps(payload))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def rotate(old_path, new_path):
    os.replace(old_path, new_path)
