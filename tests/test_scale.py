"""A moderate-scale end-to-end run: the full pipeline on a corpus an
order of magnitude larger than the unit-test fixtures.

Keeps total runtime in tens of seconds; exercises index construction,
metadata loading, bound pre-computation, and a mixed query workload at
a scale where splits, multi-level B+-trees and multi-block DFS files all
actually occur.
"""

import pytest

from repro.core.model import Semantics
from repro.data.generator import generate_corpus
from repro.data.queries import QueryWorkload
from repro.query.engine import TkLUSEngine


@pytest.fixture(scope="module")
def scale_corpus():
    return generate_corpus(num_users=2000, num_root_tweets=10000, seed=2025)


@pytest.fixture(scope="module")
def scale_engine(scale_corpus):
    return TkLUSEngine.from_posts(scale_corpus.posts)


class TestScale:
    def test_corpus_size(self, scale_corpus):
        assert len(scale_corpus.posts) > 15000

    def test_index_structures_nontrivial(self, scale_engine):
        report = scale_engine.index_report()
        assert report["forward_entries"] > 5000
        assert report["inverted_bytes"] > 100_000
        # Multi-level B+-trees at this scale.
        assert scale_engine.database._sid_tree.height >= 2

    def test_metadata_invariants(self, scale_engine):
        scale_engine.database.check_invariants()

    def test_mixed_workload_runs_clean(self, scale_corpus, scale_engine):
        workload = QueryWorkload(scale_corpus, seed=5)
        results = 0
        for num_keywords in (1, 2, 3):
            for semantics in (Semantics.AND, Semantics.OR):
                for spec in workload.specs(num_keywords)[:3]:
                    query = workload.bind(spec, radius_km=20.0, k=10,
                                          semantics=semantics)
                    for method in ("sum", "max"):
                        result = scale_engine.search(query, method=method)
                        assert len(result.users) <= 10
                        scores = [s for _u, s in result.users]
                        assert scores == sorted(scores, reverse=True)
                        results += len(result.users)
        assert results > 0

    def test_sampled_oracle_agreement(self, scale_corpus, scale_engine):
        """Spot-check three queries against brute force at scale."""
        from repro.query.baseline import BruteForceProcessor
        oracle = BruteForceProcessor(scale_corpus.to_dataset())
        workload = QueryWorkload(scale_corpus, seed=6)
        for spec in workload.specs(1)[:3]:
            query = workload.bind(spec, radius_km=15.0, k=10)
            indexed = scale_engine.search_sum(query)
            exact = oracle.search_sum(query)
            assert ([u for u, _s in indexed.users]
                    == [u for u, _s in exact.users])

    def test_pruning_active_at_scale(self, scale_corpus, scale_engine):
        from repro.data.generator import DEFAULT_CITIES
        total_pruned = 0
        for city in DEFAULT_CITIES[:3]:
            query = scale_engine.make_query((city.lat, city.lon), 30.0,
                                            ["restaurant"], k=5)
            scale_engine.threads.clear_cache()
            total_pruned += scale_engine.search_max(
                query).stats.threads_pruned
        assert total_pruned > 0
