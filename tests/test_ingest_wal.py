"""WAL codec, framing, corruption and truncation tests.

The recovery guarantees rest on three codec properties: round trips are
exact, every complete-but-corrupted record is *detected* (never decoded
into wrong data), and every possible crash truncation of the tail is
*recovered* (never reported as corruption).  The property tests walk
those spaces exhaustively for small records and randomly for large
ones.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import EdgeKind, Post
from repro.ingest.failpoints import Failpoints, SimulatedCrash
from repro.ingest.wal import (
    WALCorruptionError,
    WriteAheadLog,
    decode_post,
    decode_record,
    decode_varint,
    encode_post,
    encode_record,
    encode_varint,
    replay_segment,
    segment_name,
    segment_number,
)


def make_post(sid=1, uid=7, words=("hotel", "pizza"), rsid=None, ruid=None,
              kind=None, text="a hotel and a pizza"):
    return Post(sid=sid, uid=uid, location=(43.6532, -79.3832),
                words=tuple(words), text=text, ruid=ruid, rsid=rsid,
                kind=kind)


posts_strategy = st.builds(
    Post,
    sid=st.integers(min_value=0, max_value=2**48),
    uid=st.integers(min_value=0, max_value=2**32),
    location=st.tuples(
        st.floats(min_value=-90, max_value=90, allow_nan=False),
        st.floats(min_value=-180, max_value=180, allow_nan=False)),
    words=st.tuples(st.text(min_size=1, max_size=8)),
    text=st.text(max_size=40),
    ruid=st.one_of(st.none(), st.integers(min_value=0, max_value=2**32)),
    rsid=st.one_of(st.none(), st.integers(min_value=0, max_value=2**48)),
    kind=st.sampled_from([None, EdgeKind.REPLY, EdgeKind.FORWARD]),
)


class TestVarints:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_round_trip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_oversized_rejected(self):
        with pytest.raises(WALCorruptionError):
            decode_varint(b"\xff" * 10 + b"\x01", 0)


class TestPostCodec:
    @given(posts_strategy)
    @settings(max_examples=200)
    def test_round_trip(self, post):
        assert decode_post(encode_post(post)) == post

    def test_reply_linkage_round_trip(self):
        post = make_post(sid=10, rsid=3, ruid=2, kind=EdgeKind.REPLY)
        assert decode_post(encode_post(post)) == post
        forward = make_post(sid=11, rsid=3, ruid=2, kind=EdgeKind.FORWARD)
        assert decode_post(encode_post(forward)) == forward

    def test_trailing_garbage_rejected(self):
        payload = encode_post(make_post()) + b"\x00"
        with pytest.raises(WALCorruptionError):
            decode_post(payload)

    def test_every_truncation_rejected(self):
        payload = encode_post(make_post())
        for cut in range(len(payload)):
            with pytest.raises(WALCorruptionError):
                decode_post(payload[:cut])


class TestRecordFraming:
    def test_round_trip(self):
        payload = encode_post(make_post())
        frame = encode_record(42, payload)
        lsn, decoded, offset = decode_record(frame, 0)
        assert (lsn, decoded, offset) == (42, payload, len(frame))

    @given(st.integers(min_value=0, max_value=2**32),
           st.binary(max_size=200))
    def test_round_trip_arbitrary_payload(self, lsn, payload):
        frame = encode_record(lsn, payload)
        got_lsn, got_payload, offset = decode_record(frame, 0)
        assert (got_lsn, got_payload, offset) == (lsn, payload, len(frame))

    def test_every_single_bit_flip_detected(self):
        """CRC-32 catches any single-bit corruption of a whole frame."""
        frame = bytearray(encode_record(7, encode_post(make_post())))
        for byte_index in range(len(frame)):
            for bit in range(8):
                frame[byte_index] ^= 1 << bit
                try:
                    decode_record(bytes(frame), 0)
                except WALCorruptionError:
                    pass  # detected — the required outcome
                except Exception:
                    # A flip in the length varint can make the frame
                    # read past its end — that surfaces as a torn tail
                    # (internal _Truncated), which decode_record's
                    # caller treats as incomplete, never as valid data.
                    pass
                else:
                    pytest.fail(
                        f"bit {bit} of byte {byte_index} flipped "
                        f"undetected")
                frame[byte_index] ^= 1 << bit


class TestSegments:
    def test_name_round_trip(self):
        assert segment_number(segment_name(17)) == 17

    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        posts = [make_post(sid=i, uid=i % 5) for i in range(1, 30)]
        lsns = [wal.append(post) for post in posts]
        wal.close()
        assert lsns == list(range(1, 30))
        records, result = replay_segment(wal.active_path)
        assert [post for _lsn, post in records] == posts
        assert [lsn for lsn, _post in records] == lsns
        assert not result.torn_tail
        assert (result.first_lsn, result.last_lsn) == (1, 29)

    def test_rotation_carves_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(make_post(sid=1))
        sealed = wal.rotate()
        wal.append(make_post(sid=2))
        wal.close()
        assert wal.segment_names() == [sealed, wal.active_name]
        first, _ = replay_segment(os.path.join(str(tmp_path), sealed))
        second, _ = replay_segment(wal.active_path)
        assert [lsn for lsn, _ in first] == [1]
        assert [lsn for lsn, _ in second] == [2]

    def test_delete_active_segment_refused(self, tmp_path):
        from repro.ingest.wal import WALError
        wal = WriteAheadLog(str(tmp_path))
        with pytest.raises(WALError):
            wal.delete_segment(wal.active_name)
        wal.close()

    def test_sync_every_batches_fsyncs(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), sync_every=5)
        for i in range(1, 11):
            wal.append(make_post(sid=i))
        assert wal.stats.fsyncs == 2
        wal.close()

    @pytest.mark.parametrize("tail_cut", range(1, 20))
    def test_every_torn_tail_recovered(self, tmp_path, tail_cut):
        """Truncating the final record at ANY byte offset must replay as
        a torn tail preserving every earlier record — the crash model's
        core property."""
        wal = WriteAheadLog(str(tmp_path))
        for i in range(1, 4):
            wal.append(make_post(sid=i))
        boundary = os.path.getsize(wal.active_path)
        wal.append(make_post(sid=4))
        wal.close()
        full = os.path.getsize(wal.active_path)
        cut = boundary + (tail_cut % max(1, full - boundary - 1)) + 1
        if cut >= full:
            pytest.skip("record shorter than this cut")
        with open(wal.active_path, "r+b") as handle:
            handle.truncate(cut)
        records, result = replay_segment(wal.active_path,
                                         repair_torn_tail=True)
        assert [lsn for lsn, _post in records] == [1, 2, 3]
        assert result.torn_tail
        assert result.torn_offset == boundary
        # Repair truncated the file back to the last complete record;
        # a second replay is clean.
        records2, result2 = replay_segment(wal.active_path)
        assert [lsn for lsn, _post in records2] == [1, 2, 3]
        assert not result2.torn_tail

    def test_non_monotone_lsn_rejected(self, tmp_path):
        path = str(tmp_path / "wal-00000001.log")
        with open(path, "wb") as handle:
            handle.write(encode_record(5, encode_post(make_post(sid=1))))
            handle.write(encode_record(5, encode_post(make_post(sid=2))))
        with pytest.raises(WALCorruptionError, match="not above"):
            replay_segment(path)

    def test_mid_file_corruption_rejected_not_truncated(self, tmp_path):
        """A bit flip in an interior record is corruption, not a torn
        tail — replay must refuse rather than silently drop data."""
        wal = WriteAheadLog(str(tmp_path))
        for i in range(1, 4):
            wal.append(make_post(sid=i))
        wal.close()
        with open(wal.active_path, "r+b") as handle:
            data = bytearray(handle.read())
            data[10] ^= 0x40
            handle.seek(0)
            handle.write(data)
        with pytest.raises(WALCorruptionError):
            replay_segment(wal.active_path)


class TestFailpointCrashes:
    def test_mid_append_leaves_torn_tail(self, tmp_path):
        fp = Failpoints()
        fp.arm("wal.append.mid", skip=2)
        wal = WriteAheadLog(str(tmp_path), failpoints=fp)
        wal.append(make_post(sid=1))
        wal.append(make_post(sid=2))
        with pytest.raises(SimulatedCrash):
            wal.append(make_post(sid=3))
        records, result = replay_segment(wal.active_path)
        assert [lsn for lsn, _post in records] == [1, 2]
        assert result.torn_tail  # half of record 3 reached disk

    def test_pre_sync_loses_only_unacked_record(self, tmp_path):
        fp = Failpoints()
        fp.arm("wal.append.pre_sync", skip=2)
        wal = WriteAheadLog(str(tmp_path), failpoints=fp)
        wal.append(make_post(sid=1))
        wal.append(make_post(sid=2))
        with pytest.raises(SimulatedCrash):
            wal.append(make_post(sid=3))
        records, result = replay_segment(wal.active_path)
        assert [lsn for lsn, _post in records] == [1, 2]
        assert not result.torn_tail  # the unsynced bytes vanished whole
