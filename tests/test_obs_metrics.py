"""Tests for counters, gauges, log-scale histograms and the registry."""

import random
import statistics
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counter_dict,
    sanitize_name,
)


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(11.5)


class TestHistogram:
    def test_growth_must_exceed_one(self):
        with pytest.raises(ValueError):
            Histogram(growth=1.0)

    def test_empty(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.summary()["p99"] == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_single_value_is_exact(self):
        histogram = Histogram()
        histogram.observe(5.0)
        # Clamping to the observed [min, max] makes one-point histograms
        # exact at every quantile.
        for q in (0.0, 0.5, 0.95, 1.0):
            assert histogram.quantile(q) == pytest.approx(5.0)

    def test_mean_and_sum_are_exact(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.sum == pytest.approx(10.0)
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.summary()["min"] == 1.0
        assert histogram.summary()["max"] == 4.0

    def test_zero_and_negative_bucket(self):
        histogram = Histogram()
        for value in (-1.0, 0.0, 0.0, 10.0):
            histogram.observe(value)
        assert histogram.count == 4
        # Half the mass is non-positive, so the median is in the zero
        # bucket (reported as the observed minimum).
        assert histogram.quantile(0.25) == -1.0

    def test_quantiles_match_statistics_module(self):
        # The log-scale sketch guarantees a bounded *relative* error of
        # sqrt(growth) - 1 (~4.9% at growth=1.1) against the true value
        # at the requested rank; statistics.quantiles(method="inclusive")
        # uses the same rank convention (q * (n - 1)).
        rng = random.Random(42)
        data = [rng.lognormvariate(0.0, 1.5) for _ in range(5000)]
        histogram = Histogram()
        for value in data:
            histogram.observe(value)
        cut_points = statistics.quantiles(data, n=100, method="inclusive")
        for q, expected in ((0.50, cut_points[49]), (0.95, cut_points[94]),
                            (0.99, cut_points[98])):
            assert histogram.quantile(q) == pytest.approx(expected, rel=0.06)

    def test_quantiles_monotone(self):
        rng = random.Random(7)
        histogram = Histogram()
        for _ in range(1000):
            histogram.observe(rng.expovariate(1.0))
        quantiles = [histogram.quantile(q / 20) for q in range(21)]
        assert quantiles == sorted(quantiles)


class TestThreadSafety:
    def test_concurrent_counter_increments_sum_exactly(self):
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 5000

        def worker():
            for _ in range(per_thread):
                registry.counter("shared.hits").inc()

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counters()["shared.hits"] == threads_n * per_thread

    def test_concurrent_histogram_observations(self):
        registry = MetricsRegistry()
        threads_n, per_thread = 6, 2000

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(per_thread):
                registry.histogram("shared.latency").observe(rng.random())

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.histogram("shared.latency").count == \
            threads_n * per_thread


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="another type"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="another type"):
            registry.histogram("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(2.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert registry.names() == ["c", "g", "h"]

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.names() == []

    def test_merge_counter_dict_skips_zeros(self):
        registry = MetricsRegistry()
        merge_counter_dict(registry, "mr", {"map_records": 10, "spills": 0})
        assert registry.counters() == {"mr.map_records": 10}


class TestSanitizeName:
    def test_dots_become_underscores(self):
        assert sanitize_name("storage.page_reads") == "storage_page_reads"

    def test_leading_digit_prefixed(self):
        assert sanitize_name("95th.latency") == "_95th_latency"
