"""Manifest edge cases: versioning, migration, and manifest↔directory
disagreement.

The manifest is the single committed-state pointer of an ingest
directory, so every way it can disagree with the directory — or with
what this build of the code understands — needs a defined behaviour:
load, migrate, repair, or refuse loudly.
"""

import json
import os

import pytest

from repro.data.generator import generate_corpus
from repro.ingest import IngestConfig, IngestError, IngestService
from repro.lint.invariants import validate_generation_manifest

FLUSH_EVERY = 40


@pytest.fixture(scope="module")
def posts():
    corpus = generate_corpus(num_users=40, num_root_tweets=150, seed=11)
    return corpus.posts[:100]


def _manifest_path(directory):
    return os.path.join(directory, "MANIFEST.json")


def _read(directory):
    with open(_manifest_path(directory), encoding="utf-8") as handle:
        return json.load(handle)


def _write(directory, manifest):
    with open(_manifest_path(directory), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)


def _flushed_service(directory, posts):
    service = IngestService(
        directory, ingest_config=IngestConfig(flush_posts=FLUSH_EVERY))
    for post in posts:
        service.append(post)
    return service


class TestManifestEdgeCases:
    def test_empty_generations_list_loads(self, tmp_path):
        directory = str(tmp_path / "empty")
        os.makedirs(directory)
        _write(directory, {"format_version": 2, "generations": [],
                           "last_flushed_lsn": 0, "next_seq": 0})
        service = IngestService(directory)
        assert service.status()["generations"] == []
        assert service.recovery.generations_loaded == 0
        service.close()

    def test_unknown_format_version_refused(self, posts, tmp_path):
        directory = str(tmp_path / "future")
        _flushed_service(directory, posts).close()
        manifest = _read(directory)
        manifest["format_version"] = 99
        _write(directory, manifest)
        with pytest.raises(IngestError, match="format_version"):
            IngestService(directory)

    def test_manifest_names_missing_directory(self, posts, tmp_path):
        directory = str(tmp_path / "missing-dir")
        service = _flushed_service(directory, posts)
        number = service.status()["generations"][0]["number"]
        service.close()
        import shutil
        shutil.rmtree(os.path.join(directory, "generations",
                                   f"gen-{number:05d}"))
        with pytest.raises(IngestError, match="directory"):
            IngestService(directory)

    def test_directory_not_in_manifest_removed_as_orphan(self, posts,
                                                         tmp_path):
        directory = str(tmp_path / "orphan-dir")
        _flushed_service(directory, posts).close()
        stray = os.path.join(directory, "generations", "gen-09999")
        os.makedirs(stray)
        with open(os.path.join(stray, "posts.jsonl"), "w") as handle:
            handle.write("")
        # The deep validator flags the disagreement...
        assert any("orphan" in violation.message
                   for violation in validate_generation_manifest(directory))
        # ...and recovery repairs it.
        service = IngestService(directory)
        assert service.recovery.orphan_generations_removed == 1
        assert not os.path.isdir(stray)
        assert validate_generation_manifest(directory) == []
        service.close()


class TestV1Migration:
    @pytest.fixture()
    def v1_directory(self, posts, tmp_path):
        directory = str(tmp_path / "v1")
        _flushed_service(directory, posts).close()
        manifest = _read(directory)
        manifest["format_version"] = 1
        manifest.pop("next_seq", None)
        for entry in manifest["generations"]:
            for key in ("tier", "seq", "size_bytes", "source_generations"):
                entry.pop(key, None)
        _write(directory, manifest)
        return directory

    def test_v1_entries_migrate_in_memory(self, v1_directory):
        service = IngestService(v1_directory)
        entries = service.status()["generations"]
        assert entries, "flushed generations must survive migration"
        for entry in entries:
            assert entry["tier"] == 0
            assert entry["seq"] == entry["number"]
            assert entry["size_bytes"] > 0  # measured from the files
        service.close()

    def test_next_commit_persists_v2(self, v1_directory):
        # The replayed WAL tail (posts beyond the last v1 flush) gives
        # the recovered service something to flush — that commit must
        # rewrite the manifest in the v2 format.
        service = IngestService(v1_directory)
        assert service.status()["memtable_posts"] > 0
        assert service.flush() is not None
        service.close()
        manifest = _read(v1_directory)
        assert manifest["format_version"] == 2
        seqs = [entry["seq"] for entry in manifest["generations"]]
        assert len(set(seqs)) == len(seqs)
        assert manifest["next_seq"] > max(seqs)
        assert validate_generation_manifest(v1_directory) == []
