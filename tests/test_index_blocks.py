"""Block-compressed postings: codec round-trips, skip-aware operations
vs their naive flat counterparts, corruption error paths, and the
decoded-block cache.

The property tests are the format's correctness contract: for any
tid-sorted postings list, the lazy block reader must be observably
identical to the plain list — under iteration, galloping intersection,
union, and temporal clipping — while decoding less.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.temporal import TimeWindow
from repro.index.blocks import (
    DEFAULT_BLOCK_SIZE,
    BlockCache,
    BlockPostingsReader,
    PostingsFormatError,
    _read_uvarint,
    _write_uvarint,
    _zigzag_decode,
    _zigzag_encode,
    decode_any,
    encode_postings_blocks,
    open_postings,
)
from repro.index.postings import (
    encode_postings,
    intersect_many,
    intersect_two,
    union_many,
)

postings_lists = st.lists(
    st.tuples(st.integers(0, 5000), st.integers(0, 40)),
    max_size=300,
).map(lambda items: sorted(
    {tid: tf for tid, tf in items}.items()))

block_sizes = st.sampled_from([1, 2, 3, 7, 16, DEFAULT_BLOCK_SIZE])


def encode_open(postings, block_size=4, **kwargs):
    data = encode_postings_blocks(postings, block_size=block_size)
    return open_postings(data, **kwargs)


class TestVarint:
    @given(st.integers(0, 2**63))
    @settings(max_examples=100, deadline=None)
    def test_uvarint_round_trip(self, value):
        out = bytearray()
        _write_uvarint(out, value)
        decoded, pos = _read_uvarint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    @given(st.integers(-2**31, 2**31))
    @settings(max_examples=100, deadline=None)
    def test_zigzag_round_trip(self, value):
        assert _zigzag_decode(_zigzag_encode(value)) == value

    def test_truncated_varint(self):
        with pytest.raises(PostingsFormatError, match="truncated"):
            _read_uvarint(b"\x80", 0)

    def test_oversized_varint(self):
        with pytest.raises(PostingsFormatError, match="wider"):
            _read_uvarint(b"\x80" * 11 + b"\x01", 0)


class TestRoundTrip:
    @given(postings_lists, block_sizes)
    @settings(max_examples=120, deadline=None)
    def test_encode_decode_identity(self, postings, block_size):
        data = encode_postings_blocks(postings, block_size=block_size)
        view = open_postings(data)
        assert list(view) == postings
        assert len(view) == len(postings)
        assert decode_any(data) == postings

    @given(postings_lists)
    @settings(max_examples=60, deadline=None)
    def test_indexing_matches_list(self, postings):
        view = encode_open(postings)
        for i in range(len(postings)):
            assert view[i] == postings[i]
        assert view[1:5] == postings[1:5]
        assert view == postings

    def test_empty_list(self):
        view = encode_open([])
        assert len(view) == 0
        assert not view
        assert list(view) == []

    def test_unsorted_input_rejected(self):
        with pytest.raises(ValueError, match="not sorted"):
            encode_postings_blocks([(5, 1), (3, 1)])

    def test_negative_tf_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            encode_postings_blocks([(1, -2)])

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError, match="block_size"):
            encode_postings_blocks([(1, 1)], block_size=0)


class TestSkipOperationsMatchNaive:
    """Block-granular seek/clip/intersection/union produce exactly what
    the flat implementations produce."""

    @given(postings_lists, st.integers(0, 5200), st.integers(0, 20),
           block_sizes)
    @settings(max_examples=100, deadline=None)
    def test_seek_matches_linear_scan(self, postings, target, start,
                                      block_size):
        view = encode_open(postings, block_size=block_size)
        start = min(start, len(postings))
        expected = start
        while expected < len(postings) and postings[expected][0] < target:
            expected += 1
        assert view.seek(target, start) == expected

    @given(postings_lists, postings_lists, block_sizes)
    @settings(max_examples=80, deadline=None)
    def test_intersect_two_matches_flat(self, a, b, block_size):
        lazy = intersect_two(encode_open(a, block_size=block_size),
                             encode_open(b, block_size=block_size))
        assert lazy == intersect_two(a, b)

    @given(st.lists(postings_lists, min_size=1, max_size=4), block_sizes)
    @settings(max_examples=60, deadline=None)
    def test_intersect_many_matches_flat(self, lists, block_size):
        lazy = intersect_many([encode_open(p, block_size=block_size)
                               for p in lists])
        assert lazy == intersect_many(lists)

    @given(st.lists(postings_lists, min_size=1, max_size=4), block_sizes)
    @settings(max_examples=60, deadline=None)
    def test_union_many_matches_flat(self, lists, block_size):
        lazy = union_many([encode_open(p, block_size=block_size)
                           for p in lists])
        assert lazy == union_many(lists)

    @given(postings_lists,
           st.one_of(st.none(), st.integers(0, 5200)),
           st.one_of(st.none(), st.integers(0, 5200)),
           block_sizes)
    @settings(max_examples=100, deadline=None)
    def test_clip_matches_naive_filter(self, postings, start, end,
                                       block_size):
        if start is not None and end is not None and start > end:
            start, end = end, start
        view = encode_open(postings, block_size=block_size)
        clipped = view.clip(start, end)
        expected = [(tid, tf) for tid, tf in postings
                    if (start is None or tid >= start)
                    and (end is None or tid <= end)]
        assert list(clipped) == expected

    @given(postings_lists,
           st.one_of(st.none(), st.integers(0, 5200)),
           st.one_of(st.none(), st.integers(0, 5200)),
           block_sizes)
    @settings(max_examples=80, deadline=None)
    def test_time_window_clip_matches_list_path(self, postings, start, end,
                                                block_size):
        if start is not None and end is not None and start > end:
            start, end = end, start
        window = TimeWindow(start, end)
        via_reader = window.clip_postings(
            encode_open(postings, block_size=block_size))
        assert list(via_reader) == window.clip_postings(list(postings))

    @given(postings_lists, block_sizes)
    @settings(max_examples=60, deadline=None)
    def test_max_tf_matches_scan(self, postings, block_size):
        view = encode_open(postings, block_size=block_size)
        expected = max((tf for _tid, tf in postings), default=0)
        assert view.max_tf() == expected

    @given(postings_lists, st.integers(0, 5200), st.integers(0, 5200))
    @settings(max_examples=60, deadline=None)
    def test_clipped_max_tf_is_sound(self, postings, start, end):
        # The header-derived bound may be loose (it covers boundary
        # blocks whole) but must never under-estimate.
        if start > end:
            start, end = end, start
        view = encode_open(postings).clip(start, end)
        actual = max((tf for tid, tf in postings if start <= tid <= end),
                     default=0)
        assert view.max_tf() >= actual


class TestSkipAccounting:
    def test_clip_skips_interior_blocks_without_decoding(self):
        postings = [(i, 1 + i % 3) for i in range(64)]
        stats = SimpleStats()
        view = open_postings(encode_postings_blocks(postings, block_size=4),
                             stats=stats)
        clipped = view.clip(40, 47)
        assert list(clipped) == [(i, 1 + i % 3) for i in range(40, 48)]
        # Blocks [0, 40) were bypassed via the skip table.
        assert stats.blocks_skipped >= 8
        # Only the boundary/interior blocks of the window were decoded.
        assert stats.blocks_decoded <= 4

    def test_seek_far_target_skips_blocks(self):
        postings = [(i * 10, 1) for i in range(100)]
        stats = SimpleStats()
        view = open_postings(encode_postings_blocks(postings, block_size=8),
                             stats=stats)
        assert view.seek(900, 0) == 90
        assert stats.blocks_skipped >= 10
        assert stats.blocks_decoded <= 1


class SimpleStats:
    """Duck-typed stats sink matching IndexStats' counter names."""

    def __init__(self):
        self.bytes_decoded = 0
        self.blocks_decoded = 0
        self.blocks_skipped = 0
        self.block_cache_hits = 0
        self.block_cache_misses = 0


class TestCorruption:
    def payload(self, postings=((1, 2), (5, 1), (9, 4)), block_size=2):
        return bytearray(encode_postings_blocks(list(postings),
                                                block_size=block_size))

    def test_wrong_magic_falls_back_or_raises(self):
        data = self.payload()
        data[0] = 0x00
        # Not block format and not a multiple of 12 -> rejected outright.
        with pytest.raises(PostingsFormatError):
            open_postings(bytes(data))

    def test_unknown_version_rejected(self):
        data = self.payload()
        data[1] = 99
        with pytest.raises(PostingsFormatError):
            open_postings(bytes(data))

    def test_truncated_payload_rejected(self):
        data = bytes(self.payload())
        for cut in (1, 3, len(data) // 2, len(data) - 1):
            with pytest.raises(PostingsFormatError):
                list(open_postings(data[:cut]))

    def test_trailing_garbage_rejected(self):
        data = bytes(self.payload()) + b"\x00\x01"
        with pytest.raises(PostingsFormatError):
            open_postings(data)

    def test_corrupt_body_detected_on_decode(self):
        postings = [(i, 1) for i in range(8)]
        data = self.payload(postings, block_size=4)
        # Smash the final tid delta: the last block's decode no longer
        # lands on its header's max_tid.
        data[-2] = 0x7F
        view = open_postings(bytes(data))
        with pytest.raises(PostingsFormatError):
            list(view)

    def test_flat_payload_opens_as_tuple(self):
        flat = encode_postings([(3, 1), (8, 2)])
        view = open_postings(flat)
        assert isinstance(view, tuple)
        assert list(view) == [(3, 1), (8, 2)]

    def test_flat_bad_length_rejected(self):
        with pytest.raises(PostingsFormatError):
            open_postings(b"\x01\x02\x03\x04\x05")

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=120, deadline=None)
    def test_random_bytes_never_crash_unexpectedly(self, blob):
        # Arbitrary garbage either parses (by luck) or raises the
        # format error -- never an IndexError/struct.error/etc.
        try:
            view = open_postings(blob)
            list(view)
        except PostingsFormatError:
            pass


class TestBlockCache:
    def test_hits_and_misses_counted(self):
        postings = [(i, 1) for i in range(16)]
        cache = BlockCache(capacity=8)
        stats = SimpleStats()
        data = encode_postings_blocks(postings, block_size=4)

        first = open_postings(data, stats=stats, cache=cache, cache_key="k")
        list(first)
        assert stats.block_cache_misses == 4
        assert stats.block_cache_hits == 0

        # A fresh reader over the same payload hits the shared cache.
        second = open_postings(data, stats=stats, cache=cache, cache_key="k")
        assert isinstance(second, BlockPostingsReader)
        list(second)
        assert stats.block_cache_hits == 4
        assert stats.blocks_decoded == 4  # nothing re-decoded

    def test_lru_eviction_bounds_size(self):
        cache = BlockCache(capacity=2)
        cache.put(("k", 0), ((1, 1),))
        cache.put(("k", 1), ((2, 1),))
        cache.put(("k", 2), ((3, 1),))
        assert len(cache) == 2
        assert cache.get(("k", 0)) is None  # evicted
        assert cache.get(("k", 2)) == ((3, 1),)

    def test_get_refreshes_recency(self):
        cache = BlockCache(capacity=2)
        cache.put(("k", 0), ((1, 1),))
        cache.put(("k", 1), ((2, 1),))
        assert cache.get(("k", 0)) is not None  # touch 0
        cache.put(("k", 2), ((3, 1),))
        assert cache.get(("k", 0)) is not None  # survived
        assert cache.get(("k", 1)) is None      # 1 was the LRU victim

    def test_hit_rate(self):
        cache = BlockCache(capacity=4)
        cache.put(("k", 0), ((1, 1),))
        cache.get(("k", 0))
        cache.get(("k", 9))
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_clear(self):
        cache = BlockCache(capacity=4)
        cache.put(("k", 0), ((1, 1),))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(("k", 0)) is None
