"""Tests for tweet threads and Algorithm 1 (Definitions 3-4)."""

import pytest

from repro.core.model import Dataset, Post
from repro.core.thread import (
    DatasetThreadBuilder,
    ThreadBuilder,
    TweetThread,
)
from repro.storage.metadata import MetadataDatabase
from repro.storage.records import make_record


def paper_figure2_records():
    """The thread of Figure 2: root p1; p2, p3, p4 reply to p1;
    level 3 has 4 tweets; level 4 has 2."""
    records = [make_record(1, 1, 0.0, 0.0)]
    sid = 2
    for _ in range(3):  # level 2
        records.append(make_record(sid, sid, 0.0, 0.0, ruid=1, rsid=1))
        sid += 1
    level2 = [2, 3, 4]
    for i in range(4):  # level 3: attach to level-2 tweets
        parent = level2[i % 3]
        records.append(make_record(sid, sid, 0.0, 0.0, ruid=parent,
                                   rsid=parent))
        sid += 1
    level3 = [5, 6, 7, 8]
    for i in range(2):  # level 4
        parent = level3[i]
        records.append(make_record(sid, sid, 0.0, 0.0, ruid=parent,
                                   rsid=parent))
        sid += 1
    return records


@pytest.fixture()
def figure2_db():
    db = MetadataDatabase.in_memory()
    db.bulk_load(paper_figure2_records())
    return db


class TestTweetThread:
    def test_paper_figure2_popularity(self, figure2_db):
        """The paper computes 3/2 + 4/3 + 2/4 = 10/3 for Figure 2."""
        builder = ThreadBuilder(figure2_db, depth=6, epsilon=0.1)
        assert builder.popularity(1) == pytest.approx(10.0 / 3.0)

    def test_figure2_structure(self, figure2_db):
        thread = ThreadBuilder(figure2_db).build(1)
        assert thread.height == 4
        assert thread.level_sizes() == [1, 3, 4, 2]
        assert thread.size == 10

    def test_singleton_gets_epsilon(self, figure2_db):
        builder = ThreadBuilder(figure2_db, epsilon=0.25)
        assert builder.popularity(10) == 0.25  # leaf tweet, no replies

    def test_depth_bound_truncates(self, figure2_db):
        builder = ThreadBuilder(figure2_db, depth=2, epsilon=0.1)
        # Only level 2 counted: 3/2.
        assert builder.popularity(1) == pytest.approx(1.5)
        assert builder.build(1).height == 2

    def test_depth_one_always_epsilon(self, figure2_db):
        builder = ThreadBuilder(figure2_db, depth=1, epsilon=0.1)
        assert builder.popularity(1) == 0.1

    def test_bad_depth_rejected(self, figure2_db):
        with pytest.raises(ValueError):
            ThreadBuilder(figure2_db, depth=0)

    def test_thread_object_popularity_matches(self, figure2_db):
        builder = ThreadBuilder(figure2_db)
        thread = builder.build(1)
        assert thread.popularity(0.1) == pytest.approx(builder.popularity(1))


class TestCaching:
    def test_cache_avoids_io(self, figure2_db):
        builder = ThreadBuilder(figure2_db, cache=True)
        builder.popularity(1)
        built_before = builder.threads_built
        builder.popularity(1)
        assert builder.threads_built == built_before  # served from cache

    def test_cache_disabled(self, figure2_db):
        builder = ThreadBuilder(figure2_db, cache=False)
        builder.popularity(1)
        builder.popularity(1)
        assert builder.threads_built == 2

    def test_clear_cache(self, figure2_db):
        builder = ThreadBuilder(figure2_db, cache=True)
        builder.popularity(1)
        builder.clear_cache()
        builder.popularity(1)
        assert builder.threads_built == 2


class TestDatasetThreadBuilder:
    def make_dataset(self):
        dataset = Dataset()
        posts = []
        for record in paper_figure2_records():
            posts.append(Post(
                sid=record.sid, uid=record.uid, location=(0.0, 0.0),
                words=("x",), text="x",
                rsid=record.rsid if record.rsid != -1 else None,
                ruid=record.ruid if record.ruid != -1 else None))
        dataset.extend(posts)
        return dataset

    def test_matches_storage_builder(self, figure2_db):
        dataset_builder = DatasetThreadBuilder(self.make_dataset())
        storage_builder = ThreadBuilder(figure2_db)
        for sid in range(1, 11):
            assert dataset_builder.popularity(sid) == pytest.approx(
                storage_builder.popularity(sid))

    def test_depth_bound(self):
        builder = DatasetThreadBuilder(self.make_dataset(), depth=3)
        assert builder.build(1).height == 3


class TestThreadIOCost:
    def test_thread_construction_costs_ios(self, figure2_db):
        """The Section V-B premise: every thread construction reads the
        rsid index and heap."""
        figure2_db.stats.reset_all()
        builder = ThreadBuilder(figure2_db, cache=False)
        builder.popularity(1)
        # Every expanded tweet needs at least the rsid-tree descent.
        assert figure2_db.stats.get("rsid_index").cache_hits \
            + figure2_db.stats.get("rsid_index").cache_misses > 0
