"""Unit tests for the compaction package: policies, the generation
lifecycle/registry, and the incremental scheduler over a fake executor.

Everything here is pure in-memory — no ingest directory, no index
builds — so the state-machine and pacing contracts are tested in
isolation from the durable executors (covered by
``test_compaction_recovery.py`` and ``test_index_generations.py``).
"""

import gc

import pytest

from repro.compaction import (
    CompactionConfig,
    CompactionPlan,
    CompactionScheduler,
    GenerationInfo,
    GenerationLifecycleError,
    GenerationRegistry,
    GenerationState,
    LeveledPolicy,
    SizeTieredPolicy,
    make_policy,
)
from repro.compaction.lifecycle import advance_state
from repro.compaction.scheduler import CompactionExecutor


def info(number, tier=0, seq=None, size=100, posts=10):
    return GenerationInfo(number=number, tier=tier,
                          seq=number if seq is None else seq,
                          size_bytes=size, post_count=posts)


class TestSizeTieredPolicy:
    def test_below_trigger_no_plan(self):
        policy = SizeTieredPolicy(min_inputs=4)
        assert policy.plan([info(n) for n in range(3)]) is None

    def test_merges_oldest_members_first(self):
        policy = SizeTieredPolicy(min_inputs=2, max_inputs=3)
        plan = policy.plan([info(5, seq=9), info(1, seq=1), info(2, seq=2),
                            info(3, seq=3)])
        assert plan.inputs == (1, 2, 3)  # oldest three by seq, capped
        assert plan.output_tier == 1
        assert plan.input_posts == 30

    def test_lowest_tier_planned_first(self):
        policy = SizeTieredPolicy(min_inputs=2)
        plan = policy.plan([info(1, tier=1), info(2, tier=1),
                            info(3, tier=0), info(4, tier=0)])
        assert plan.inputs == (3, 4)
        assert plan.output_tier == 1

    def test_describe_names_generations(self):
        plan = SizeTieredPolicy(min_inputs=2).plan([info(1), info(2)])
        text = plan.describe()
        assert "gen-00001" in text and "tier 1" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            SizeTieredPolicy(min_inputs=1)
        with pytest.raises(ValueError):
            SizeTieredPolicy(min_inputs=4, max_inputs=3)


class TestLeveledPolicy:
    def test_level0_accumulates_until_trigger(self):
        policy = LeveledPolicy(level0_trigger=3)
        assert policy.plan([info(1), info(2), info(3)]) is None

    def test_overflow_merges_with_next_level_resident(self):
        policy = LeveledPolicy(level0_trigger=3)
        plan = policy.plan([info(1), info(2), info(3), info(4),
                            info(9, tier=1, seq=0)])
        assert set(plan.inputs) == {1, 2, 3, 4, 9}
        assert plan.output_tier == 1

    def test_upper_level_holds_at_most_one(self):
        policy = LeveledPolicy(level0_trigger=4)
        plan = policy.plan([info(1, tier=1), info(2, tier=1)])
        assert plan is not None
        assert plan.output_tier == 2

    def test_factory(self):
        assert isinstance(make_policy("tiered"), SizeTieredPolicy)
        assert isinstance(make_policy("leveled"), LeveledPolicy)
        with pytest.raises(ValueError):
            make_policy("mystery")


class TestLifecycle:
    def test_legal_path(self):
        state = GenerationState.ACTIVE
        for target in (GenerationState.COMPACTING,
                       GenerationState.SUPERSEDED,
                       GenerationState.REMOVED):
            state = advance_state(state, target)
        assert state is GenerationState.REMOVED

    def test_abort_returns_to_active(self):
        state = advance_state(GenerationState.ACTIVE,
                              GenerationState.COMPACTING)
        assert advance_state(state, GenerationState.ACTIVE) \
            is GenerationState.ACTIVE

    @pytest.mark.parametrize("current,target", [
        (GenerationState.ACTIVE, GenerationState.REMOVED),
        (GenerationState.SUPERSEDED, GenerationState.ACTIVE),
        (GenerationState.REMOVED, GenerationState.ACTIVE),
    ])
    def test_illegal_transitions_raise(self, current, target):
        with pytest.raises(GenerationLifecycleError):
            advance_state(current, target)


class TestGenerationRegistry:
    def test_append_bumps_epoch(self):
        registry = GenerationRegistry()
        assert registry.epoch == 0
        registry.append("a")
        registry.append("b")
        assert registry.epoch == 2
        assert registry.items == ("a", "b")

    def test_swap_retires_with_deferred_reclaim(self):
        registry = GenerationRegistry(["a", "b"])
        reclaimed = []
        pin = registry.pin()
        registry.swap(["ab"], retired=[("a", lambda: reclaimed.append("a")),
                                       ("b", lambda: reclaimed.append("b"))])
        # The pinned reader can still reach "a"/"b" — nothing reclaimed.
        assert reclaimed == []
        assert registry.pending_reclaim() == 2
        assert pin.items == ("a", "b")
        pin.release()
        assert reclaimed == ["a", "b"]
        assert registry.pending_reclaim() == 0
        assert registry.reclaimed_total == 2

    def test_unpinned_swap_reclaims_immediately(self):
        registry = GenerationRegistry(["a"])
        reclaimed = []
        registry.swap(["b"], retired=[("a", lambda: reclaimed.append("a"))])
        assert reclaimed == ["a"]

    def test_newer_pin_does_not_block_older_retirement(self):
        registry = GenerationRegistry(["a"])
        reclaimed = []
        registry.swap(["b"], retired=[("a", lambda: reclaimed.append("a"))])
        late_pin = registry.pin()  # pins the post-swap epoch
        registry.drain()
        assert reclaimed == ["a"]
        late_pin.release()

    def test_leaked_pin_is_finalized(self):
        registry = GenerationRegistry(["a"])
        pin = registry.pin()
        assert registry.pin_count() == 1
        del pin
        gc.collect()
        assert registry.pin_count() == 0

    def test_pinned_context_manager(self):
        registry = GenerationRegistry(["a"])
        with registry.pinned() as items:
            assert items == ("a",)
            assert registry.pin_count() == 1
        assert registry.pin_count() == 0


class FakeExecutor(CompactionExecutor):
    """In-memory executor: generations are (info, posts) records."""

    def __init__(self, count, tier=0, pressure=0.0):
        self.generations = {
            number: info(number, tier=tier) for number in range(1, count + 1)
        }
        self.posts = {number: [f"post-{number}"]
                      for number in self.generations}
        self.states = {number: GenerationState.ACTIVE
                       for number in self.generations}
        self.pressure = pressure
        self.next_number = count + 1
        self.next_seq = count + 1
        self.reclaims = 0
        self.commits = []
        self.aborts = []
        self.fail_load = False

    def generation_infos(self):
        return [self.generations[number] for number in self.generations
                if self.states[number] is GenerationState.ACTIVE]

    def begin_compaction(self, plan):
        for number in plan.inputs:
            self.states[number] = advance_state(
                self.states[number], GenerationState.COMPACTING)

    def abort_compaction(self, plan):
        self.aborts.append(plan)
        for number in plan.inputs:
            self.states[number] = advance_state(
                self.states[number], GenerationState.ACTIVE)

    def load_generation_posts(self, number):
        if self.fail_load:
            raise IOError("disk went away")
        return self.posts[number]

    def commit_compaction(self, plan, posts):
        output = self.next_number
        self.next_number += 1
        self.generations[output] = GenerationInfo(
            number=output, tier=plan.output_tier, seq=self.next_seq,
            size_bytes=sum(self.generations[n].size_bytes
                           for n in plan.inputs),
            post_count=len(posts))
        self.next_seq += 1
        self.posts[output] = list(posts)
        self.states[output] = GenerationState.ACTIVE
        for number in plan.inputs:
            self.states[number] = advance_state(
                self.states[number], GenerationState.SUPERSEDED)
        self.commits.append((plan, output))
        return output

    def reclaim(self):
        removed = [number for number, state in self.states.items()
                   if state is GenerationState.SUPERSEDED]
        for number in removed:
            self.states[number] = advance_state(
                self.states[number], GenerationState.REMOVED)
            del self.generations[number]
        self.reclaims += 1
        return len(removed)

    def ingest_pressure(self):
        return self.pressure


class TestScheduler:
    def test_step_sequence_plan_load_commit(self):
        executor = FakeExecutor(2)
        scheduler = CompactionScheduler(
            executor, CompactionConfig(min_inputs=2, max_inputs=4))
        assert scheduler.step()  # plan
        assert scheduler.in_flight is not None
        assert executor.states[1] is GenerationState.COMPACTING
        assert scheduler.step()  # load gen 1
        assert scheduler.step()  # load gen 2
        assert scheduler.step()  # commit
        assert scheduler.in_flight is None
        assert scheduler.stats.compactions_committed == 1
        assert scheduler.stats.generations_merged == 2
        assert scheduler.stats.posts_merged == 2
        assert executor.posts[scheduler.stats.last_output] \
            == ["post-1", "post-2"]

    def test_idle_when_nothing_to_plan(self):
        executor = FakeExecutor(1)
        scheduler = CompactionScheduler(
            executor, CompactionConfig(min_inputs=2))
        assert not scheduler.step()
        assert scheduler.stats.plans_started == 0

    def test_run_until_idle_cascades_tiers(self):
        # 4 tier-0 generations with min_inputs=2 merge pairwise into two
        # tier-1 generations, which then merge into one tier-2.
        executor = FakeExecutor(4)
        scheduler = CompactionScheduler(
            executor, CompactionConfig(min_inputs=2, max_inputs=2))
        merges = scheduler.run_until_idle()
        assert merges == 3
        survivors = [executor.generations[number]
                     for number, state in executor.states.items()
                     if state is GenerationState.ACTIVE]
        assert len(survivors) == 1
        assert survivors[0].tier == 2
        assert survivors[0].post_count == 4

    def test_backpressure_defers_new_plans_only(self):
        executor = FakeExecutor(2, pressure=0.9)
        scheduler = CompactionScheduler(
            executor, CompactionConfig(min_inputs=2,
                                       backpressure_fraction=0.75))
        assert scheduler.maybe_step() == 0
        assert scheduler.stats.deferred_backpressure == 1
        # An in-flight merge keeps progressing under the same pressure.
        executor.pressure = 0.0
        assert scheduler.maybe_step() == 1  # plan started
        executor.pressure = 0.9
        assert scheduler.maybe_step() == 1  # load continues regardless
        assert scheduler.stats.deferred_backpressure == 1

    def test_disabled_scheduler_is_inert(self):
        executor = FakeExecutor(8)
        scheduler = CompactionScheduler(
            executor, CompactionConfig(enabled=False, min_inputs=2))
        assert scheduler.maybe_step() == 0
        assert scheduler.stats.steps == 0
        # The manual path (repro compact) still works.
        assert scheduler.run_until_idle() > 0

    def test_load_failure_aborts_and_reactivates_inputs(self):
        executor = FakeExecutor(2)
        scheduler = CompactionScheduler(
            executor, CompactionConfig(min_inputs=2))
        assert scheduler.step()  # plan
        executor.fail_load = True
        with pytest.raises(IOError):
            scheduler.step()
        assert scheduler.in_flight is None
        assert len(executor.aborts) == 1
        assert all(state is GenerationState.ACTIVE
                   for state in executor.states.values())
        # Recovery: the next planning round can pick them up again.
        executor.fail_load = False
        assert scheduler.run_until_idle() == 1

    def test_debt_counts_cascading_rounds(self):
        executor = FakeExecutor(8)
        scheduler = CompactionScheduler(
            executor, CompactionConfig(min_inputs=4, max_inputs=4))
        # Two tier-0 rounds of 4; the two synthetic tier-1 outputs stay
        # below the trigger, so the simulated cascade stops there.
        assert scheduler.debt() == 8
        scheduler.run_until_idle()
        assert scheduler.debt() == 0

    def test_status_shape(self):
        scheduler = CompactionScheduler(
            FakeExecutor(0), CompactionConfig(mode="leveled"))
        status = scheduler.status()
        assert status["enabled"] is True
        assert status["mode"] == "leveled"
        assert status["in_flight"] is None
        assert status["debt"] == 0
        assert status["compactions_committed"] == 0


class TestConfigValidation:
    def test_bad_mode_rejected_eagerly(self):
        with pytest.raises(ValueError):
            CompactionConfig(mode="mystery")

    def test_bad_backpressure_rejected(self):
        with pytest.raises(ValueError):
            CompactionConfig(backpressure_fraction=0.0)

    def test_bad_steps_rejected(self):
        with pytest.raises(ValueError):
            CompactionConfig(steps_per_append=0)

    def test_as_dict_round_trip(self):
        config = CompactionConfig(mode="leveled", level0_trigger=3)
        assert CompactionConfig(**config.as_dict()).as_dict() \
            == config.as_dict()
