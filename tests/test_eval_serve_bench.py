"""Tests for the serve bench harness, validator and renderer."""

import copy
import json

import pytest

from repro.eval.serve_bench import (
    ServeBenchConfig,
    render_serve_summary,
    run_serve_bench,
    validate_serve_bench_report,
    write_serve_report,
)


@pytest.fixture(scope="module")
def smoke_payload(tmp_path_factory):
    """One tiny end-to-end bench run shared by the module's tests."""
    directory = tmp_path_factory.mktemp("serve-bench")
    config = ServeBenchConfig.smoke()
    return run_serve_bench(str(directory / "svc"), config)


class TestSmokeRun:
    def test_passes_its_own_validator(self, smoke_payload):
        assert validate_serve_bench_report(smoke_payload) == []

    def test_scaling_covers_four_worker_counts(self, smoke_payload):
        runs = smoke_payload["scaling"]["runs"]
        assert len(runs) >= 4
        assert len({run["workers"] for run in runs}) >= 4
        for run in runs:
            assert run["completed"] > 0
            assert run["throughput_qps"] > 0

    def test_overload_records_both_shedding_arms(self, smoke_payload):
        overload = smoke_payload["overload"]
        assert overload["shedding_on"]["shed"] > 0
        assert overload["shedding_off"]["shed"] == 0
        assert overload["shed_tail_bounded"] in (True, False)

    def test_cache_identity_observed_real_hits(self, smoke_payload):
        identity = smoke_payload["cache_identity"]
        assert identity["checks"] > 0
        assert identity["hits_observed"] > 0
        assert identity["identical"] is True
        assert identity["mismatches"] == []
        assert smoke_payload["cached_results_identical"] is True

    def test_render_mentions_every_phase(self, smoke_payload):
        text = render_serve_summary(smoke_payload)
        assert "scaling" in text
        assert "overload" in text
        assert "cache identity" in text

    def test_write_report_round_trips(self, smoke_payload, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        write_serve_report(smoke_payload, str(path))
        loaded = json.loads(path.read_text())
        assert validate_serve_bench_report(loaded) == []
        assert loaded["cached_results_identical"] is True


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_serve_bench_report([]) != []

    def test_rejects_wrong_schema_version(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["schema_version"] = 999
        assert any("schema_version" in p
                   for p in validate_serve_bench_report(payload))

    def test_rejects_too_few_scaling_runs(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["scaling"]["runs"] = payload["scaling"]["runs"][:2]
        assert any("worker" in p.lower()
                   for p in validate_serve_bench_report(payload))

    def test_rejects_missing_latency_quantile(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        del payload["overload"]["shedding_on"]["latency_ms"]["p999"]
        assert any("p999" in p for p in validate_serve_bench_report(payload))

    def test_rejects_failed_cache_identity(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["cache_identity"]["identical"] = False
        payload["cached_results_identical"] = False
        assert validate_serve_bench_report(payload) != []

    def test_rejects_identity_without_hits(self, smoke_payload):
        # "identical" proves nothing if the cache never actually hit.
        payload = copy.deepcopy(smoke_payload)
        payload["cache_identity"]["hits_observed"] = 0
        assert any("hits" in p for p in validate_serve_bench_report(payload))


class TestCommittedReport:
    def test_committed_report_is_valid(self):
        with open("BENCH_serve.json", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert validate_serve_bench_report(payload) == []
        assert payload["cached_results_identical"] is True
        runs = payload["scaling"]["runs"]
        assert len({run["workers"] for run in runs}) >= 4
        # The committed overload arm shows shedding bounding the tail.
        overload = payload["overload"]
        assert overload["shed_tail_bounded"] is True
        on = overload["shedding_on"]["latency_ms"]["p99"]
        off = overload["shedding_off"]["latency_ms"]["p99"]
        assert on <= off
