"""Tests for the disk-backed B+-tree, including hypothesis property
tests of structural invariants under random operation sequences."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.bptree import (
    BPlusTree,
    DuplicateKeyError,
    INTERNAL_MAX,
    LEAF_MAX,
    MAX_KEY,
    MIN_KEY,
)
from repro.storage.pager import BufferPool, FilePager, MemoryPager


def make_tree(capacity=128, unique=True):
    return BPlusTree(BufferPool(MemoryPager(), capacity=capacity),
                     unique=unique)


class TestBasics:
    def test_empty_tree(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.get((1, 0)) is None
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_insert_get(self):
        tree = make_tree()
        tree.insert((5, 0), 50)
        assert tree.get((5, 0)) == 50
        assert (5, 0) in tree
        assert (6, 0) not in tree

    def test_duplicate_rejected_in_unique(self):
        tree = make_tree(unique=True)
        tree.insert((1, 1), 10)
        with pytest.raises(DuplicateKeyError):
            tree.insert((1, 1), 11)

    def test_non_unique_overwrites(self):
        tree = make_tree(unique=False)
        tree.insert((1, 1), 10)
        tree.insert((1, 1), 20)
        assert tree.get((1, 1)) == 20
        assert len(tree) == 1

    def test_negative_keys(self):
        tree = make_tree()
        tree.insert((-100, -5), 1)
        tree.insert((-100, 5), 2)
        assert tree.get((-100, -5)) == 1
        assert [k for k, _v in tree.items()] == [(-100, -5), (-100, 5)]

    def test_delete_missing(self):
        tree = make_tree()
        assert not tree.delete((7, 7))


class TestSplitsAndHeight:
    def test_height_grows(self):
        tree = make_tree()
        assert tree.height == 1
        for i in range(LEAF_MAX + 1):
            tree.insert((i, 0), i)
        assert tree.height == 2
        tree.check_invariants()

    def test_large_sequential_load(self):
        tree = make_tree(capacity=64)
        n = LEAF_MAX * 5
        for i in range(n):
            tree.insert((i, 0), i * 2)
        assert len(tree) == n
        tree.check_invariants()
        assert [v for _k, v in tree.items()] == [i * 2 for i in range(n)]

    def test_reverse_order_load(self):
        tree = make_tree(capacity=64)
        n = LEAF_MAX * 3
        for i in reversed(range(n)):
            tree.insert((i, 0), i)
        tree.check_invariants()
        keys = [k for k, _v in tree.items()]
        assert keys == sorted(keys)


class TestRangeScans:
    def test_range_inclusive(self):
        tree = make_tree()
        for i in range(100):
            tree.insert((i, 0), i)
        got = [k[0] for k, _v in tree.range((10, 0), (20, 0))]
        assert got == list(range(10, 21))

    def test_range_empty_when_inverted(self):
        tree = make_tree()
        tree.insert((5, 0), 5)
        assert list(tree.range((10, 0), (1, 0))) == []

    def test_prefix_scan(self):
        tree = make_tree()
        for rsid in range(5):
            for sid in range(rsid + 1):
                tree.insert((rsid, sid), rsid * 10 + sid)
        for rsid in range(5):
            got = list(tree.prefix(rsid))
            assert len(got) == rsid + 1
            assert all(key[0] == rsid for key, _v in got)

    def test_full_range_defaults(self):
        tree = make_tree()
        for i in range(50):
            tree.insert((i, i), i)
        assert len(list(tree.range())) == 50

    def test_range_boundary_keys(self):
        tree = make_tree()
        tree.insert(MIN_KEY, 1)
        tree.insert(MAX_KEY, 2)
        assert [v for _k, v in tree.items()] == [1, 2]


class TestDeletionRebalancing:
    def test_delete_all_sequential(self):
        tree = make_tree(capacity=64)
        n = LEAF_MAX * 4
        for i in range(n):
            tree.insert((i, 0), i)
        for i in range(n):
            assert tree.delete((i, 0))
            if i % 97 == 0:
                tree.check_invariants()
        assert len(tree) == 0
        tree.check_invariants()

    def test_delete_random_half(self):
        tree = make_tree(capacity=64)
        rng = random.Random(3)
        keys = [(rng.randrange(10**7), 0) for _ in range(4000)]
        keys = list(dict.fromkeys(keys))
        for i, key in enumerate(keys):
            tree.insert(key, i)
        doomed = set(rng.sample(range(len(keys)), len(keys) // 2))
        for i, key in enumerate(keys):
            if i in doomed:
                assert tree.delete(key)
        tree.check_invariants()
        survivors = sorted(key for i, key in enumerate(keys)
                           if i not in doomed)
        assert [k for k, _v in tree.items()] == survivors

    def test_height_shrinks_after_mass_delete(self):
        tree = make_tree(capacity=64)
        n = LEAF_MAX * 6
        for i in range(n):
            tree.insert((i, 0), i)
        tall = tree.height
        for i in range(n - 2):
            tree.delete((i, 0))
        tree.check_invariants()
        assert tree.height <= tall


operations = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "get"]),
              st.integers(min_value=0, max_value=500)),
    min_size=1, max_size=400)


class TestPropertyBased:
    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_oracle(self, ops):
        tree = make_tree(capacity=32)
        oracle = {}
        for op, key_int in ops:
            key = (key_int, 0)
            if op == "insert":
                if key in oracle:
                    with pytest.raises(DuplicateKeyError):
                        tree.insert(key, key_int)
                else:
                    tree.insert(key, key_int)
                    oracle[key] = key_int
            elif op == "delete":
                assert tree.delete(key) == (key in oracle)
                oracle.pop(key, None)
            else:
                assert tree.get(key) == oracle.get(key)
        tree.check_invariants()
        assert dict(tree.items()) == oracle
        assert len(tree) == len(oracle)

    @given(st.sets(st.integers(min_value=-10**9, max_value=10**9),
                   max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_sorted_iteration(self, keys):
        tree = make_tree(capacity=32)
        for key in keys:
            tree.insert((key, 0), key)
        got = [k[0] for k, _v in tree.items()]
        assert got == sorted(keys)


class TestPersistence:
    def test_reopen_from_disk(self, tmp_path):
        path = str(tmp_path / "tree.btree")
        pool = BufferPool(FilePager(path), capacity=32)
        tree = BPlusTree(pool)
        for i in range(1000):
            tree.insert((i, 0), i * 3)
        tree.flush()
        pool.close()

        pool2 = BufferPool(FilePager(path), capacity=32)
        reopened = BPlusTree(pool2)
        assert len(reopened) == 1000
        assert reopened.get((500, 0)) == 1500
        reopened.check_invariants()
        pool2.close()

    def test_bad_meta_page_rejected(self, tmp_path):
        path = tmp_path / "junk.btree"
        path.write_bytes(b"\x00" * 4096)
        from repro.storage.bptree import BPlusTreeError
        with pytest.raises(BPlusTreeError):
            BPlusTree(BufferPool(FilePager(str(path)), capacity=8))


class TestNodeCapacities:
    def test_capacities_fit_page(self):
        # Serialised sizes must fit in a page (guards layout edits).
        from repro.storage.page import PAGE_SIZE
        assert 7 + LEAF_MAX * 24 <= PAGE_SIZE
        assert 7 + INTERNAL_MAX * 16 + (INTERNAL_MAX + 1) * 4 <= PAGE_SIZE


class TestPageReclamation:
    def test_mass_delete_frees_pages(self):
        """Merging and root collapse return pages to the free list."""
        pool = BufferPool(MemoryPager(), capacity=64)
        tree = BPlusTree(pool)
        n = LEAF_MAX * 6
        for i in range(n):
            tree.insert((i, 0), i)
        assert pool._pager.free_count == 0
        for i in range(n):
            tree.delete((i, 0))
        tree.check_invariants()
        assert pool._pager.free_count > 0

    def test_delete_insert_cycle_reuses_pages(self):
        pool = BufferPool(MemoryPager(), capacity=64)
        tree = BPlusTree(pool)
        n = LEAF_MAX * 4
        for i in range(n):
            tree.insert((i, 0), i)
        pages_after_build = pool._pager.page_count
        for _round in range(3):
            for i in range(n):
                tree.delete((i, 0))
            for i in range(n):
                tree.insert((i, 0), i)
        tree.check_invariants()
        # Page footprint must not grow unboundedly across churn rounds.
        assert pool._pager.page_count <= pages_after_build * 2
