"""Tests for the query workload (Section VI-B1's 90-query set)."""

import pytest

from repro.core.model import Semantics
from repro.data.queries import MEANINGFUL_KEYWORDS, QueryWorkload
from repro.data.vocabulary import TABLE2_KEYWORDS


class TestKeywordSet:
    def test_thirty_meaningful_keywords(self):
        assert len(MEANINGFUL_KEYWORDS) == 30
        assert len(set(MEANINGFUL_KEYWORDS)) == 30

    def test_includes_table2(self):
        assert set(TABLE2_KEYWORDS) <= set(MEANINGFUL_KEYWORDS)


class TestWorkloadSpecs:
    def test_thirty_specs_per_keyword_count(self, workload):
        for count in (1, 2, 3):
            specs = workload.specs(count)
            assert len(specs) == 30
            assert all(spec.num_keywords == count for spec in specs)

    def test_ninety_total(self, workload):
        assert len(workload.all_specs()) == 90

    def test_multi_keyword_specs_unique(self, workload):
        for count in (2, 3):
            specs = workload.specs(count)
            assert len(set(specs)) == 30

    def test_multi_keyword_anchor_is_meaningful(self, workload):
        for count in (2, 3):
            for spec in workload.specs(count):
                assert spec.keywords[0] in MEANINGFUL_KEYWORDS

    def test_invalid_keyword_count(self, workload):
        with pytest.raises(ValueError):
            workload.specs(4)


class TestBinding:
    def test_bind_produces_valid_query(self, workload):
        spec = workload.specs(2)[0]
        query = workload.bind(spec, radius_km=10.0, k=5,
                              semantics=Semantics.AND)
        assert query.radius_km == 10.0
        assert query.k == 5
        assert query.semantics is Semantics.AND
        assert query.keywords  # analysed, non-empty

    def test_bind_samples_location_from_corpus(self, corpus, workload):
        locations = {post.location for post in corpus.posts}
        spec = workload.specs(1)[0]
        query = workload.bind(spec, radius_km=10.0)
        assert query.location in locations

    def test_bind_with_explicit_location(self, workload):
        query = workload.bind(workload.specs(1)[0], radius_km=5.0,
                              location=(43.65, -79.38))
        assert query.location == (43.65, -79.38)

    def test_make_queries_limit(self, workload):
        queries = workload.make_queries(1, radius_km=10.0, limit=7)
        assert len(queries) == 7

    def test_random_queries_count(self, workload):
        queries = workload.random_queries(12, radius_km=10.0)
        assert len(queries) == 12


class TestDeterminism:
    def test_same_seed_same_specs(self, corpus):
        a = QueryWorkload(corpus, seed=5)
        b = QueryWorkload(corpus, seed=5)
        assert a.all_specs() == b.all_specs()
