"""Property tests for the numpy-optional columnar primitives.

Every kernel is exercised on both backends (``force_backend``) and must
be *bitwise* identical to its scalar reference — the contract the fused
query operators rely on.  On a host without numpy the numpy leg skips
and the fallback leg still proves the stdlib path.
"""

import math
from bisect import bisect_left, bisect_right

import pytest
from hypothesis import given, settings, strategies as st

from repro import columnar
from repro.geo.distance import haversine_km, haversine_km_batch
from repro.index.blocks import encode_postings_blocks, open_postings

BACKENDS = ["python"] + (["numpy"] if columnar.have_numpy() else [])

backend = pytest.fixture(params=BACKENDS)(lambda request: request.param)


latitudes = st.floats(min_value=-85.0, max_value=85.0,
                      allow_nan=False, allow_infinity=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0,
                       allow_nan=False, allow_infinity=False)
points = st.lists(st.tuples(latitudes, longitudes), max_size=60)

postings_lists = st.lists(
    st.tuples(st.integers(0, 5000), st.integers(0, 40)),
    max_size=200,
).map(lambda items: sorted({tid: tf for tid, tf in items}.items()))


class TestBackendSelection:
    def test_force_backend_round_trip(self):
        original = columnar.active_backend()
        with columnar.force_backend("python"):
            assert columnar.active_backend() == "python"
        assert columnar.active_backend() == original

    def test_force_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown columnar backend"):
            with columnar.force_backend("cuda"):
                pass  # pragma: no cover

    @pytest.mark.skipif(columnar.have_numpy(), reason="needs numpy absent")
    def test_numpy_backend_requires_numpy(self):
        with pytest.raises(RuntimeError):
            with columnar.force_backend("numpy"):
                pass  # pragma: no cover

    def test_columns_round_trip(self, backend):
        with columnar.force_backend(backend):
            ints = columnar.int_column([3, 1, 2])
            floats = columnar.float_column([0.5, -1.25])
            assert columnar.column_tolist(ints) == [3, 1, 2]
            assert columnar.column_tolist(floats) == [0.5, -1.25]
            # Python numbers, not numpy scalars.
            assert type(columnar.column_tolist(ints)[0]) is int
            assert type(columnar.column_tolist(floats)[0]) is float


class TestSortedRange:
    @given(tids=st.lists(st.integers(0, 1000)),
           lo=st.one_of(st.none(), st.integers(-5, 1005)),
           hi=st.one_of(st.none(), st.integers(-5, 1005)))
    @settings(max_examples=60, deadline=None)
    def test_matches_bisect(self, tids, lo, hi):
        tids = sorted(tids)
        expect_lo = 0 if lo is None else bisect_left(tids, lo)
        expect_hi = len(tids) if hi is None else bisect_right(tids, hi)
        for name in BACKENDS:
            with columnar.force_backend(name):
                column = columnar.int_column(tids)
                assert columnar.sorted_range(column, lo, hi) == \
                    (expect_lo, expect_hi)


class TestSelectTopK:
    # Few distinct scores so ties at the k-th position are common —
    # exactly the case partial selection can get wrong.
    scored_lists = st.lists(
        st.tuples(st.integers(0, 10_000),
                  st.sampled_from([0.0, 0.25, 0.5, 0.5000000001, 1.0])),
        max_size=80,
    ).map(lambda items: list({uid: score for uid, score in items}.items()))

    @given(scored=scored_lists, k=st.integers(0, 20))
    @settings(max_examples=80, deadline=None)
    def test_matches_sorted_reference(self, scored, k):
        reference = sorted(scored, key=lambda item: (-item[1], item[0]))[:k]
        for name in BACKENDS:
            with columnar.force_backend(name):
                selected = columnar.select_top_k(scored, k)
                assert [(uid, score) for _pos, uid, score in selected] \
                    == reference
                # Positions must point back into the input.
                for position, uid, score in selected:
                    assert scored[position] == (uid, score)


class TestHaversineBatch:
    @given(origin=st.tuples(latitudes, longitudes), targets=points)
    @settings(max_examples=60, deadline=None)
    def test_bitwise_parity_with_scalar(self, origin, targets):
        lats = [lat for lat, _lon in targets]
        lons = [lon for _lat, lon in targets]
        expected = [haversine_km(origin, point) for point in targets]
        for name in BACKENDS:
            with columnar.force_backend(name):
                column = haversine_km_batch(origin, lats, lons)
                got = columnar.column_tolist(column)
                assert len(got) == len(expected)
                for value, reference in zip(got, expected):
                    assert math.isclose(value, reference, rel_tol=0.0,
                                        abs_tol=0.0), (value, reference)

    def test_empty_batch(self, backend):
        with columnar.force_backend(backend):
            column = haversine_km_batch((43.65, -79.38), [], [])
            assert columnar.column_tolist(column) == []


class TestDecodeBlockArrays:
    @given(postings=postings_lists,
           block_size=st.sampled_from([1, 3, 7, 16]))
    @settings(max_examples=40, deadline=None)
    def test_columns_match_materialized_tuples(self, postings, block_size):
        data = encode_postings_blocks(postings, block_size=block_size)
        for name in BACKENDS:
            with columnar.force_backend(name):
                reader = open_postings(data)
                tids, tfs = reader.column_view()
                assert list(zip(columnar.column_tolist(tids),
                                columnar.column_tolist(tfs))) \
                    == reader.materialize() == postings

    @given(postings=postings_lists.filter(bool),
           block_size=st.sampled_from([1, 3, 7]))
    @settings(max_examples=40, deadline=None)
    def test_clip_then_columns(self, postings, block_size):
        data = encode_postings_blocks(postings, block_size=block_size)
        tids = [tid for tid, _tf in postings]
        lo = tids[len(tids) // 3]
        hi = tids[(2 * len(tids)) // 3]
        expected = [(tid, tf) for tid, tf in postings if lo <= tid <= hi]
        for name in BACKENDS:
            with columnar.force_backend(name):
                clipped = open_postings(data).clip(lo, hi)
                got_tids, got_tfs = clipped.column_view()
                assert list(zip(columnar.column_tolist(got_tids),
                                columnar.column_tolist(got_tfs))) == expected

    def test_per_block_decode_accounting(self, backend):
        class Stats:
            blocks_decoded = 0
            bytes_decoded = 0
            blocks_skipped = 0
            block_cache_hits = 0
            block_cache_misses = 0

        postings = [(tid, tid % 5) for tid in range(40)]
        data = encode_postings_blocks(postings, block_size=8)
        with columnar.force_backend(backend):
            stats = Stats()
            reader = open_postings(data, stats=stats)
            tids, tfs = reader.decode_block_arrays(0)
            assert columnar.column_tolist(tids) == list(range(8))
            assert columnar.column_tolist(tfs) == [tid % 5
                                                   for tid in range(8)]
            assert stats.blocks_decoded == 1
            assert stats.bytes_decoded > 0
            # Memoised: decoding the same block twice is one decode.
            reader.decode_block_arrays(0)
            assert stats.blocks_decoded == 1

    def test_block_index_out_of_range(self, backend):
        data = encode_postings_blocks([(1, 1)], block_size=4)
        with columnar.force_backend(backend):
            with pytest.raises(IndexError):
                open_postings(data).decode_block_arrays(5)
