"""Tests for the variant Kendall tau (Section VI-B3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.kendall import (
    average_tau,
    kendall_tau,
    kendall_tau_classic,
    padded_ranks,
)

rankings = st.lists(st.integers(min_value=0, max_value=30), min_size=0,
                    max_size=10, unique=True)


class TestPaddedRanks:
    def test_paper_example_padding(self):
        """k=3, rho_b=<A,B,C>, rho_d=<B,D,E>: D and E both rank 4th in
        rho_b; A and C both rank 4th in rho_d."""
        rho_b = ["A", "B", "C"]
        rho_d = ["B", "D", "E"]
        ranks_b = padded_ranks(rho_b, rho_d)
        ranks_d = padded_ranks(rho_d, rho_b)
        assert ranks_b == {"A": 1, "B": 2, "C": 3, "D": 4, "E": 4}
        assert ranks_d == {"B": 1, "D": 2, "E": 3, "A": 4, "C": 4}

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            padded_ranks(["A", "A"], [])


class TestKendallTau:
    def test_identical_rankings(self):
        assert kendall_tau([1, 2, 3], [1, 2, 3]) == 1.0

    def test_reversed_rankings(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_disjoint_rankings(self):
        """Fully disjoint top-k lists are not anti-correlated: each list's
        own elements precede the other's padding, which the two rankings
        disagree about, but pad-pad ties agree."""
        tau = kendall_tau([1, 2], [3, 4])
        assert -1.0 <= tau < 1.0

    def test_paper_example_value(self):
        rho_b = ["A", "B", "C"]
        rho_d = ["B", "D", "E"]
        # m = 5 -> 10 pairs.  Concordant: (B,C)? B(2)<C(3) in b, B(1)<C(4)
        # in d -> concordant; (A,C): 1<3, 4=4 tie in d -> neither;
        # (D,E): tie in b, 2<3 in d -> neither; etc.
        tau = kendall_tau(rho_b, rho_d)
        assert -1.0 <= tau <= 1.0
        # Hand count: pairs (A,B):b 1<2, d 4>1 discordant; (A,C): neither;
        # (A,D):1<4, 4>2 discordant; (A,E):1<4,4>3 discordant;
        # (B,C):2<3,1<4 concordant; (B,D):2<4,1<2 concordant;
        # (B,E):2<4,1<3 concordant; (C,D):3<4,4>2 discordant;
        # (C,E):3<4,4>3 discordant; (D,E): neither.
        # cp=3, dp=5 -> tau = (3-5)/10 = -0.2
        assert tau == pytest.approx(-0.2)

    def test_single_common_swap(self):
        assert kendall_tau([1, 2], [2, 1]) == pytest.approx(-1.0)

    def test_empty(self):
        assert kendall_tau([], []) == 1.0

    def test_singleton(self):
        assert kendall_tau([5], [5]) == 1.0

    @given(rankings, rankings)
    @settings(max_examples=80, deadline=None)
    def test_bounded(self, a, b):
        assert -1.0 <= kendall_tau(a, b) <= 1.0

    @given(rankings, rankings)
    @settings(max_examples=60, deadline=None)
    def test_symmetric(self, a, b):
        assert kendall_tau(a, b) == pytest.approx(kendall_tau(b, a))

    @given(rankings)
    @settings(max_examples=40, deadline=None)
    def test_self_tau_is_one(self, a):
        assert kendall_tau(a, a) == pytest.approx(1.0)


class TestClassicTau:
    def test_matches_variant_on_identical_sets(self):
        a = [1, 2, 3, 4]
        b = [2, 1, 3, 4]
        assert kendall_tau_classic(a, b) == pytest.approx(kendall_tau(a, b))

    def test_requires_same_elements(self):
        with pytest.raises(ValueError):
            kendall_tau_classic([1, 2], [1, 3])

    @given(st.permutations(list(range(6))))
    @settings(max_examples=40, deadline=None)
    def test_against_variant(self, permuted):
        base = list(range(6))
        assert kendall_tau_classic(base, list(permuted)) == pytest.approx(
            kendall_tau(base, list(permuted)))


class TestAverageTau:
    def test_empty_defaults_to_one(self):
        assert average_tau([]) == 1.0

    def test_mean(self):
        pairs = [([1, 2], [1, 2]), ([1, 2], [2, 1])]
        assert average_tau(pairs) == pytest.approx(0.0)
