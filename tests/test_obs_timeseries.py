"""Tests for the time-series instruments (windowed rings)."""

import pytest

from repro.obs.timeseries import TimeSeriesCounter, TimeSeriesHistogram


class FakeClock:
    """Deterministic injectable clock."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTimeSeriesCounter:
    def test_cumulative_value_matches_plain_counter(self):
        clock = FakeClock()
        counter = TimeSeriesCounter(window_seconds=5.0, num_windows=4,
                                    clock=clock)
        counter.inc()
        counter.inc(9)
        assert counter.value == 10

    def test_windows_split_by_wall_clock(self):
        clock = FakeClock(start=0.0)
        counter = TimeSeriesCounter(window_seconds=5.0, num_windows=4,
                                    clock=clock)
        counter.inc(3)
        clock.advance(5.0)           # next window
        counter.inc(7)
        windows = counter.windows()
        assert [w["delta"] for w in windows] == [3, 7]
        assert [w["window_start"] for w in windows] == [0.0, 5.0]
        assert windows[1]["rate"] == pytest.approx(7 / 5.0)

    def test_ring_overwrites_stale_slots(self):
        clock = FakeClock(start=0.0)
        counter = TimeSeriesCounter(window_seconds=1.0, num_windows=3,
                                    clock=clock)
        for i in range(6):           # six windows through a 3-slot ring
            counter.inc()
            if i < 5:
                clock.advance(1.0)
        windows = counter.windows()
        # Only the last num_windows windows survive.
        assert len(windows) == 3
        assert [w["window_start"] for w in windows] == [3.0, 4.0, 5.0]
        # The cumulative total still counts everything.
        assert counter.value == 6

    def test_rate_over_trailing_span(self):
        clock = FakeClock(start=0.0)
        counter = TimeSeriesCounter(window_seconds=1.0, num_windows=60,
                                    clock=clock)
        for _ in range(10):
            counter.inc(2)
            clock.advance(1.0)
        # Last 5 seconds → windows 5..9, 2 events each.
        assert counter.rate(5.0) == pytest.approx(2.0)
        # The full span the ring covers.
        assert counter.rate(60.0) == pytest.approx(20 / 60.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            TimeSeriesCounter(window_seconds=0.0)
        with pytest.raises(ValueError):
            TimeSeriesCounter(num_windows=0)
        counter = TimeSeriesCounter()
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            counter.rate(0.0)


class TestTimeSeriesHistogram:
    def test_cumulative_summary_covers_all_windows(self):
        clock = FakeClock(start=0.0)
        histogram = TimeSeriesHistogram(window_seconds=5.0, num_windows=8,
                                        clock=clock)
        histogram.observe(1.0)
        clock.advance(5.0)
        histogram.observe(3.0)
        summary = histogram.summary()
        assert summary["count"] == 2
        assert summary["sum"] == pytest.approx(4.0)

    def test_per_window_summaries(self):
        clock = FakeClock(start=0.0)
        histogram = TimeSeriesHistogram(window_seconds=5.0, num_windows=8,
                                        clock=clock)
        for value in (0.010, 0.012, 0.014):
            histogram.observe(value)
        clock.advance(5.0)
        histogram.observe(0.500)
        windows = histogram.windows()
        assert len(windows) == 2
        assert windows[0]["count"] == 3
        assert windows[0]["window_start"] == 0.0
        assert windows[1]["count"] == 1
        # Log-bucket quantiles carry ~5% relative error at growth 1.1.
        assert windows[1]["p95"] == pytest.approx(0.500, rel=0.06)

    def test_recent_merges_trailing_windows_only(self):
        clock = FakeClock(start=0.0)
        histogram = TimeSeriesHistogram(window_seconds=1.0, num_windows=60,
                                        clock=clock)
        histogram.observe(100.0)     # old outlier, window 0
        clock.advance(30.0)
        for _ in range(5):
            histogram.observe(1.0)
        merged = histogram.recent(10.0)
        assert merged["count"] == 5
        assert merged["max"] == pytest.approx(1.0, rel=0.06)
        # A span reaching back to the start sees the outlier again.
        assert histogram.recent(60.0)["count"] == 6

    def test_stale_windows_rotate_out(self):
        clock = FakeClock(start=0.0)
        histogram = TimeSeriesHistogram(window_seconds=1.0, num_windows=2,
                                        clock=clock)
        histogram.observe(1.0)
        clock.advance(10.0)          # far past the ring's horizon
        histogram.observe(2.0)
        windows = histogram.windows()
        assert len(windows) == 1
        assert windows[0]["window_start"] == 10.0

    def test_zero_and_negative_observations(self):
        clock = FakeClock()
        histogram = TimeSeriesHistogram(window_seconds=5.0, num_windows=4,
                                        clock=clock)
        histogram.observe(0.0)
        histogram.observe(5.0)
        summary = histogram.recent(5.0)
        assert summary["count"] == 2
        assert summary["min"] == 0.0
