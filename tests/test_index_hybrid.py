"""Tests for the hybrid index facade."""

import pytest

from repro.core.model import Post
from repro.dfs.cluster import paper_cluster
from repro.geo import geohash
from repro.index.builder import IndexConfig
from repro.index.hybrid import HybridIndex
from repro.text import Analyzer

TORONTO = (43.6532, -79.3832)


def make_posts():
    analyzer = Analyzer()
    texts = [
        (1, "hotel by the lake", 43.65, -79.38),
        (2, "hotel hotel downtown", 43.66, -79.39),
        (3, "cozy cafe", 43.64, -79.37),
        (4, "beach hotel", -33.89, 151.27),
    ]
    return [Post(sid=sid, uid=sid, location=(lat, lon),
                 words=tuple(analyzer.analyze(text)), text=text)
            for sid, text, lat, lon in texts]


@pytest.fixture()
def index():
    return HybridIndex.build(make_posts(), paper_cluster())


class TestPostingsAccess:
    def test_postings_fetch(self, index):
        cell = geohash.encode(43.65, -79.38, 4)
        postings = index.postings(cell, "hotel")
        assert postings == [(1, 1), (2, 2)]

    def test_unindexed_pair_empty(self, index):
        assert len(index.postings("zzzz", "hotel")) == 0
        cell = geohash.encode(43.65, -79.38, 4)
        assert len(index.postings(cell, "nonexistent")) == 0

    def test_stats_updated(self, index):
        cell = geohash.encode(43.65, -79.38, 4)
        index.reset_stats()
        postings = index.postings(cell, "hotel")
        assert index.stats.postings_fetches == 1
        assert index.stats.postings_entries_read == 2
        assert index.stats.bytes_read > 0
        # Lazy view: nothing decoded until the entries are consumed.
        assert index.stats.bytes_decoded == 0
        list(postings)
        assert index.stats.bytes_decoded > 0
        assert index.stats.blocks_decoded == 1

    def test_flat_format_stats(self):
        index = HybridIndex.build(
            make_posts(), paper_cluster(),
            config=IndexConfig(postings_format="flat"))
        cell = geohash.encode(43.65, -79.38, 4)
        index.reset_stats()
        postings = index.postings(cell, "hotel")
        assert list(postings) == [(1, 1), (2, 2)]
        assert index.stats.bytes_read == 24
        assert index.stats.bytes_decoded == 24  # flat decodes eagerly

    def test_postings_for_query_groups(self, index):
        cells = index.cover(TORONTO, 10.0)
        grouped = index.postings_for_query(cells, ["hotel", "cafe"])
        all_terms = {term for per_term in grouped.values()
                     for term in per_term}
        assert all_terms == {"hotel", "cafe"}


class TestCache:
    def test_cache_disabled_by_default(self):
        index = HybridIndex.build(make_posts(), paper_cluster())
        cell = geohash.encode(43.65, -79.38, 4)
        index.postings(cell, "hotel")
        index.postings(cell, "hotel")
        assert index.stats.cache_hits == 0
        assert index.stats.postings_fetches == 2

    def test_cache_hits_when_enabled(self):
        index = HybridIndex.build(make_posts(), paper_cluster(),
                                  cache_size=8)
        cell = geohash.encode(43.65, -79.38, 4)
        first = index.postings(cell, "hotel")
        second = index.postings(cell, "hotel")
        assert first == second
        assert index.stats.cache_hits == 1
        assert index.stats.postings_fetches == 1

    def test_cache_returns_are_immutable(self):
        # Postings used to be handed out as defensive list copies (O(n)
        # per cache hit).  They are now immutable views shared by
        # reference: mutation is impossible, so the copy is gone.
        index = HybridIndex.build(make_posts(), paper_cluster(),
                                  cache_size=8)
        cell = geohash.encode(43.65, -79.38, 4)
        first = index.postings(cell, "hotel")
        with pytest.raises((AttributeError, TypeError)):
            first.clear()
        with pytest.raises((AttributeError, TypeError)):
            first.append((999, 1))
        second = index.postings(cell, "hotel")
        assert second is first  # shared by reference, no copy
        assert second == [(1, 1), (2, 2)]
        assert index.stats.postings_fetches == 1  # served from cache

    def test_flat_cache_returns_are_immutable(self):
        index = HybridIndex.build(make_posts(), paper_cluster(),
                                  cache_size=8,
                                  config=IndexConfig(postings_format="flat"))
        cell = geohash.encode(43.65, -79.38, 4)
        first = index.postings(cell, "hotel")
        assert isinstance(first, tuple)
        assert list(index.postings(cell, "hotel")) == [(1, 1), (2, 2)]

    def test_cache_eviction(self):
        index = HybridIndex.build(make_posts(), paper_cluster(),
                                  cache_size=1)
        cell = geohash.encode(43.65, -79.38, 4)
        index.postings(cell, "hotel")
        index.postings(cell, "cafe")   # evicts hotel
        index.postings(cell, "hotel")  # miss again
        assert index.stats.postings_fetches == 3


class TestCoverIntegration:
    def test_cover_uses_index_length(self):
        for length in (2, 3, 4):
            index = HybridIndex.build(
                make_posts(), paper_cluster(),
                config=IndexConfig(geohash_length=length))
            for cell in index.cover(TORONTO, 10.0):
                assert len(cell) == length


class TestSizeReporting:
    def test_inverted_size_counts_postings(self):
        # Under the legacy flat format every entry costs exactly 12
        # bytes; the block format trades that for varint bodies plus a
        # fixed header, so it is asserted separately as "smaller".
        flat = HybridIndex.build(make_posts(), paper_cluster(),
                                 config=IndexConfig(postings_format="flat"))
        total_entries = sum(ref.count for _k, ref in flat.forward.items())
        assert flat.inverted_size_bytes() == total_entries * 12

    def test_block_format_payloads_resolve(self, index):
        # Every forward-index ref must round-trip through the block
        # payload with a matching entry count.
        for (cell, term), ref in index.forward.items():
            postings = index.postings(cell, term)
            assert len(postings) == ref.count

    def test_forward_size_positive(self, index):
        assert index.forward_size_bytes() > 0
