"""Tests for the hybrid index facade."""

import pytest

from repro.core.model import Post
from repro.dfs.cluster import paper_cluster
from repro.geo import geohash
from repro.index.builder import IndexConfig
from repro.index.hybrid import HybridIndex
from repro.text import Analyzer

TORONTO = (43.6532, -79.3832)


def make_posts():
    analyzer = Analyzer()
    texts = [
        (1, "hotel by the lake", 43.65, -79.38),
        (2, "hotel hotel downtown", 43.66, -79.39),
        (3, "cozy cafe", 43.64, -79.37),
        (4, "beach hotel", -33.89, 151.27),
    ]
    return [Post(sid=sid, uid=sid, location=(lat, lon),
                 words=tuple(analyzer.analyze(text)), text=text)
            for sid, text, lat, lon in texts]


@pytest.fixture()
def index():
    return HybridIndex.build(make_posts(), paper_cluster())


class TestPostingsAccess:
    def test_postings_fetch(self, index):
        cell = geohash.encode(43.65, -79.38, 4)
        postings = index.postings(cell, "hotel")
        assert postings == [(1, 1), (2, 2)]

    def test_unindexed_pair_empty(self, index):
        assert index.postings("zzzz", "hotel") == []
        cell = geohash.encode(43.65, -79.38, 4)
        assert index.postings(cell, "nonexistent") == []

    def test_stats_updated(self, index):
        cell = geohash.encode(43.65, -79.38, 4)
        index.reset_stats()
        index.postings(cell, "hotel")
        assert index.stats.postings_fetches == 1
        assert index.stats.postings_entries_read == 2
        assert index.stats.bytes_read == 24

    def test_postings_for_query_groups(self, index):
        cells = index.cover(TORONTO, 10.0)
        grouped = index.postings_for_query(cells, ["hotel", "cafe"])
        all_terms = {term for per_term in grouped.values()
                     for term in per_term}
        assert all_terms == {"hotel", "cafe"}


class TestCache:
    def test_cache_disabled_by_default(self):
        index = HybridIndex.build(make_posts(), paper_cluster())
        cell = geohash.encode(43.65, -79.38, 4)
        index.postings(cell, "hotel")
        index.postings(cell, "hotel")
        assert index.stats.cache_hits == 0
        assert index.stats.postings_fetches == 2

    def test_cache_hits_when_enabled(self):
        index = HybridIndex.build(make_posts(), paper_cluster(),
                                  cache_size=8)
        cell = geohash.encode(43.65, -79.38, 4)
        first = index.postings(cell, "hotel")
        second = index.postings(cell, "hotel")
        assert first == second
        assert index.stats.cache_hits == 1
        assert index.stats.postings_fetches == 1

    def test_cache_hit_returns_defensive_copy(self):
        # Regression: a cache hit used to return the cached list by
        # reference, so a caller mutating its result (temporal clipping,
        # merging) would corrupt every later hit for the same pair.
        index = HybridIndex.build(make_posts(), paper_cluster(),
                                  cache_size=8)
        cell = geohash.encode(43.65, -79.38, 4)
        first = index.postings(cell, "hotel")
        first.clear()  # simulate a mutation-happy consumer
        second = index.postings(cell, "hotel")
        assert second == [(1, 1), (2, 2)]
        assert index.stats.postings_fetches == 1  # still served from cache

    def test_cache_fill_keeps_cached_list_private(self):
        index = HybridIndex.build(make_posts(), paper_cluster(),
                                  cache_size=8)
        cell = geohash.encode(43.65, -79.38, 4)
        filled = index.postings(cell, "hotel")  # miss populates the cache
        filled.append((999, 1))
        assert index.postings(cell, "hotel") == [(1, 1), (2, 2)]

    def test_cache_eviction(self):
        index = HybridIndex.build(make_posts(), paper_cluster(),
                                  cache_size=1)
        cell = geohash.encode(43.65, -79.38, 4)
        index.postings(cell, "hotel")
        index.postings(cell, "cafe")   # evicts hotel
        index.postings(cell, "hotel")  # miss again
        assert index.stats.postings_fetches == 3


class TestCoverIntegration:
    def test_cover_uses_index_length(self):
        for length in (2, 3, 4):
            index = HybridIndex.build(
                make_posts(), paper_cluster(),
                config=IndexConfig(geohash_length=length))
            for cell in index.cover(TORONTO, 10.0):
                assert len(cell) == length


class TestSizeReporting:
    def test_inverted_size_counts_postings(self, index):
        # 5 postings entries total (hotel x3 tweets across 2 cells,
        # cafe x1, beach x1, plus per-term entries) -> 12 bytes each.
        total_entries = sum(ref.count for _k, ref in index.forward.items())
        assert index.inverted_size_bytes() == total_entries * 12

    def test_forward_size_positive(self, index):
        assert index.forward_size_bytes() > 0
