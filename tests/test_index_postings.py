"""Tests for postings lists: serialisation, intersection, union."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.postings import (
    ENTRY_SIZE,
    decode_postings,
    encode_postings,
    intersect_many,
    intersect_two,
    merge_postings,
    union_many,
)

posting_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**6),
              st.integers(min_value=1, max_value=50)),
    max_size=100,
).map(lambda pairs: sorted(dict(pairs).items()))


class TestSerialisation:
    def test_roundtrip(self):
        postings = [(1, 2), (5, 1), (100, 7)]
        assert decode_postings(encode_postings(postings)) == postings

    def test_empty(self):
        assert encode_postings([]) == b""
        assert decode_postings(b"") == []

    def test_entry_size(self):
        assert len(encode_postings([(1, 1)])) == ENTRY_SIZE

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            encode_postings([(5, 1), (3, 1)])

    def test_misaligned_bytes_rejected(self):
        with pytest.raises(ValueError):
            decode_postings(b"\x00" * (ENTRY_SIZE + 1))

    @given(posting_lists)
    def test_roundtrip_random(self, postings):
        assert decode_postings(encode_postings(postings)) == postings


class TestIntersectTwo:
    def test_basic(self):
        a = [(1, 1), (3, 2), (5, 1)]
        b = [(3, 4), (5, 5), (9, 1)]
        assert intersect_two(a, b) == [(3, 2, 4), (5, 1, 5)]

    def test_disjoint(self):
        assert intersect_two([(1, 1)], [(2, 1)]) == []

    def test_empty_sides(self):
        assert intersect_two([], [(1, 1)]) == []
        assert intersect_two([(1, 1)], []) == []

    def test_skewed_sizes_gallop(self):
        small = [(500, 1), (999999, 2)]
        large = [(i, 1) for i in range(0, 1000000, 7)]
        got = intersect_two(small, large)
        expected = [(tid, tf, 1) for tid, tf in small if tid % 7 == 0]
        assert got == expected

    @given(posting_lists, posting_lists)
    @settings(max_examples=60, deadline=None)
    def test_matches_set_oracle(self, a, b):
        got = {tid for tid, _ta, _tb in intersect_two(a, b)}
        expected = {tid for tid, _tf in a} & {tid for tid, _tf in b}
        assert got == expected

    @given(posting_lists, posting_lists)
    @settings(max_examples=30, deadline=None)
    def test_tf_sides_correct(self, a, b):
        tf_a = dict(a)
        tf_b = dict(b)
        for tid, ta, tb in intersect_two(a, b):
            assert ta == tf_a[tid] and tb == tf_b[tid]


class TestIntersectMany:
    def test_three_lists(self):
        lists = [[(1, 1), (2, 2), (3, 3)],
                 [(2, 5), (3, 1)],
                 [(2, 7), (4, 1)]]
        assert intersect_many(lists) == [(2, [2, 5, 7])]

    def test_single_list(self):
        assert intersect_many([[(1, 4)]]) == [(1, [4])]

    def test_empty_cases(self):
        assert intersect_many([]) == []
        assert intersect_many([[(1, 1)], []]) == []

    @given(st.lists(posting_lists, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_matches_set_oracle(self, lists):
        got = {tid for tid, _tfs in intersect_many(lists)}
        sets = [{tid for tid, _tf in lst} for lst in lists]
        expected = set.intersection(*sets) if sets else set()
        assert got == expected

    @given(st.lists(posting_lists, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_output_sorted_and_tfs_ordered(self, lists):
        result = intersect_many(lists)
        tids = [tid for tid, _tfs in result]
        assert tids == sorted(tids)
        maps = [dict(lst) for lst in lists]
        for tid, tfs in result:
            assert tfs == [m[tid] for m in maps]


class TestUnionMany:
    def test_basic(self):
        lists = [[(1, 1), (3, 1)], [(2, 2), (3, 4)]]
        assert union_many(lists) == [(1, [1, 0]), (2, [0, 2]), (3, [1, 4])]

    def test_empty(self):
        assert union_many([]) == []
        assert union_many([[], []]) == []

    @given(st.lists(posting_lists, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_matches_set_oracle(self, lists):
        got = {tid for tid, _tfs in union_many(lists)}
        expected = set()
        for lst in lists:
            expected |= {tid for tid, _tf in lst}
        assert got == expected

    @given(st.lists(posting_lists, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_sorted_and_complete_tfs(self, lists):
        result = union_many(lists)
        tids = [tid for tid, _tfs in result]
        assert tids == sorted(tids)
        maps = [dict(lst) for lst in lists]
        for tid, tfs in result:
            assert tfs == [m.get(tid, 0) for m in maps]


class TestMergePostings:
    def test_sums_tf_on_collision(self):
        merged = merge_postings([[(1, 2), (5, 1)], [(1, 3), (9, 9)]])
        assert merged == [(1, 5), (5, 1), (9, 9)]

    @given(st.lists(posting_lists, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_total_tf_preserved(self, lists):
        merged = merge_postings(lists)
        assert sum(tf for _tid, tf in merged) == sum(
            tf for lst in lists for _tid, tf in lst)
