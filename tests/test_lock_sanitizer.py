"""Runtime lock-sanitizer tests: inversion detection, guarded-field
enforcement, the shared smoke workload, and the overhead budget.

The overhead test is the acceptance gate for running the sanitizer
under the concurrency hammer tests: instrumenting the hot lock of the
merge path must stay within 1.10x of the uninstrumented run.  Timing is
min-of-N with retries so scheduler noise cannot fail a healthy build.
"""

import threading
import time

from types import SimpleNamespace

from repro.index.builder import IndexConfig
from repro.ingest.live import LiveIndex
from repro.lint.sanitizer import (
    LockSanitizer,
    SanitizedLock,
    guard_instance,
    instrument_lock_attr,
    run_sanitizer_smoke,
)
from repro.text.analyzer import Analyzer


class TestInversionDetection:
    def test_sequential_opposite_orders_form_a_cycle(self):
        sanitizer = LockSanitizer()
        alpha = SanitizedLock(threading.Lock(), "alpha", sanitizer)
        beta = SanitizedLock(threading.Lock(), "beta", sanitizer)
        with alpha:
            with beta:
                pass
        with beta:
            with alpha:
                pass
        report = sanitizer.report()
        assert not report.ok
        assert report.inversions == [("alpha", "beta")]
        assert any("potential deadlock" in line
                   for line in report.describe())

    def test_two_threads_that_never_overlap_still_flagged(self):
        # The whole point: the inverted orders run at different times on
        # different threads, so no test run would ever deadlock -- the
        # observed-order graph still has the cycle.
        sanitizer = LockSanitizer()
        alpha = SanitizedLock(threading.Lock(), "alpha", sanitizer)
        beta = SanitizedLock(threading.Lock(), "beta", sanitizer)
        serializer = threading.Lock()  # plain: keeps the orders disjoint

        def run(first, second):
            with serializer:
                with first:
                    with second:
                        pass

        pool = [threading.Thread(target=run, args=(alpha, beta)),
                threading.Thread(target=run, args=(beta, alpha))]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(30.0)
        assert not any(thread.is_alive() for thread in pool)
        assert sanitizer.report().inversions == [("alpha", "beta")]

    def test_consistent_order_is_clean(self):
        sanitizer = LockSanitizer()
        alpha = SanitizedLock(threading.Lock(), "alpha", sanitizer)
        beta = SanitizedLock(threading.Lock(), "beta", sanitizer)
        for _ in range(3):
            with alpha:
                with beta:
                    pass
        report = sanitizer.report()
        assert report.ok
        assert report.edges == {("alpha", "beta"): 3}

    def test_reentrant_acquire_is_not_an_ordering_edge(self):
        sanitizer = LockSanitizer()
        lock = SanitizedLock(threading.RLock(), "outer", sanitizer)
        with lock:
            with lock:
                pass
        report = sanitizer.report()
        assert report.ok
        assert report.edges == {}


class TestGuardedFields:
    def test_unguarded_access_is_recorded_once(self):
        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._value = 0

        sanitizer = LockSanitizer()
        box = Box()
        instrument_lock_attr(box, "_lock", sanitizer)
        guard_instance(box, sanitizer, {"_value": "_lock"})

        with box._lock:
            box._value = 5  # guarded write: fine
        assert sanitizer.report().unguarded == []

        for _ in range(3):  # deduplicated
            _ = box._value
        report = sanitizer.report()
        assert report.unguarded == [
            "unguarded access: Box._value read without Box._lock held"]
        assert not report.ok

    def test_instrumentation_is_idempotent(self):
        class Box:
            def __init__(self):
                self._lock = threading.Lock()

        sanitizer = LockSanitizer()
        box = Box()
        first = instrument_lock_attr(box, "_lock", sanitizer)
        second = instrument_lock_attr(box, "_lock", sanitizer)
        assert first is second


class TestSmokeWorkload:
    def test_smoke_run_on_real_registries_is_clean(self):
        report = run_sanitizer_smoke(threads=2, iterations=120)
        assert report.ok
        assert report.acquisitions > 0


# ---------------------------------------------------------------------------
# Overhead budget
# ---------------------------------------------------------------------------

OVERHEAD_BUDGET = 1.10
HAMMER_CALLS = 1200


def _make_live():
    # Hammer-shaped work: each call merges four 128-entry posting runs,
    # with one _stats_lock acquire/release for the merge accounting --
    # the same work:lock ratio the concurrency hammer tests have.
    memtables = []
    for source in range(4):
        postings = [(source * 1000 + lsn, 1) for lsn in range(128)]
        memtables.append(SimpleNamespace(
            postings=lambda cell, term, max_lsn=None, p=postings: p,
            max_lsn=0))
    return LiveIndex(IndexConfig(), Analyzer(), memtables, [])


def _time_hammer(live):
    start = time.perf_counter()
    for _ in range(HAMMER_CALLS):
        live.postings("cell", "term")
    return time.perf_counter() - start


class TestOverheadBudget:
    def test_sanitized_hammer_within_budget(self):
        plain = _make_live()
        sanitized = _make_live()
        instrument_lock_attr(sanitized, "_stats_lock", LockSanitizer())

        best_ratio = float("inf")
        for _attempt in range(5):
            base = min(_time_hammer(plain) for _ in range(3))
            instrumented = min(_time_hammer(sanitized) for _ in range(3))
            best_ratio = min(best_ratio, instrumented / base)
            if best_ratio <= OVERHEAD_BUDGET:
                break
        assert best_ratio <= OVERHEAD_BUDGET, (
            f"sanitized hammer ran {best_ratio:.3f}x the plain run "
            f"(budget {OVERHEAD_BUDGET}x)")
