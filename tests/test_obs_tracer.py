"""Tests for the tracing spans (repro.obs.tracer)."""

import threading
import time

import pytest

from repro.obs.tracer import NULL_SPAN, NULL_SPAN_CONTEXT, Span, Tracer


class TestSpan:
    def test_duration_and_finished(self):
        span = Span("work")
        assert not span.finished
        assert span.duration >= 0.0
        span.end = span.start + 0.25
        assert span.finished
        assert span.duration == pytest.approx(0.25)

    def test_set_chains_attributes(self):
        span = Span("work", {"a": 1})
        assert span.set(b=2) is span
        assert span.attributes == {"a": 1, "b": 2}

    def test_self_time_never_negative(self):
        parent = Span("parent")
        parent.end = parent.start + 0.010
        child = Span("child")
        child.start = parent.start
        child.end = parent.start + 0.015  # pathological child > parent
        parent.children.append(child)
        assert parent.self_time() == 0.0

    def test_walk_is_depth_first(self):
        root = Span("root")
        a, b, leaf = Span("a"), Span("b"), Span("leaf")
        a.children.append(leaf)
        root.children.extend([a, b])
        assert [s.name for s in root.walk()] == ["root", "a", "leaf", "b"]


class TestTracerNesting:
    def test_nesting_structure(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        roots = tracer.roots()
        assert len(roots) == 1
        assert roots[0] is root
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_root_duration_bounds_child_sum(self):
        tracer = Tracer()
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("child"):
                    time.sleep(0.001)
        (root,) = tracer.roots()
        assert root.finished
        assert all(child.finished for child in root.children)
        # Children ran sequentially inside the root, so timing must be
        # monotone: each child fits in the root and their sum does too.
        assert root.duration >= root.child_time() > 0.0
        for child in root.children:
            assert child.duration <= root.duration

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_sequential_roots_collect_in_order(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots()] == ["first", "second"]
        tracer.reset()
        assert tracer.roots() == []

    def test_exception_sets_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (root,) = tracer.roots()
        assert root.attributes["error"] == "ValueError"
        assert root.finished

    def test_out_of_order_close_rejected(self):
        tracer = Tracer()
        outer = tracer.span("outer")  # repro-lint: disable=RL003 reason=test drives __enter__/__exit__ by hand to provoke the misuse error
        inner = tracer.span("inner")  # repro-lint: disable=RL003 reason=test drives __enter__/__exit__ by hand to provoke the misuse error
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)


class TestEvents:
    def test_event_is_zero_duration_child(self):
        tracer = Tracer()
        with tracer.span("root"):
            event = tracer.event("prune", uid=7)
        assert event.duration == 0.0
        assert event.attributes == {"uid": 7}
        (root,) = tracer.roots()
        assert root.children == [event]

    def test_event_without_open_span_becomes_root(self):
        tracer = Tracer()
        event = tracer.event("lonely")
        assert tracer.roots() == [event]


class TestThreads:
    def test_worker_thread_spans_are_independent_roots(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("worker_span"):
                pass
            done.set()

        with tracer.span("main_span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert done.is_set()
            # The worker's span must NOT have nested under main_span.
            names = {s.name for s in tracer.roots()}
            assert "worker_span" in names
        (main_root,) = [s for s in tracer.roots() if s.name == "main_span"]
        assert main_root.children == []

    def test_many_threads_lose_no_roots(self):
        tracer = Tracer()

        def worker(i):
            for _ in range(50):
                with tracer.span(f"t{i}"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.roots()) == 8 * 50


class TestNullSpan:
    def test_null_context_yields_null_span(self):
        with NULL_SPAN_CONTEXT as span:
            assert span is NULL_SPAN
        assert NULL_SPAN.set(x=1) is NULL_SPAN
        assert NULL_SPAN.duration == 0.0
        assert NULL_SPAN.attributes == {}

    def test_null_context_does_not_swallow_exceptions(self):
        with pytest.raises(KeyError):
            with NULL_SPAN_CONTEXT:
                raise KeyError("propagates")
