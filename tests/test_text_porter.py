"""Tests for the Porter stemmer against the algorithm's published
reference examples (Porter 1980, "An algorithm for suffix stripping")."""

import pytest
from hypothesis import given, strategies as st

from repro.text.porter import PorterStemmer, stem

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15)

#: (input, expected) pairs straight from the steps of Porter's paper.
REFERENCE = [
    # Step 1a
    ("caresses", "caress"), ("ponies", "poni"), ("ties", "ti"),
    ("caress", "caress"), ("cats", "cat"),
    # Step 1b
    ("feed", "feed"), ("agreed", "agre"), ("plastered", "plaster"),
    ("bled", "bled"), ("motoring", "motor"), ("sing", "sing"),
    ("conflated", "conflat"), ("troubled", "troubl"), ("sized", "size"),
    ("hopping", "hop"), ("tanned", "tan"), ("falling", "fall"),
    ("hissing", "hiss"), ("fizzed", "fizz"), ("failing", "fail"),
    ("filing", "file"),
    # Step 1c
    ("happy", "happi"), ("sky", "sky"),
    # Step 2
    ("relational", "relat"), ("conditional", "condit"),
    ("rational", "ration"), ("valenci", "valenc"), ("hesitanci", "hesit"),
    ("digitizer", "digit"), ("conformabli", "conform"),
    ("radicalli", "radic"), ("differentli", "differ"), ("vileli", "vile"),
    ("analogousli", "analog"), ("vietnamization", "vietnam"),
    ("predication", "predic"), ("operator", "oper"),
    ("feudalism", "feudal"), ("decisiveness", "decis"),
    ("hopefulness", "hope"), ("callousness", "callous"),
    ("formaliti", "formal"), ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    # Step 3
    ("triplicate", "triplic"), ("formative", "form"),
    ("formalize", "formal"), ("electriciti", "electr"),
    ("electrical", "electr"), ("hopeful", "hope"), ("goodness", "good"),
    # Step 4
    ("revival", "reviv"), ("allowance", "allow"), ("inference", "infer"),
    ("airliner", "airlin"), ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"), ("defensible", "defens"),
    ("irritant", "irrit"), ("replacement", "replac"),
    ("adjustment", "adjust"), ("dependent", "depend"),
    ("adoption", "adopt"), ("communism", "commun"),
    ("activate", "activ"), ("angulariti", "angular"),
    ("homologous", "homolog"), ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    # Step 5
    ("probate", "probat"), ("rate", "rate"), ("cease", "ceas"),
    ("controll", "control"), ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", REFERENCE)
def test_reference_vector(word, expected):
    assert stem(word) == expected


class TestDomainWords:
    """The corpus vocabulary words the library depends on."""

    @pytest.mark.parametrize("word,expected", [
        ("restaurant", "restaur"), ("restaurants", "restaur"),
        ("hotels", "hotel"), ("hotel", "hotel"),
        ("coffee", "coffe"), ("games", "game"), ("shopping", "shop"),
    ])
    def test_hot_keywords(self, word, expected):
        assert stem(word) == expected

    def test_query_and_document_forms_agree(self):
        # The crucial IR property: inflections collapse together.
        assert stem("restaurants") == stem("restaurant")
        assert stem("hotels") == stem("hotel")
        assert stem("babysitters") == stem("babysitter")


class TestGuards:
    def test_short_words_unchanged(self):
        assert stem("a") == "a"
        assert stem("at") == "at"
        assert stem("is") == "is"

    @given(words)
    def test_never_longer_than_input(self, word):
        result = stem(word)
        assert len(result) <= len(word) + 1  # +1 for the 'e' restorations

    @given(words)
    def test_deterministic(self, word):
        assert stem(word) == stem(word)

    @given(words)
    def test_output_nonempty(self, word):
        assert stem(word)


class TestStemmerObject:
    def test_caching_consistent(self):
        stemmer = PorterStemmer(cache_size=4)
        values = [stemmer("running"), stemmer("running"), stemmer("runs")]
        assert values[0] == values[1] == "run"
        assert values[2] == "run"

    def test_cache_size_bounded(self):
        stemmer = PorterStemmer(cache_size=2)
        for word in ["alpha", "beta", "gamma", "delta"]:
            stemmer(word)
        assert len(stemmer._cache) <= 2

    @given(words)
    def test_matches_function(self, word):
        assert PorterStemmer()(word) == stem(word)
