"""Tests for circle covers (GeoHashCircleQuery, Algorithms 4/5 line 1)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import cover, geohash
from repro.geo.distance import (
    haversine_km,
    km_to_degrees_lat,
    km_to_degrees_lon,
)

centers = st.tuples(
    st.floats(min_value=-60.0, max_value=60.0, allow_nan=False),
    st.floats(min_value=-170.0, max_value=170.0, allow_nan=False),
)
radii = st.floats(min_value=0.5, max_value=120.0, allow_nan=False)
lengths = st.integers(min_value=1, max_value=5)


def random_point_in_circle(rng, center, radius_km):
    """Rejection-sample a point within radius_km of center."""
    while True:
        angle = rng.uniform(0, 2 * math.pi)
        r = radius_km * math.sqrt(rng.random())
        lat = center[0] + math.sin(angle) * km_to_degrees_lat(r)
        lon = center[1] + math.cos(angle) * km_to_degrees_lon(r, center[0])
        if (abs(lat) <= 90 and abs(lon) <= 180
                and haversine_km(center, (lat, lon)) <= radius_km):
            return (lat, lon)


class TestCircleCover:
    def test_zero_radius_single_cell(self):
        cells = cover.circle_cover((43.65, -79.38), 0.0, 4)
        assert cells == [geohash.encode(43.65, -79.38, 4)]

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            cover.circle_cover((0, 0), -1.0, 4)

    def test_sorted_zorder(self):
        cells = cover.circle_cover((43.65, -79.38), 30.0, 4)
        assert cells == sorted(cells)

    def test_center_cell_included(self):
        cells = cover.circle_cover((43.65, -79.38), 10.0, 4)
        assert geohash.encode(43.65, -79.38, 4) in cells

    @given(centers, radii, lengths)
    @settings(max_examples=40, deadline=None)
    def test_completeness(self, center, radius, length):
        """Every point inside the circle lies in a cover cell."""
        cells = set(cover.circle_cover(center, radius, length))
        rng = random.Random(0)
        for _ in range(20):
            point = random_point_in_circle(rng, center, radius)
            assert geohash.encode(point[0], point[1], length) in cells

    @given(centers, radii)
    @settings(max_examples=40, deadline=None)
    def test_minimality_at_cell_granularity(self, center, radius):
        """Every cover cell intersects the circle (min distance within
        radius)."""
        for code in cover.circle_cover(center, radius, 4):
            cell = geohash.decode_cell(code)
            assert cover.min_distance_to_cell(center, cell) <= radius + 1e-6

    def test_shorter_length_fewer_cells(self):
        center = (43.65, -79.38)
        counts = [len(cover.circle_cover(center, 15.0, n)) for n in (2, 3, 4)]
        assert counts[0] <= counts[1] <= counts[2]


class TestInsideBoundarySplit:
    def test_split_partitions_cover(self):
        center = (43.65, -79.38)
        inside, boundary = cover.cover_cells_fully_inside(center, 40.0, 4)
        full = cover.circle_cover(center, 40.0, 4)
        assert sorted(inside + boundary) == full

    def test_inside_cells_really_inside(self):
        center = (43.65, -79.38)
        inside, _boundary = cover.cover_cells_fully_inside(center, 40.0, 4)
        for code in inside:
            cell = geohash.decode_cell(code)
            assert cover.max_distance_to_cell(center, cell) <= 40.0 + 1e-6


class TestDistanceToCell:
    def test_point_inside_cell_distance_zero(self):
        cell = geohash.decode_cell("dpz8")
        center = geohash.decode("dpz8")
        assert cover.min_distance_to_cell(center, cell) == 0.0

    def test_min_le_max(self):
        cell = geohash.decode_cell("dpz8")
        point = (50.0, -70.0)
        assert (cover.min_distance_to_cell(point, cell)
                <= cover.max_distance_to_cell(point, cell))


class TestAreaRatio:
    def test_ratio_at_least_one(self):
        ratio = cover.cover_area_ratio((43.65, -79.38), 20.0, 4)
        assert ratio >= 0.99  # covers the circle (1.0 up to metric wobble)

    def test_finer_cells_tighter_cover(self):
        center = (43.65, -79.38)
        coarse = cover.cover_area_ratio(center, 20.0, 2)
        fine = cover.cover_area_ratio(center, 20.0, 4)
        assert fine < coarse

    def test_zero_radius_rejected(self):
        with pytest.raises(ValueError):
            cover.cover_area_ratio((0, 0), 0.0, 4)
