"""Tests for the in-memory forward index."""

import pytest

from repro.index.forward import ForwardIndex, PostingsRef


def ref(path="/index/part-00000", offset=0, length=24, count=2):
    return PostingsRef(path, offset, length, count)


class TestForwardIndex:
    def test_add_lookup(self):
        index = ForwardIndex()
        index.add("6gxp", "hotel", ref())
        assert index.lookup("6gxp", "hotel") == ref()
        assert index.lookup("6gxp", "cafe") is None
        assert index.lookup("6gxq", "hotel") is None
        assert len(index) == 1

    def test_duplicate_rejected(self):
        index = ForwardIndex()
        index.add("6gxp", "hotel", ref())
        with pytest.raises(ValueError):
            index.add("6gxp", "hotel", ref(offset=48))

    def test_prefix_lookup(self):
        index = ForwardIndex()
        index.add("6gxp", "hotel", ref(offset=0))
        index.add("6gxq", "hotel", ref(offset=24))
        index.add("6hyy", "hotel", ref(offset=48))
        index.add("6gxp", "cafe", ref(offset=72))
        under = index.lookup_prefix("6g", "hotel")
        assert sorted(cell for cell, _r in under) == ["6gxp", "6gxq"]
        assert index.lookup_prefix("zz", "hotel") == []
        assert index.lookup_prefix("6g", "missing") == []

    def test_terms_in_cell(self):
        index = ForwardIndex()
        index.add("6gxp", "hotel", ref(offset=0))
        index.add("6gxp", "cafe", ref(offset=24))
        assert index.terms_in_cell("6gxp") == {"hotel", "cafe"}
        assert index.terms_in_cell("none") == set()

    def test_cells_for_term(self):
        index = ForwardIndex()
        index.add("aaaa", "pizza", ref(offset=0))
        index.add("bbbb", "pizza", ref(offset=24))
        assert sorted(index.cells_for_term("pizza")) == ["aaaa", "bbbb"]

    def test_vocabulary(self):
        index = ForwardIndex()
        index.add("aaaa", "pizza", ref(offset=0))
        index.add("aaaa", "mall", ref(offset=24))
        assert index.vocabulary() == {"pizza", "mall"}

    def test_size_bytes_positive_and_growing(self):
        index = ForwardIndex()
        index.add("6gxp", "hotel", ref())
        small = index.size_bytes()
        index.add("6gxq", "restaurant", ref(offset=24))
        assert index.size_bytes() > small > 0


class TestSerialisation:
    def build(self):
        index = ForwardIndex()
        index.add("6gxp", "hotel", ref(offset=0, length=24, count=2))
        index.add("6gxq", "cafe", ref(path="/index/part-00001",
                                      offset=100, length=12, count=1))
        index.add("dpz8", "hotel", ref(offset=200, length=36, count=3))
        return index

    def test_roundtrip(self):
        index = self.build()
        back = ForwardIndex.deserialize(index.serialize())
        assert len(back) == len(index)
        for (cell, term), reference in index.items():
            assert back.lookup(cell, term) == reference

    def test_roundtrip_preserves_tries(self):
        back = ForwardIndex.deserialize(self.build().serialize())
        assert sorted(cell for cell, _r in back.lookup_prefix("6g", "hotel")) \
            == ["6gxp"]

    def test_empty_roundtrip(self):
        back = ForwardIndex.deserialize(ForwardIndex().serialize())
        assert len(back) == 0
