"""Tests for page backends and the buffer pool."""

import os

import pytest

from repro.storage.iostats import IOStats, StatsRegistry
from repro.storage.page import PAGE_SIZE
from repro.storage.pager import BufferPool, FilePager, MemoryPager, PagerError


class TestMemoryPager:
    def test_allocate_and_rw(self):
        pager = MemoryPager()
        page_no = pager.allocate()
        page = pager.read_page(page_no)
        page.data[0:5] = b"hello"
        pager.write_page(page)
        assert bytes(pager.read_page(page_no).data[0:5]) == b"hello"

    def test_unallocated_read_rejected(self):
        pager = MemoryPager()
        with pytest.raises(PagerError):
            pager.read_page(0)

    def test_stats_counted(self):
        stats = IOStats()
        pager = MemoryPager(stats)
        page_no = pager.allocate()
        pager.read_page(page_no)
        assert stats.page_reads == 1
        assert stats.page_writes == 1  # the allocation write


class TestFilePager:
    def test_persistence(self, tmp_path):
        path = str(tmp_path / "data.pages")
        pager = FilePager(path)
        page_no = pager.allocate()
        page = pager.read_page(page_no)
        page.data[:3] = b"abc"
        pager.write_page(page)
        pager.close()

        reopened = FilePager(path)
        assert reopened.page_count == 1
        assert bytes(reopened.read_page(page_no).data[:3]) == b"abc"
        reopened.close()

    def test_out_of_range(self, tmp_path):
        pager = FilePager(str(tmp_path / "x.pages"))
        with pytest.raises(PagerError):
            pager.read_page(0)
        pager.close()

    def test_unaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.pages"
        path.write_bytes(b"x" * (PAGE_SIZE + 1))
        with pytest.raises(PagerError):
            FilePager(str(path))

    def test_file_grows_by_pages(self, tmp_path):
        path = str(tmp_path / "grow.pages")
        pager = FilePager(path)
        for _ in range(3):
            pager.allocate()
        pager.sync()
        assert os.path.getsize(path) == 3 * PAGE_SIZE
        pager.close()


class TestBufferPool:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(MemoryPager(), capacity=0)

    def test_hit_and_miss_accounting(self):
        pool = BufferPool(MemoryPager(), capacity=4)
        page = pool.allocate_page()
        pool.unpin(page)
        again = pool.get_page(page.page_no)
        pool.unpin(again)
        assert pool.stats.cache_hits == 1

        # Force eviction, then re-read: a miss.
        for _ in range(4):
            extra = pool.allocate_page()
            pool.unpin(extra)
        pool.get_page(page.page_no)
        assert pool.stats.cache_misses >= 1

    def test_dirty_page_written_back_on_eviction(self):
        pager = MemoryPager()
        pool = BufferPool(pager, capacity=2)
        page = pool.allocate_page()
        page.data[:4] = b"keep"
        page.mark_dirty()
        pool.unpin(page)
        # Evict by filling the pool.
        for _ in range(3):
            extra = pool.allocate_page()
            pool.unpin(extra)
        assert bytes(pager.read_page(page.page_no).data[:4]) == b"keep"

    def test_pinned_pages_not_evicted(self):
        pool = BufferPool(MemoryPager(), capacity=2)
        pinned = pool.allocate_page()  # stays pinned
        pinned.data[:3] = b"pin"
        for _ in range(5):
            extra = pool.allocate_page()
            pool.unpin(extra)
        # The pinned frame is still the same object in the pool.
        again = pool.get_page(pinned.page_no)
        assert again is pinned
        pool.unpin(again)
        pool.unpin(pinned)

    def test_unpin_underflow_raises(self):
        pool = BufferPool(MemoryPager(), capacity=2)
        page = pool.allocate_page()
        pool.unpin(page)
        with pytest.raises(RuntimeError):
            pool.unpin(page)

    def test_pinned_context_manager(self):
        pool = BufferPool(MemoryPager(), capacity=2)
        page = pool.allocate_page()
        pool.unpin(page)
        with pool.pinned(page.page_no) as pinned:
            assert pinned.pin_count == 1
        assert pinned.pin_count == 0

    def test_flush_all_persists(self, tmp_path):
        path = str(tmp_path / "pool.pages")
        pool = BufferPool(FilePager(path), capacity=8)
        page = pool.allocate_page()
        page.data[:5] = b"flush"
        page.mark_dirty()
        pool.unpin(page)
        pool.flush_all()

        fresh = FilePager(path)
        assert bytes(fresh.read_page(page.page_no).data[:5]) == b"flush"
        fresh.close()


class TestStatsRegistry:
    def test_named_components(self):
        registry = StatsRegistry()
        registry.get("heap").record_read()
        registry.get("heap").record_read()
        registry.get("index").record_write()
        assert registry.get("heap").page_reads == 2
        assert registry.total_ios() == 3
        report = registry.report()
        assert report["index"]["page_writes"] == 1

    def test_reset_all(self):
        registry = StatsRegistry()
        registry.get("a").record_read()
        registry.reset_all()
        assert registry.total_ios() == 0

    def test_delta_since(self):
        stats = IOStats()
        stats.record_read()
        snapshot = stats.snapshot()
        stats.record_read()
        stats.record_write()
        delta = stats.delta_since(snapshot)
        assert delta["page_reads"] == 1
        assert delta["page_writes"] == 1


class TestFreeList:
    def test_memory_free_and_reuse(self):
        pager = MemoryPager()
        first = pager.allocate()
        second = pager.allocate()
        pager.free_page(first)
        assert pager.free_count == 1
        reused = pager.allocate()
        assert reused == first
        assert pager.free_count == 0
        assert pager.page_count == 2  # no growth
        assert second == 1

    def test_freed_page_comes_back_zeroed(self):
        pager = MemoryPager()
        page_no = pager.allocate()
        page = pager.read_page(page_no)
        page.data[:4] = b"junk"
        pager.write_page(page)
        pager.free_page(page_no)
        reused = pager.allocate()
        assert bytes(pager.read_page(reused).data[:4]) == b"\x00" * 4

    def test_double_free_rejected(self):
        pager = MemoryPager()
        page_no = pager.allocate()
        pager.free_page(page_no)
        with pytest.raises(PagerError):
            pager.free_page(page_no)

    def test_free_unallocated_rejected(self):
        with pytest.raises(PagerError):
            MemoryPager().free_page(3)

    def test_file_pager_free_and_reuse(self, tmp_path):
        pager = FilePager(str(tmp_path / "fl.pages"))
        first = pager.allocate()
        pager.allocate()
        pager.free_page(first)
        assert pager.allocate() == first
        pager.close()

    def test_buffer_pool_free_drops_frame(self):
        pool = BufferPool(MemoryPager(), capacity=4)
        page = pool.allocate_page()
        pool.unpin(page)
        pool.free_page(page.page_no)
        assert pool.cached_pages() == 0

    def test_buffer_pool_refuses_to_free_pinned(self):
        pool = BufferPool(MemoryPager(), capacity=4)
        page = pool.allocate_page()  # pinned
        with pytest.raises(RuntimeError):
            pool.free_page(page.page_no)
        pool.unpin(page)
