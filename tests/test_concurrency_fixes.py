"""Regression tests for the defects the RL100-family analyzer found.

Each test pins one concrete fix:

* ``LiveIndex.snapshot`` leaked its generation-set pin when anything
  raised between ``pin()`` and the ``LiveSnapshot`` taking ownership
  (RL102 finding) — reclamation would then be blocked forever.
* ``LiveIndex`` merge-stats counters were bare ``+=`` on state shared
  between query threads and the dashboard (RL100 finding after the
  guarded-by seeding) — two racing increments lose one update.
* ``IngestService`` manifest state (``_generation_entries`` and
  friends) was read by ``status()``/health probes with no lock while
  flush/compaction commits mutated it, and the fixed locking must keep
  the scheduler -> manifest acquisition order everywhere (a ``status()``
  holding the manifest lock while calling into the scheduler would be
  the inverted half of a deadlock).
"""

import threading
from types import SimpleNamespace

import pytest

from repro.compaction import CompactionConfig, GenerationRegistry
from repro.data.generator import generate_corpus
from repro.index.builder import IndexConfig
from repro.ingest import IngestConfig, IngestService
from repro.ingest.live import LiveIndex
from repro.lint.sanitizer import LockSanitizer, instrument_lock_attr
from repro.text.analyzer import Analyzer

JOIN_TIMEOUT = 60.0


def _fake_memtable(postings):
    return SimpleNamespace(
        postings=lambda cell, term, max_lsn=None: postings,
        max_lsn=0)


class TestSnapshotPinRelease:
    def test_snapshot_failure_releases_pin(self):
        registry = GenerationRegistry(items=("g0",))
        live = LiveIndex(IndexConfig(), Analyzer(), [], registry)

        def broken_watermark():
            raise RuntimeError("torn component")

        live.watermark = broken_watermark
        with pytest.raises(RuntimeError):
            live.snapshot()
        assert registry.pin_count() == 0

    def test_snapshot_owns_exactly_one_pin(self):
        registry = GenerationRegistry(items=("g0",))
        live = LiveIndex(IndexConfig(), Analyzer(), [], registry)
        with live.snapshot():
            assert registry.pin_count() == 1
        assert registry.pin_count() == 0


class TestMergeStatsLocking:
    def test_concurrent_increments_lose_no_updates(self):
        threads, calls = 4, 2000
        live = LiveIndex(IndexConfig(), Analyzer(),
                         [_fake_memtable([(1,)])], [])
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(calls):
                live.postings("cell", "term")

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(JOIN_TIMEOUT)
        assert not any(thread.is_alive() for thread in pool)
        with live._stats_lock:
            merged = live._merge_stats.postings_sources_merged
        assert merged == threads * calls


@pytest.fixture()
def small_corpus():
    corpus = generate_corpus(num_users=30, num_root_tweets=130, seed=11)
    return corpus.posts[:120]


class TestServiceManifestLocking:
    def test_status_concurrent_with_appends(self, tmp_path, small_corpus):
        service = IngestService(
            str(tmp_path / "svc"),
            ingest_config=IngestConfig(flush_posts=30),
            compaction_config=CompactionConfig(min_inputs=2, max_inputs=4))
        errors = []
        done = threading.Event()

        def writer():
            try:
                for post in small_corpus:
                    service.append(post)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                done.set()

        def reader():
            try:
                while not done.is_set():
                    status = service.status()
                    assert status["last_flushed_lsn"] >= 0
                    service.tier_breakdown()
                    service.health()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=writer),
                threading.Thread(target=reader)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(JOIN_TIMEOUT)
        # A deadlock (status holding the manifest lock while waiting on
        # the scheduler) shows up here as a thread that never finished.
        assert not any(thread.is_alive() for thread in pool)
        assert errors == []
        assert service.status()["database_posts"] == len(small_corpus)
        service.close()

    def test_lock_order_is_scheduler_then_manifest(self, tmp_path,
                                                   small_corpus):
        sanitizer = LockSanitizer()
        service = IngestService(
            str(tmp_path / "svc"),
            ingest_config=IngestConfig(flush_posts=25),
            compaction_config=CompactionConfig(min_inputs=2, max_inputs=4))
        instrument_lock_attr(service.compaction, "_lock", sanitizer,
                             name="CompactionScheduler._lock")
        instrument_lock_attr(service, "_manifest_lock", sanitizer,
                             name="IngestService._manifest_lock")

        for post in small_corpus:
            service.append(post)
        service.flush()
        service.compact()
        service.status()
        service.health()
        service.tier_breakdown()
        service.close()

        report = sanitizer.report()
        # The commit path really nests scheduler -> manifest ...
        assert ("CompactionScheduler._lock",
                "IngestService._manifest_lock") in report.edges
        # ... and nothing anywhere nests the other way around.
        assert report.inversions == []
