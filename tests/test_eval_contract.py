"""Tests for the perf-contract headline extraction and checker."""

import json

import pytest

from repro.eval.contract import (
    CONTRACT_SCHEMA_VERSION,
    MUST_BE_AT_LEAST,
    MUST_BE_TRUE,
    build_baseline,
    check_contract,
    extract_headlines,
    load_baseline,
    render_contract,
    write_baseline,
)


def make_query_payload(p95_ms=4.0, overhead=1.01, within=True,
                       identical=True):
    workloads = []
    for name in ("fig8_single", "fig8_single_windowed", "fig10_multi"):
        workloads.append({
            "name": name,
            "results_identical": identical,
            "decoded_bytes_reduction": 0.6,
            "formats": {"block": {"latency_ms": {"p95": p95_ms}}},
        })
    return {
        "workloads": workloads,
        "telemetry_overhead": {"overhead_ratio": overhead,
                               "within_budget": within},
    }


def make_ingest_payload(aps=5000.0, recovery_s=0.2, posts_match=True,
                        read_amp_reduction=2.5, identical=True):
    return {
        "ingest": {"appends_per_second": aps},
        "query_latency_ms": {"p95": 3.0},
        "recovery": {"seconds": recovery_s, "posts_match": posts_match},
        "compaction": {"read_amp_reduction": read_amp_reduction,
                       "results_identical": identical,
                       "meets_target": True},
    }


def make_matrix_payload(speedup=4.5, batched_mean_ms=5.0, identical=True):
    return {
        "cells": [{"id": "large-k20-r40-kw2",
                   "batched": {"mean_ms": batched_mean_ms},
                   "scalar": {"mean_ms": batched_mean_ms * speedup},
                   "speedup": speedup,
                   "results_identical": identical}],
        "largest_cell": {"id": "large-k20-r40-kw2", "speedup": speedup},
        "results_identical": identical,
    }


def make_serve_payload(peak_qps=450.0, p99_on_ms=120.0, hit_rate=0.4,
                       tail_bounded=True, identical=True):
    return {
        "scaling": {"peak_qps": peak_qps, "peak_workers": 4},
        "overload": {
            "shed_tail_bounded": tail_bounded,
            "shedding_on": {"latency_ms": {"p99": p99_on_ms}},
            "shedding_off": {"latency_ms": {"p99": p99_on_ms * 8}},
        },
        "mixed": {"cache_hit_rate": hit_rate},
        "cache_identity": {"identical": identical, "checks": 8,
                           "hits_observed": 8},
        "cached_results_identical": identical,
    }


class TestExtractHeadlines:
    def test_full_extraction(self):
        current = extract_headlines(make_query_payload(),
                                    make_ingest_payload(),
                                    make_matrix_payload(),
                                    make_serve_payload())
        assert current["query.fig8_single.results_identical"]["value"] is True
        assert current["query.telemetry.overhead_ratio"]["value"] == 1.01
        assert current["ingest.appends_per_second"]["value"] == 5000.0
        assert current["ingest.recovery.posts_match"]["value"] is True
        assert current["matrix.results_identical"]["value"] is True
        assert current["matrix.largest.speedup"]["value"] == 4.5
        assert current["matrix.largest.batched_mean_ms"]["value"] == 5.0
        assert current["serve.cached_results_identical"]["value"] is True
        assert current["serve.scaling.peak_qps"]["value"] == 450.0
        assert current["serve.overload.shed_tail_bounded"]["value"] is True
        assert current["serve.overload.p99_on_ms"]["value"] == 120.0
        assert current["serve.mixed.cache_hit_rate"]["value"] == 0.4
        # Every headline carries its comparison rules.
        for entry in current.values():
            assert entry["direction"] in ("higher", "lower", "exact")
            assert entry["rel_tol"] >= 0.0

    def test_missing_report_skips_its_headlines(self):
        current = extract_headlines(make_query_payload(), None)
        assert "query.telemetry.overhead_ratio" in current
        assert not any(key.startswith("ingest.") for key in current)
        assert not any(key.startswith("matrix.") for key in current)
        assert not any(key.startswith("serve.") for key in current)

    def test_malformed_payload_skips_headline(self):
        payload = make_query_payload()
        del payload["telemetry_overhead"]
        current = extract_headlines(payload, None)
        assert "query.telemetry.overhead_ratio" not in current
        assert "query.fig8_single.block.latency_p95_ms" in current


class TestCheckContract:
    def _baseline(self, **kwargs):
        return build_baseline(make_query_payload(**kwargs),
                              make_ingest_payload())

    def test_identical_reports_hold(self):
        baseline = self._baseline()
        current = extract_headlines(make_query_payload(),
                                    make_ingest_payload())
        assert check_contract(current, baseline) == []

    def test_improvements_never_fail(self):
        baseline = self._baseline()
        current = extract_headlines(
            make_query_payload(p95_ms=1.0, overhead=0.99),
            make_ingest_payload(aps=9999.0, recovery_s=0.05))
        assert check_contract(current, baseline) == []

    def test_latency_regression_within_tolerance_passes(self):
        baseline = self._baseline()
        current = extract_headlines(make_query_payload(p95_ms=4.9),
                                    make_ingest_payload())
        assert check_contract(current, baseline) == []

    def test_latency_regression_beyond_tolerance_fails(self):
        baseline = self._baseline()
        current = extract_headlines(make_query_payload(p95_ms=5.1),
                                    make_ingest_payload())
        problems = check_contract(current, baseline)
        assert len(problems) == 3   # one per workload's block p95
        assert all("latency_p95_ms" in p for p in problems)

    def test_throughput_regression_fails(self):
        baseline = self._baseline()
        current = extract_headlines(make_query_payload(),
                                    make_ingest_payload(aps=3000.0))
        problems = check_contract(current, baseline)
        assert problems == [
            "ingest.appends_per_second: 3000 regressed below 3750 "
            "(baseline 5000, tol 25%)"]

    def test_must_be_true_fails_absolutely(self):
        # Even with a baseline that also says False, the absolute check
        # fires — correctness is not baseline-relative.
        baseline = self._baseline(identical=False, within=False)
        current = extract_headlines(
            make_query_payload(identical=False, within=False),
            make_ingest_payload())
        problems = check_contract(current, baseline)
        must_fail = [p for p in problems if "must be true" in p]
        assert len(must_fail) == 4   # 3 parity keys + within_budget

    def test_missing_headline_detected(self):
        baseline = self._baseline()
        current = extract_headlines(make_query_payload(), None)
        problems = check_contract(current, baseline)
        assert any("ingest.appends_per_second" in p and "missing" in p
                   for p in problems)

    def test_must_be_true_covers_committed_keys(self):
        assert set(MUST_BE_TRUE) <= set(
            extract_headlines(make_query_payload(), make_ingest_payload(),
                              make_matrix_payload(), make_serve_payload()))

    def test_serve_cache_identity_fails_absolutely(self):
        # A baseline recorded with a broken cache cannot launder a
        # cached-result mismatch past the contract.
        bad = make_serve_payload(identical=False)
        baseline = build_baseline(None, None, None, bad)
        current = extract_headlines(None, None, None, bad)
        problems = check_contract(current, baseline)
        assert problems == ["serve.cached_results_identical must be true, "
                            "got False"]

    def test_serve_qps_regression_fails(self):
        baseline = build_baseline(None, None, None, make_serve_payload())
        current = extract_headlines(None, None, None,
                                    make_serve_payload(peak_qps=200.0))
        problems = check_contract(current, baseline)
        assert any("serve.scaling.peak_qps" in p for p in problems)

    def test_serve_tail_bound_is_exact(self):
        baseline = build_baseline(None, None, None, make_serve_payload())
        current = extract_headlines(
            None, None, None, make_serve_payload(tail_bounded=False))
        problems = check_contract(current, baseline)
        assert any("serve.overload.shed_tail_bounded" in p
                   for p in problems)

    def test_matrix_parity_fails_absolutely(self):
        current = extract_headlines(None, None,
                                    make_matrix_payload(identical=False))
        problems = check_contract(current, {"headlines": {}})
        assert problems == ["matrix.results_identical must be true, "
                            "got False"]

    def test_matrix_speedup_floor_is_absolute(self):
        # Even a baseline recorded at the same (bad) speedup cannot
        # launder a sub-2x batched path past the contract.
        bad = make_matrix_payload(speedup=1.4)
        baseline = build_baseline(None, None, bad)
        current = extract_headlines(None, None, bad)
        problems = check_contract(current, baseline)
        assert problems == ["matrix.largest.speedup must be at least 2 "
                            "(absolute floor), got 1.4"]

    def test_matrix_speedup_above_floor_passes(self):
        baseline = build_baseline(None, None, make_matrix_payload())
        current = extract_headlines(None, None,
                                    make_matrix_payload(speedup=4.0))
        assert check_contract(current, baseline) == []

    def test_must_be_at_least_keys_are_headlines(self):
        extracted = extract_headlines(make_query_payload(),
                                      make_ingest_payload(),
                                      make_matrix_payload(),
                                      make_serve_payload())
        assert set(MUST_BE_AT_LEAST) <= set(extracted)


class TestBaselineIO:
    def test_round_trip(self, tmp_path):
        baseline = build_baseline(make_query_payload(),
                                  make_ingest_payload())
        path = tmp_path / "perf_contract.json"
        write_baseline(baseline, str(path))
        loaded = load_baseline(str(path))
        assert loaded == baseline
        assert loaded["schema_version"] == CONTRACT_SCHEMA_VERSION

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema_version": 999,
                                    "headlines": {}}))
        with pytest.raises(ValueError, match="schema_version"):
            load_baseline(str(path))


class TestRenderContract:
    def test_lists_headlines_with_deltas(self):
        baseline = build_baseline(make_query_payload(),
                                  make_ingest_payload())
        current = extract_headlines(make_query_payload(p95_ms=4.4),
                                    make_ingest_payload())
        text = render_contract(current, baseline)
        assert "query.fig8_single.block.latency_p95_ms" in text
        assert "+10.0%" in text
        assert "True" in text           # exact headlines print verbatim

    def test_renders_without_baseline(self):
        current = extract_headlines(make_query_payload(), None)
        text = render_contract(current)
        assert "baseline" not in text


class TestCommittedArtifacts:
    """The repo commits BENCH reports and a baseline; they must agree
    (this is exactly what the CI perf-contract job runs)."""

    def test_committed_reports_satisfy_committed_baseline(self):
        with open("BENCH_query.json", encoding="utf-8") as handle:
            query_payload = json.load(handle)
        with open("BENCH_ingest.json", encoding="utf-8") as handle:
            ingest_payload = json.load(handle)
        with open("BENCH_matrix.json", encoding="utf-8") as handle:
            matrix_payload = json.load(handle)
        with open("BENCH_serve.json", encoding="utf-8") as handle:
            serve_payload = json.load(handle)
        baseline = load_baseline("benchmarks/baselines/perf_contract.json")
        current = extract_headlines(query_payload, ingest_payload,
                                    matrix_payload, serve_payload)
        assert check_contract(current, baseline) == []
        assert current["query.telemetry.within_budget"]["value"] is True
        assert current["matrix.results_identical"]["value"] is True
        assert current["matrix.largest.speedup"]["value"] >= 2.0
        assert current["serve.cached_results_identical"]["value"] is True
        assert current["serve.overload.shed_tail_bounded"]["value"] is True
