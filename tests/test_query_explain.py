"""Tests for the score-explanation API, including cross-checks of the
engine's actual scores against the first-principles recomputation."""

import pytest

from repro.core.model import Semantics
from repro.query.explain import Explainer


@pytest.fixture(scope="module")
def explainer(dataset):
    return Explainer(dataset)


class TestExplanationStructure:
    def test_basic_fields(self, engine, workload, explainer):
        query = workload.bind(workload.specs(1)[0], radius_km=20.0, k=5)
        result = engine.search_sum(query)
        if not result.users:
            pytest.skip("query matched nothing")
        uid = result.users[0][0]
        explanation = explainer.explain(query, uid)
        assert explanation.uid == uid
        assert explanation.matching_tweets >= 1
        assert explanation.total_posts >= explanation.matching_tweets
        for tweet in explanation.tweets:
            assert tweet.distance_km <= query.radius_km
            assert tweet.keyword_occurrences >= 1
            assert tweet.thread_levels[0] == 1  # root level
            assert 0.0 <= tweet.distance_score <= 1.0

    def test_unmatched_user_empty(self, workload, explainer):
        query = workload.bind(workload.specs(1)[0], radius_km=20.0)
        explanation = explainer.explain(query, uid=999999)
        assert explanation.matching_tweets == 0
        assert explanation.sum_keyword_score == 0.0
        assert explanation.max_keyword_score == 0.0
        assert explanation.sum_user_score == 0.0

    def test_describe_readable(self, engine, workload, explainer):
        query = workload.bind(workload.specs(1)[1], radius_km=20.0, k=3)
        result = engine.search_sum(query)
        if not result.users:
            pytest.skip("query matched nothing")
        text = explainer.explain(query, result.users[0][0]).describe()
        assert "keyword score" in text
        assert "final" in text


class TestScoreCrossCheck:
    """Explanations recompute from first principles; they must match the
    engine's reported scores exactly."""

    def test_sum_scores_match_engine(self, engine, workload, explainer):
        checked = 0
        for spec in workload.specs(1)[:6]:
            query = workload.bind(spec, radius_km=25.0, k=10)
            for uid, score in engine.search_sum(query).users:
                explanation = explainer.explain(query, uid)
                assert explanation.sum_user_score == pytest.approx(score)
                checked += 1
        assert checked > 0

    def test_max_scores_match_engine(self, engine, workload, explainer):
        checked = 0
        for spec in workload.specs(1)[:6]:
            query = workload.bind(spec, radius_km=25.0, k=10)
            for uid, score in engine.search_max(query).users:
                explanation = explainer.explain(query, uid)
                assert explanation.max_user_score == pytest.approx(score)
                checked += 1
        assert checked > 0

    def test_and_semantics_respected(self, engine, workload, explainer):
        for spec in workload.specs(2)[:4]:
            query = workload.bind(spec, radius_km=30.0,
                                  semantics=Semantics.AND)
            for uid, score in engine.search_sum(query).users:
                explanation = explainer.explain(query, uid)
                assert explanation.sum_user_score == pytest.approx(score)
                for tweet in explanation.tweets:
                    # Every explained tweet carries all AND keywords.
                    assert tweet.keyword_occurrences >= len(query.keywords)

    def test_temporal_scores_match_engine(self, corpus, engine, workload,
                                          explainer):
        from repro.core.model import TkLUSQuery
        from repro.core.temporal import RecencyModel, TemporalSpec
        temporal = TemporalSpec(recency=RecencyModel(half_life=800.0))
        base = workload.bind(workload.specs(1)[2], radius_km=25.0)
        query = TkLUSQuery(location=base.location, radius_km=25.0,
                           keywords=base.keywords, k=10, temporal=temporal)
        for uid, score in engine.search_sum(query).users:
            explanation = explainer.explain(query, uid)
            assert explanation.sum_user_score == pytest.approx(score)


class TestHelpers:
    def test_explain_ranking_order(self, engine, workload, explainer):
        query = workload.bind(workload.specs(1)[3], radius_km=25.0, k=5)
        ranking = engine.search_sum(query).ranking()
        explanations = explainer.explain_ranking(query, ranking)
        assert [e.uid for e in explanations] == ranking

    def test_top_contributor(self, engine, workload, explainer):
        query = workload.bind(workload.specs(1)[4], radius_km=25.0, k=5)
        result = engine.search_max(query)
        if not result.users:
            pytest.skip("query matched nothing")
        uid = result.users[0][0]
        best = explainer.top_contributor(query, uid)
        assert best is not None
        explanation = explainer.explain(query, uid)
        assert best.relevance == pytest.approx(
            explanation.max_keyword_score)

    def test_top_contributor_none_for_stranger(self, workload, explainer):
        query = workload.bind(workload.specs(1)[0], radius_km=20.0)
        assert explainer.top_contributor(query, 987654) is None
