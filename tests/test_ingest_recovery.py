"""Crash-recovery tests: the kill-point matrix and service lifecycle.

The crash model: everything in memory (memtable, live index, simulated
DFS cluster, metadata database) dies with the process; only the ingest
directory on disk survives.  A simulated crash therefore abandons the
whole service object, and recovery rebuilds from the directory alone.
The matrix drives one ingest script through a crash at every kill point
and asserts the recovered system answers queries **byte-identically**
(same uids, bit-equal float scores) to a run that never crashed.
"""

import os

import pytest

from repro.compaction import CompactionConfig
from repro.data.generator import generate_corpus
from repro.ingest import (
    KILL_POINTS,
    Failpoints,
    IngestConfig,
    IngestService,
    SimulatedCrash,
    inspect_ingest_dir,
)

# Four flushes inside the 240-post script, so the background compactor
# (triggered at two tier members) commits multiple merges — the
# compaction kill points then have both an "early" and a "late"
# occurrence to fire on.
FLUSH_EVERY = 50
QUERY_SPECS = (
    (["hotel", "pizza"], 25.0),
    (["restaurant"], 15.0),
)


@pytest.fixture(scope="module")
def posts():
    corpus = generate_corpus(num_users=60, num_root_tweets=260, seed=3)
    return corpus.posts[:240]


def _config():
    return IngestConfig(flush_posts=FLUSH_EVERY)


def _compaction_config():
    return CompactionConfig(min_inputs=2, max_inputs=4)


def _answers(service, posts):
    """Every query's full ranking (uids + exact float scores) plus the
    database size — the byte-identity comparison target."""
    engine = service.build_query_engine()
    rankings = []
    for keywords, radius in QUERY_SPECS:
        query = engine.make_query(posts[0].location, radius, keywords, k=8)
        rankings.append(("max", keywords, engine.search_max(query).users))
        rankings.append(("sum", keywords, engine.search_sum(query).users))
    return len(service.database), rankings


def _ingest_script(directory, posts, crash_point=None, crash_skip=0):
    """Append every post (auto-flushing); on the single injected crash,
    drop the service on the floor and recover from the directory.

    An append is acknowledged once ``append()`` returns.  The flush and
    compaction kill points fire *inside* the auto-flush / background
    merge step — after the triggering append was durably acknowledged —
    so the script must not retry it; the WAL kill points lose the
    in-flight append, which is retried.
    """
    failpoints = Failpoints()
    if crash_point is not None:
        failpoints.arm(crash_point, skip=crash_skip)
    service = IngestService(directory, ingest_config=_config(),
                            failpoints=failpoints,
                            compaction_config=_compaction_config())
    crashes = 0
    position = 0
    while position < len(posts):
        try:
            service.append(posts[position])
            position += 1
        except SimulatedCrash as crash:
            crashes += 1
            if crash.point.startswith(("ingest.flush", "compaction.")):
                position += 1  # that append was acknowledged pre-crash
            service = IngestService(directory, ingest_config=_config(),
                                    compaction_config=_compaction_config())
    if crash_point is not None:
        assert crashes == 1, f"failpoint {crash_point} never fired"
    return service


class TestKillPointMatrix:
    @pytest.fixture(scope="class")
    def reference(self, posts, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("ingest") / "reference")
        service = _ingest_script(directory, posts)
        answers = _answers(service, posts)
        service.close()
        return answers

    @pytest.mark.parametrize("crash_point", KILL_POINTS)
    @pytest.mark.parametrize("timing", ["first-memtable", "after-first-flush"])
    def test_recovered_answers_byte_identical(self, posts, tmp_path,
                                              reference, crash_point,
                                              timing):
        # WAL points are hit once per append, flush points once per
        # flush — "late" therefore means different skip counts.
        if timing == "first-memtable":
            crash_skip = 0
        elif crash_point.startswith("wal."):
            crash_skip = FLUSH_EVERY + 10
        else:
            crash_skip = 1  # fire on the second flush
        directory = str(tmp_path / "crashed")
        service = _ingest_script(directory, posts, crash_point, crash_skip)
        assert _answers(service, posts) == reference
        service.close()

    def test_double_crash_same_flush(self, posts, tmp_path, reference):
        """Crash during a flush, recover, then crash during the retried
        flush of the same data — recovery must still converge."""
        directory = str(tmp_path / "double")
        failpoints = Failpoints()
        failpoints.arm("ingest.flush.mid")
        service = IngestService(directory, ingest_config=_config(),
                                failpoints=failpoints)
        position = 0
        crashes = 0
        while position < len(posts):
            try:
                service.append(posts[position])
                position += 1
            except SimulatedCrash as crash:
                crashes += 1
                if crash.point.startswith("ingest.flush"):
                    position += 1
                failpoints = Failpoints()
                if crashes == 1:
                    failpoints.arm("ingest.flush.pre_truncate")
                service = IngestService(directory, ingest_config=_config(),
                                        failpoints=failpoints)
        assert crashes == 2
        assert _answers(service, posts) == reference
        service.close()


class TestRecoveryMechanics:
    def test_clean_reopen_preserves_everything(self, posts, tmp_path):
        directory = str(tmp_path / "clean")
        service = _ingest_script(directory, posts)
        expected = _answers(service, posts)
        status = service.status()
        service.close()

        reopened = IngestService(directory, ingest_config=_config())
        assert _answers(reopened, posts) == expected
        report = reopened.recovery
        assert report.records_replayed == status["memtable_posts"]
        assert report.generations_loaded == len(status["generations"])
        assert not report.torn_tail_repaired
        reopened.close()

    def test_torn_tail_repair_reported(self, posts, tmp_path):
        directory = str(tmp_path / "torn")
        failpoints = Failpoints()
        failpoints.arm("wal.append.mid", skip=10)
        service = IngestService(directory, ingest_config=_config(),
                                failpoints=failpoints)
        count = 0
        for post in posts[:20]:
            try:
                service.append(post)
                count += 1
            except SimulatedCrash:
                break
        reopened = IngestService(directory, ingest_config=_config())
        assert reopened.recovery.torn_tail_repaired
        assert reopened.recovery.records_replayed == count
        assert len(reopened.database) == count
        reopened.close()

    def test_orphan_generation_removed(self, posts, tmp_path):
        directory = str(tmp_path / "orphan")
        failpoints = Failpoints()
        failpoints.arm("ingest.flush.mid")
        service = IngestService(directory, ingest_config=_config(),
                                failpoints=failpoints)
        with pytest.raises(SimulatedCrash):
            for post in posts:
                service.append(post)
        generations_root = os.path.join(directory, "generations")
        assert os.listdir(generations_root)  # the half-written directory
        reopened = IngestService(directory, ingest_config=_config())
        assert reopened.recovery.orphan_generations_removed == 1
        assert os.listdir(generations_root) == []
        reopened.close()

    def test_flushed_segments_removed_not_replayed(self, posts, tmp_path):
        directory = str(tmp_path / "pretrunc")
        failpoints = Failpoints()
        failpoints.arm("ingest.flush.pre_truncate")
        service = IngestService(directory, ingest_config=_config(),
                                failpoints=failpoints)
        appended = 0
        with pytest.raises(SimulatedCrash):
            for post in posts:
                service.append(post)
                appended += 1
        appended += 1  # the crash-triggering append was acknowledged
        reopened = IngestService(directory, ingest_config=_config())
        assert reopened.recovery.flushed_segments_removed >= 1
        # No double-replay: the database holds each post exactly once.
        assert len(reopened.database) == appended
        reopened.close()

    def test_manual_flush_and_status(self, posts, tmp_path):
        directory = str(tmp_path / "manual")
        service = IngestService(
            directory,
            ingest_config=IngestConfig(flush_posts=10_000, auto_flush=False))
        for post in posts[:50]:
            service.append(post)
        assert service.flush() == 1
        assert service.flush() is None  # nothing new to flush
        status = service.status()
        assert status["memtable_posts"] == 0
        assert [gen["number"] for gen in status["generations"]] == [1]
        assert status["database_posts"] == 50
        assert status["wal"]["appends"] == 50
        service.close()

    def test_inspect_ingest_dir(self, posts, tmp_path):
        directory = str(tmp_path / "inspect")
        service = _ingest_script(directory, posts[:100])
        service.close()
        report = inspect_ingest_dir(directory)
        assert report.exists
        assert not report.torn_tail
        flushed = sum(entry["post_count"]
                      for entry in report.manifest["generations"])
        assert flushed + report.unflushed_records == 100
        missing = inspect_ingest_dir(str(tmp_path / "nope"))
        assert not missing.exists


class TestLiveBoundsSoundness:
    def test_global_bound_tracks_new_replies(self, posts, tmp_path):
        """The live bounds manager must see t_m grow as replies land —
        a static snapshot would make max-score pruning unsound."""
        directory = str(tmp_path / "bounds")
        service = IngestService(
            directory,
            ingest_config=IngestConfig(flush_posts=10_000, auto_flush=False))
        roots = [post for post in posts if post.rsid is None]
        replies = [post for post in posts if post.rsid is not None]
        assert replies, "corpus must contain replies for this test"
        for post in roots[:5]:
            service.append(post)
        engine = service.build_query_engine()
        before = engine.bounds.global_bound
        appended_reply = False
        for post in posts:
            if post in roots[:5]:
                continue
            try:
                service.append(post)
            except Exception:
                continue
            if post.rsid is not None:
                appended_reply = True
        assert appended_reply
        assert engine.bounds.global_bound > before
        service.close()
