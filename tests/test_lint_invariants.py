"""Deep invariant validators: clean structures pass, corrupted ones fail.

Each validator is exercised twice — once against a freshly built
structure (no violations) and once after deliberately injecting the
corruption it exists to detect.
"""

import struct

import pytest

from repro.cli import main
from repro.data.generator import generate_corpus
from repro.geo import geohash
from repro.geo.cover import circle_cover
from repro.geo.quadtree import QuadTree
from repro.index.forward import PostingsRef
from repro.lint import (
    run_deep_checks,
    validate_bptree,
    validate_cover_soundness,
    validate_forward_inverted,
    validate_heap_pages,
    validate_quadtree,
)
from repro.query.engine import TkLUSEngine
from repro.storage.metadata import MetadataDatabase
from repro.storage.records import TweetRecord


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(num_users=40, num_root_tweets=150, seed=7)


@pytest.fixture()
def engine(corpus):
    return TkLUSEngine.from_posts(corpus.posts, precompute_bounds=False)


@pytest.fixture()
def database():
    db = MetadataDatabase.in_memory()
    for sid in range(1, 600):
        db.insert(TweetRecord(sid=sid, uid=sid % 25,
                              lat=43.0 + (sid % 50) * 0.01,
                              lon=-79.0 + (sid % 70) * 0.01))
    return db


def first_leaf(tree):
    node = tree._load(tree._root_page)
    while not node.is_leaf:
        node = tree._load(node.children[0])
    return node


class TestBPlusTreeValidator:
    def test_fresh_tree_is_clean(self, database):
        for name, tree in database.indexes().items():
            assert validate_bptree(tree, name=name) == [], name
        # 599 keys span multiple leaves, so fill/chain checks are real.
        assert database.indexes()["sid"]._height >= 2

    def test_detects_unsorted_leaf_keys(self, database):
        tree = database.indexes()["sid"]
        leaf = first_leaf(tree)
        leaf.keys.reverse()
        tree._store(leaf)
        violations = validate_bptree(tree)
        assert any("out of order" in v.message for v in violations)

    def test_detects_size_mismatch(self, database):
        tree = database.indexes()["sid"]
        tree._size += 7
        violations = validate_bptree(tree)
        assert any("recorded size" in v.message for v in violations)

    def test_detects_broken_leaf_chain(self, database):
        tree = database.indexes()["sid"]
        leaf = first_leaf(tree)
        leaf.next_leaf = leaf.page_no  # self-loop
        tree._store(leaf)
        violations = validate_bptree(tree)
        assert any("next_leaf" in v.message for v in violations)

    def test_detects_corrupt_node_bytes(self, database):
        tree = database.indexes()["sid"]
        leaf = first_leaf(tree)
        with tree._pool.pinned(leaf.page_no) as page:
            page.data[0] = 9  # invalid node type
            page.mark_dirty()
        violations = validate_bptree(tree)
        assert any("failed to load" in v.message for v in violations)


class TestHeapValidator:
    def test_fresh_heap_is_clean(self, database):
        assert validate_heap_pages(database.heap) == []
        assert database.heap.page_count >= 2

    def test_detects_record_past_page_end(self, database):
        heap = database.heap
        with heap._pool.pinned(0) as page:
            # Rewrite slot 0 to run past the page boundary.
            struct.pack_into("<HH", page.data, 4, 4000, 500)
            page.mark_dirty()
        violations = validate_heap_pages(heap)
        assert any("past the page end" in v.message for v in violations)

    def test_detects_free_offset_overlapping_directory(self, database):
        heap = database.heap
        with heap._pool.pinned(0) as page:
            slot_count, _free = struct.unpack_from("<HH", page.data, 0)
            struct.pack_into("<HH", page.data, 0, slot_count, 6)
            page.mark_dirty()
        violations = validate_heap_pages(heap)
        assert any("overlaps the slot directory" in v.message
                   for v in violations)


class TestCoverValidator:
    def test_real_cover_is_sound(self, corpus):
        posts = corpus.posts
        queries = [(posts[0].location, 10.0), (posts[7].location, 25.0)]
        assert validate_cover_soundness(posts, 4, queries) == []

    def test_detects_incomplete_cover(self, corpus):
        posts = corpus.posts
        queries = [(posts[0].location, 10.0)]

        def broken_cover(center, radius_km, length, metric):
            return []  # covers nothing

        violations = validate_cover_soundness(
            posts, 4, queries, cover_fn=broken_cover)
        assert any("not in the cover" in v.message for v in violations)

    def test_detects_spurious_cover_cell(self, corpus):
        posts = corpus.posts
        queries = [(posts[0].location, 10.0)]
        far_cell = geohash.encode(-45.0, 100.0, 4)

        def bloated_cover(center, radius_km, length, metric):
            return circle_cover(center, radius_km, length, metric) + [
                far_cell]

        violations = validate_cover_soundness(
            posts, 4, queries, cover_fn=bloated_cover)
        assert any("does not intersect" in v.message for v in violations)


class TestForwardInvertedValidator:
    def test_fresh_index_is_clean(self, engine):
        assert validate_forward_inverted(engine.index,
                                         engine.database) == []

    def test_detects_count_length_mismatch(self, engine):
        entries = engine.index.forward._entries
        key, ref = next(iter(entries.items()))
        entries[key] = PostingsRef(path=ref.path, offset=ref.offset,
                                   length=ref.length, count=ref.count + 1)
        violations = validate_forward_inverted(engine.index)
        assert any("forward entry says" in v.message for v in violations)

    def test_detects_posting_for_unknown_tweet(self, engine):
        index = engine.index
        database = engine.database
        # Pick one indexed posting and delete its tweet from the sid tree.
        for (_cell, _term), ref in index.forward.items():
            reader = index.cluster.open(ref.path)
            data = reader.pread(ref.offset, ref.length)
            if data:
                from repro.index.blocks import decode_any
                tid = decode_any(data)[0][0]
                break
        assert database.indexes()["sid"].delete((tid, 0))
        violations = validate_forward_inverted(index, database)
        assert any(f"unknown tweet {tid}" in v.message for v in violations)

    def test_detects_cell_mismatch(self, engine):
        entries = engine.index.forward._entries
        (cell, term), ref = next(iter(entries.items()))
        wrong_cell = geohash.encode(-45.0, 100.0, len(cell))
        del entries[(cell, term)]
        entries[(wrong_cell, term)] = ref
        violations = validate_forward_inverted(engine.index,
                                               engine.database)
        assert any(f"not {wrong_cell!r}" in v.message for v in violations)


class TestBlockHeadersValidator:
    def inject_payload(self, engine, data, count):
        """Upload ``data`` into the index's DFS and point a forward entry
        at it."""
        from repro.lint import validate_block_headers

        path = f"{engine.index.config.output_prefix}/part-corrupt"
        with engine.index.cluster.create(path) as writer:
            writer.write(bytes(data))
        engine.index.forward._entries[("zzzz", "corrupt")] = PostingsRef(
            path=path, offset=0, length=len(data), count=count)
        return validate_block_headers(engine.index)

    def encode(self):
        # [(1, 3), (2, 1)] at block_size=128 is one block whose header
        # fields are all single-byte varints: [MAGIC, VERSION, total=2,
        # nblocks=1, count=2, zigzag(min=1), span=1, max_tf=3, body=4].
        from repro.index.blocks import encode_postings_blocks
        return bytearray(encode_postings_blocks([(1, 3), (2, 1)]))

    def test_fresh_index_is_clean(self, engine):
        from repro.lint import validate_block_headers
        assert validate_block_headers(engine.index) == []

    def test_intact_injected_payload_is_clean(self, engine):
        assert self.inject_payload(engine, self.encode(), count=2) == []

    def test_detects_max_tf_lie(self, engine):
        data = self.encode()
        data[7] = 9  # header says max_tf=9, body's actual max is 3
        violations = self.inject_payload(engine, data, count=2)
        assert any("actual max tf 3" in v.message for v in violations)

    def test_detects_total_count_mismatch(self, engine):
        data = self.encode()
        data[2] = 3  # payload total disagrees with its block counts
        violations = self.inject_payload(engine, data, count=2)
        assert any("does not parse" in v.message for v in violations)

    def test_detects_forward_count_mismatch(self, engine):
        violations = self.inject_payload(engine, self.encode(), count=5)
        assert any("forward entry says 5" in v.message for v in violations)

    def test_detects_undecodable_body(self, engine):
        data = self.encode()
        data[-2] = 0x7F  # last tid delta: decode no longer ends on max_tid
        violations = self.inject_payload(engine, data, count=2)
        assert any("does not decode" in v.message for v in violations)


class TestQuadtreeValidator:
    def build(self, corpus):
        tree = QuadTree(capacity=8)
        for post in corpus.posts:
            tree.insert(post.location[0], post.location[1], post.sid)
        return tree

    def test_fresh_tree_is_clean(self, corpus):
        tree = self.build(corpus)
        assert tree.depth() > 0  # splits happened; bounds checks are real
        assert validate_quadtree(tree) == []

    def test_detects_point_outside_leaf_bounds(self, corpus):
        tree = self.build(corpus)
        stack = [tree._root]
        while stack:
            node = stack.pop()
            if node.is_leaf and node.points and node.depth > 0:
                lat, lon, value = node.points[0]
                node.points[0] = (-lat, -lon, value)
                break
            if node.children:
                stack.extend(node.children)
        violations = validate_quadtree(tree)
        assert any("outside leaf bounds" in v.message for v in violations)

    def test_detects_size_counter_drift(self, corpus):
        tree = self.build(corpus)
        tree._size += 3
        violations = validate_quadtree(tree)
        assert any("size counter" in v.message for v in violations)


class TestDeepRunner:
    def test_clean_synthetic_build_under_budget(self, corpus):
        report = run_deep_checks(posts=corpus.posts)
        assert report.ok, [str(v) for v in report.violations]
        assert report.posts == len(corpus.posts)
        assert report.seconds < 10.0
        assert {check.name for check in report.checks} == {
            "bptree[sid]", "bptree[rsid]", "bptree[uid]", "heap-pages",
            "cover-soundness", "forward-inverted", "block-headers",
            "quadtree", "wal-segments", "memtable-replay",
            "generation-manifest", "compaction",
            "generation-manifest[compacted]"}

    def test_report_serialises(self, corpus):
        import json

        report = run_deep_checks(posts=corpus.posts)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert len(payload["checks"]) == 13

    def test_cli_deep_exit_code(self, capsys):
        assert main(["check", "--deep", "--users", "30",
                     "--roots", "120"]) == 0
        assert "all invariants hold" in capsys.readouterr().out
