"""Tests for gazetteer geocoding of implicit spatial mentions."""

import math

import pytest

from repro.core.model import Post
from repro.data.gazetteer import (
    Gazetteer,
    Geocoder,
    UNLOCATED,
    default_gazetteer,
    geotag_posts,
    is_unlocated,
)

TORONTO = (43.6532, -79.3832)
LONDON_UK = (51.5074, -0.1278)
LONDON_ON = (42.9849, -81.2453)


@pytest.fixture(scope="module")
def geocoder():
    return Geocoder()


class TestGazetteer:
    def test_add_and_lookup(self):
        gazetteer = Gazetteer()
        gazetteer.add("toronto", TORONTO, 1000)
        analyzer = gazetteer.analyzer
        key = tuple(analyzer.analyze("Toronto"))
        assert len(gazetteer.candidates(key)) == 1

    def test_aliases(self):
        gazetteer = Gazetteer()
        gazetteer.add("new york", (40.7, -74.0), 1000, aliases=("nyc",))
        assert gazetteer.candidates(("nyc",))
        assert len(gazetteer) == 2  # name + alias entries

    def test_multiword_tracking(self):
        gazetteer = Gazetteer()
        gazetteer.add("new york city", (40.7, -74.0))
        assert gazetteer.max_name_tokens == 3

    def test_invalid_entries(self):
        gazetteer = Gazetteer()
        with pytest.raises(ValueError):
            gazetteer.add("", (0, 0))
        with pytest.raises(ValueError):
            gazetteer.add("place", (0, 0), population=0)

    def test_default_gazetteer_covers_generator_cities(self):
        gazetteer = default_gazetteer()
        for city in ("toronto", "seoul", "sydney", "chicago"):
            key = tuple(gazetteer.analyzer.analyze(city))
            assert gazetteer.candidates(key), city


class TestMentionExtraction:
    def test_single_mention(self, geocoder):
        mentions = geocoder.extract_mentions("great pizza in Toronto tonight")
        assert len(mentions) == 1
        assert mentions[0][0] == ("toronto",)

    def test_longest_match_wins(self, geocoder):
        mentions = geocoder.extract_mentions("flying to New York tomorrow")
        tokens = [m[0] for m in mentions]
        assert ("new", "york") in tokens

    def test_multiple_mentions(self, geocoder):
        mentions = geocoder.extract_mentions("from Toronto to Seoul")
        assert len(mentions) == 2

    def test_no_mention(self, geocoder):
        assert geocoder.extract_mentions("just had lunch") == []


class TestDisambiguation:
    def test_population_prior_without_context(self, geocoder):
        result = geocoder.resolve("rainy day in London")
        assert result is not None
        # Without context, the bigger London (UK) wins.
        assert result.place.location == LONDON_UK

    def test_context_overrides_population(self, geocoder):
        result = geocoder.resolve("rainy day in London",
                                  context=TORONTO)
        assert result is not None
        # Near Toronto, London Ontario is the right reading... except the
        # single token "london" only indexes the UK entry; the Ontario
        # entry needs its qualified name.
        qualified = geocoder.resolve("rainy day in London Ontario",
                                     context=TORONTO)
        assert qualified is not None
        assert qualified.place.location == LONDON_ON

    def test_ambiguous_token_with_context(self):
        gazetteer = Gazetteer()
        gazetteer.add("springfield", (39.78, -89.65), 110_000)   # IL
        gazetteer.add("springfield", (42.10, -72.59), 155_000)   # MA
        geocoder = Geocoder(gazetteer)
        near_il = geocoder.resolve("back home in springfield",
                                   context=(40.0, -89.0))
        assert near_il is not None
        assert near_il.place.location == (39.78, -89.65)
        near_ma = geocoder.resolve("back home in springfield",
                                   context=(42.0, -72.0))
        assert near_ma.place.location == (42.10, -72.59)

    def test_confidence_in_unit_interval(self, geocoder):
        for text in ("Toronto!", "london", "new york city vibes"):
            result = geocoder.resolve(text)
            assert result is not None
            assert 0.0 < result.confidence <= 1.0


class TestGeotagPosts:
    def make_post(self, sid, text, located=False):
        location = TORONTO if located else UNLOCATED
        return Post(sid=sid, uid=1, location=location, words=(),
                    text=text)

    def test_unlocated_sentinel(self):
        assert is_unlocated(UNLOCATED)
        assert not is_unlocated(TORONTO)
        assert is_unlocated((float("nan"), 0.0))

    def test_located_posts_pass_through(self):
        posts = [self.make_post(1, "anything", located=True)]
        out, geocoded = geotag_posts(posts)
        assert out == posts and geocoded == 0

    def test_geocodes_mentions(self):
        posts = [self.make_post(1, "arrived in Seoul, so excited")]
        out, geocoded = geotag_posts(posts, min_confidence=0.2)
        assert geocoded == 1
        assert math.isclose(out[0].location[0], 37.5665, abs_tol=1e-6)

    def test_drops_unresolvable(self):
        posts = [self.make_post(1, "no places here at all")]
        out, geocoded = geotag_posts(posts)
        assert out == [] and geocoded == 0

    def test_confidence_threshold(self):
        gazetteer = Gazetteer()
        gazetteer.add("springfield", (39.78, -89.65), 100_000)
        gazetteer.add("springfield", (42.10, -72.59), 100_001)
        geocoder = Geocoder(gazetteer)
        posts = [self.make_post(1, "springfield forever")]
        # Dead-even candidates without context -> low confidence.
        out, geocoded = geotag_posts(posts, geocoder, min_confidence=0.9)
        assert geocoded == 0

    def test_user_context_steers(self):
        gazetteer = Gazetteer()
        gazetteer.add("springfield", (39.78, -89.65), 110_000)
        gazetteer.add("springfield", (42.10, -72.59), 155_000)
        geocoder = Geocoder(gazetteer)
        posts = [self.make_post(1, "springfield pride")]
        out, geocoded = geotag_posts(posts, geocoder, min_confidence=0.1,
                                     user_context={1: (40.0, -89.0)})
        assert geocoded == 1
        assert out[0].location == (39.78, -89.65)

    def test_geotagged_posts_flow_into_engine(self):
        """Integration: geocoded posts join the normal pipeline."""
        from repro.query.engine import TkLUSEngine
        posts = [
            Post(1, 10, TORONTO, ("hotel",), "hotel downtown"),
            Post(2, 11, UNLOCATED, (), "amazing hotel in Toronto"),
            Post(3, 12, UNLOCATED, (), "no place mentioned hotel"),
        ]
        located, geocoded = geotag_posts(posts, min_confidence=0.2)
        assert geocoded == 1
        assert len(located) == 2
        # Re-analyse words for the geocoded post before indexing.
        from repro.text import Analyzer
        from dataclasses import replace
        analyzer = Analyzer()
        located = [replace(p, words=tuple(analyzer.analyze(p.text)))
                   for p in located]
        engine = TkLUSEngine.from_posts(located, precompute_bounds=False)
        query = engine.make_query(TORONTO, 10.0, ["hotel"], k=5)
        uids = {uid for uid, _s in engine.search_sum(query).users}
        assert uids == {10, 11}
