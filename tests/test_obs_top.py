"""Tests for the `repro top` frame renderer and sparklines."""

from repro.obs.health import ComponentHealth, HealthReport, HealthStatus
from repro.obs.runtime import RuntimeConfig, RuntimeTelemetry
from repro.obs.top import SPARK_CHARS, render_top, sparkline


class TestSparkline:
    def test_empty_series_renders_baseline(self):
        assert sparkline([]) == SPARK_CHARS[0]

    def test_all_zero_series_is_flat(self):
        assert sparkline([0.0, 0.0, 0.0]) == SPARK_CHARS[0] * 3

    def test_scales_to_series_maximum(self):
        line = sparkline([0.0, 5.0, 10.0])
        assert len(line) == 3
        assert line[0] == SPARK_CHARS[0]
        assert line[2] == SPARK_CHARS[-1]
        # The midpoint lands mid-ramp, strictly between the extremes.
        assert SPARK_CHARS.index(line[1]) not in (0, len(SPARK_CHARS) - 1)

    def test_width_keeps_newest_values(self):
        line = sparkline([1.0] * 10 + [0.0, 0.0], width=4)
        assert len(line) == 4
        assert line[-1] == SPARK_CHARS[0]


class TestRenderTop:
    def _populated_runtime(self):
        runtime = RuntimeTelemetry(RuntimeConfig(
            slo_latency_ms=250.0, slow_query_ms=1e9))
        registry = runtime.registry
        registry.counter("query.searches").inc(12)
        registry.counter("ingest.appends").inc(480)
        registry.counter("query.candidates").inc(300)
        registry.counter("query.users_scored").inc(40)
        for value in (0.005, 0.009, 0.020):
            registry.histogram("query.latency_seconds").observe(value)
        runtime.record_query(None, None, elapsed_seconds=0.01)
        return runtime

    def test_frame_contains_all_sections(self):
        runtime = self._populated_runtime()
        health = HealthReport(components=[
            ComponentHealth("wal", HealthStatus.OK),
            ComponentHealth("memtable", HealthStatus.DEGRADED),
        ])
        service_status = {"memtable_posts": 7, "memtable_bytes": 2048,
                          "generations": [{"number": 1}], "next_lsn": 99}
        frame = render_top(runtime, health=health,
                           service_status=service_status)
        assert "repro top" in frame
        assert "span_mode=all" in frame
        assert "queries" in frame and "ingest" in frame
        assert "p95" in frame and "p99" in frame
        assert "SLO" in frame and "compliance" in frame
        assert "memtable 7 posts" in frame
        assert "1 generations" in frame
        assert "DEGRADED" in frame
        assert "[!]memtable" in frame and "[+]wal" in frame

    def test_frame_without_optional_sections(self):
        frame = render_top(self._populated_runtime())
        assert "health" not in frame
        assert "memtable" not in frame
        assert "serve" not in frame
        assert "SLO" in frame

    def test_serve_panel(self):
        runtime = self._populated_runtime()
        runtime.registry.counter("serve.completed").inc(30)
        runtime.registry.counter("serve.shed").inc(10)
        for value in (0.004, 0.011):
            runtime.registry.histogram("serve.latency_seconds").observe(value)
        serve_stats = {
            "workers": 4,
            "workers_busy": 2,
            "worker_utilization": 0.625,
            "queue": {"depth": 3, "fast_lane_depth": 1,
                      "normal_lane_depth": 2,
                      "estimated_delay_ms": 12.5,
                      "service_time_ewma_ms": 4.2},
            "cache": {"hit_rate": 0.4, "entries": 8, "capacity": 1024,
                      "invalidated": 5, "evicted": 0},
        }
        frame = render_top(runtime, serve_stats=serve_stats, width=100)
        assert "serve" in frame
        assert "25.0% of offered" in frame
        assert "depth 3 (fast 1 / normal 2)" in frame
        assert "hit rate 40.0%" in frame
        assert "8/1024 entries" in frame
        assert "5 invalidated" in frame
        assert "2/4 busy" in frame
        assert "utilization 62.5%" in frame

    def test_serve_panel_without_cache(self):
        # cache=None (serving with the cache disabled) must not crash.
        serve_stats = {"workers": 1, "workers_busy": 0,
                       "worker_utilization": 0.0, "queue": {},
                       "cache": None}
        frame = render_top(self._populated_runtime(),
                           serve_stats=serve_stats)
        assert "hit rate 0.0%" in frame

    def test_width_truncates_every_line(self):
        frame = render_top(self._populated_runtime(), width=40)
        assert all(len(line) <= 40 for line in frame.splitlines())

    def test_renders_counter_sparklines(self):
        frame = render_top(self._populated_runtime())
        assert any(char in frame for char in SPARK_CHARS[1:])
