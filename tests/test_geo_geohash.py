"""Tests for geohash encoding/decoding (Section IV-B1, Table IV)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import geohash as gh

latitudes = st.floats(min_value=-90.0, max_value=90.0,
                      allow_nan=False, allow_infinity=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0,
                       allow_nan=False, allow_infinity=False)
lengths = st.integers(min_value=1, max_value=gh.MAX_LENGTH)


class TestPaperExample:
    """Table IV: (-23.994140625, -46.23046875) at lengths 1-4."""

    LAT, LON = -23.994140625, -46.23046875

    @pytest.mark.parametrize("length,expected", [
        (1, "6"), (2, "6g"), (3, "6gx"), (4, "6gxp"),
    ])
    def test_table4(self, length, expected):
        assert gh.encode(self.LAT, self.LON, length) == expected

    def test_cell_contains_point(self):
        min_lat, min_lon, max_lat, max_lon = gh.decode_cell("6gxp")
        assert min_lat <= self.LAT <= max_lat
        assert min_lon <= self.LON <= max_lon


class TestEncodeDecode:
    def test_known_cities(self):
        # Reference values from the standard geohash scheme.
        assert gh.encode(43.6532, -79.3832, 4) == "dpz8"    # Toronto
        assert gh.encode(51.5074, -0.1278, 5) == "gcpvj"    # London
        assert gh.encode(40.7128, -74.0060, 5) == "dr5re"   # New York
        lat, lon = gh.decode(gh.encode(43.6532, -79.3832, 6))
        assert abs(lat - 43.6532) < 0.05
        assert abs(lon + 79.3832) < 0.05

    def test_alphabet_excludes_ailo(self):
        for char in "ailo":
            assert char not in gh.BASE32
        assert len(gh.BASE32) == 32

    @given(latitudes, longitudes, lengths)
    def test_roundtrip_within_cell(self, lat, lon, length):
        code = gh.encode(lat, lon, length)
        assert len(code) == length
        min_lat, min_lon, max_lat, max_lon = gh.decode_cell(code)
        assert min_lat <= lat <= max_lat
        assert min_lon <= lon <= max_lon

    @given(latitudes, longitudes)
    def test_prefix_property(self, lat, lon):
        """Shorter encodings are prefixes of longer ones (the quadtree
        derivation the paper describes)."""
        full = gh.encode(lat, lon, 8)
        for length in range(1, 8):
            assert gh.encode(lat, lon, length) == full[:length]

    @given(latitudes, longitudes, st.integers(min_value=1, max_value=6))
    def test_decode_center_reencodes(self, lat, lon, length):
        code = gh.encode(lat, lon, length)
        center = gh.decode(code)
        assert gh.encode(center[0], center[1], length) == code

    def test_invalid_inputs(self):
        with pytest.raises(gh.GeohashError):
            gh.encode(91.0, 0.0, 4)
        with pytest.raises(gh.GeohashError):
            gh.encode(0.0, 181.0, 4)
        with pytest.raises(gh.GeohashError):
            gh.encode(0.0, 0.0, 0)
        with pytest.raises(gh.GeohashError):
            gh.encode(0.0, 0.0, gh.MAX_LENGTH + 1)
        with pytest.raises(gh.GeohashError):
            gh.decode_cell("")
        with pytest.raises(gh.GeohashError):
            gh.decode_cell("a1")  # 'a' not in the alphabet


class TestCellGeometry:
    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_cell_dimensions(self, length):
        lat_span, lon_span = gh.cell_dimensions_degrees(length)
        min_lat, min_lon, max_lat, max_lon = gh.decode_cell(
            gh.encode(10.0, 20.0, length))
        assert math.isclose(max_lat - min_lat, lat_span, rel_tol=1e-9)
        assert math.isclose(max_lon - min_lon, lon_span, rel_tol=1e-9)

    def test_longer_is_finer(self):
        spans = [gh.cell_dimensions_degrees(n) for n in range(1, 7)]
        for coarse, fine in zip(spans, spans[1:]):
            assert fine[0] < coarse[0]
            assert fine[1] < coarse[1]


class TestNeighbors:
    def test_neighbor_count_interior(self):
        assert len(gh.neighbors("6gxp")) == 8

    def test_neighbors_are_adjacent(self):
        base = gh.decode_cell("6gxp")
        for code in gh.neighbors("6gxp"):
            cell = gh.decode_cell(code)
            # Cells must touch or overlap-adjacent in both axes.
            assert cell[2] >= base[0] - 1e-9 and cell[0] <= base[2] + 1e-9
            assert cell[3] >= base[1] - 1e-9 and cell[1] <= base[3] + 1e-9

    def test_expand_includes_self(self):
        block = gh.expand("6gxp")
        assert block[0] == "6gxp"
        assert len(block) == 9

    def test_pole_cell_has_fewer_neighbors(self):
        north = gh.encode(89.99, 0.0, 3)
        assert len(gh.neighbors(north)) < 8

    def test_antimeridian_wrap(self):
        east = gh.encode(0.0, 179.99, 2)
        neighbors = gh.neighbors(east)
        assert len(neighbors) == 8  # wraps rather than truncating


class TestPrefixHelpers:
    def test_children_count(self):
        kids = list(gh.children("6g"))
        assert len(kids) == 32
        assert all(k.startswith("6g") and len(k) == 3 for k in kids)

    def test_children_of_max_length_rejected(self):
        with pytest.raises(gh.GeohashError):
            list(gh.children("6" * gh.MAX_LENGTH))

    def test_is_prefix_of(self):
        assert gh.is_prefix_of("6g", "6gxp")
        assert not gh.is_prefix_of("6gxp", "6g")

    @given(latitudes, longitudes, latitudes, longitudes)
    def test_common_prefix_is_shared_cell(self, lat1, lon1, lat2, lon2):
        a = gh.encode(lat1, lon1, 6)
        b = gh.encode(lat2, lon2, 6)
        prefix = gh.common_prefix(a, b)
        assert a.startswith(prefix) and b.startswith(prefix)
        if len(prefix) < 6:
            assert a[len(prefix)] != b[len(prefix)]
