"""Tests for the synthetic corpus generator."""

import pytest

from repro.data.generator import (
    CorpusGenerator,
    DEFAULT_CITIES,
    GeneratorConfig,
    generate_corpus,
)
from repro.data.vocabulary import TABLE2_KEYWORDS, ZipfVocabulary
from repro.geo.distance import haversine_km
from repro.text import Analyzer


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(num_users=200, num_root_tweets=800, seed=7)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(num_users=1), dict(num_root_tweets=0), dict(cities=()),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = generate_corpus(num_users=50, num_root_tweets=100, seed=3)
        b = generate_corpus(num_users=50, num_root_tweets=100, seed=3)
        assert [(p.sid, p.uid, p.text, p.location) for p in a.posts] \
            == [(p.sid, p.uid, p.text, p.location) for p in b.posts]

    def test_different_seed_differs(self):
        a = generate_corpus(num_users=50, num_root_tweets=100, seed=3)
        b = generate_corpus(num_users=50, num_root_tweets=100, seed=4)
        assert [p.text for p in a.posts] != [p.text for p in b.posts]


class TestStructure:
    def test_sids_sequential_from_one(self, small_corpus):
        sids = [p.sid for p in small_corpus.posts]
        assert sids == list(range(1, len(sids) + 1))

    def test_replies_reference_earlier_posts(self, small_corpus):
        known = set()
        for post in small_corpus.posts:
            if post.rsid is not None:
                assert post.rsid in known
            known.add(post.sid)

    def test_reply_ruid_matches_parent_author(self, small_corpus):
        by_sid = {p.sid: p for p in small_corpus.posts}
        for post in small_corpus.posts:
            if post.rsid is not None:
                assert post.ruid == by_sid[post.rsid].uid

    def test_root_count(self, small_corpus):
        roots = [p for p in small_corpus.posts if p.rsid is None]
        assert len(roots) == 800

    def test_thread_depth_bounded(self, small_corpus):
        config = small_corpus.config
        by_sid = {p.sid: p for p in small_corpus.posts}
        for post in small_corpus.posts:
            depth = 1
            node = post
            while node.rsid is not None:
                node = by_sid[node.rsid]
                depth += 1
            assert depth <= config.max_thread_depth

    def test_words_match_analyzed_text(self, small_corpus):
        analyzer = Analyzer()
        for post in small_corpus.posts[:50]:
            assert list(post.words) == analyzer.analyze(post.text)


class TestShapes:
    def test_hot_keywords_lead_frequency_ranking(self, small_corpus):
        frequencies = small_corpus.keyword_frequencies()
        analyzer = Analyzer()
        hot_stems = {analyzer.analyze(keyword)[0]
                     for keyword in TABLE2_KEYWORDS}
        top10 = {term for term, _count in
                 sorted(frequencies.items(), key=lambda kv: -kv[1])[:10]}
        # The Zipf head must be dominated by the Table II keywords.
        assert len(hot_stems & top10) >= 8

    def test_spatial_clustering(self, small_corpus):
        """Most posts fall within 50 km of some configured city centre."""
        centers = [(c.lat, c.lon) for c in DEFAULT_CITIES]
        near = sum(
            1 for post in small_corpus.posts
            if min(haversine_km(post.location, c) for c in centers) < 50.0)
        assert near / len(small_corpus.posts) > 0.9

    def test_activity_skew(self, small_corpus):
        counts = {}
        for post in small_corpus.posts:
            counts[post.uid] = counts.get(post.uid, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        # Heavy tail: the busiest decile posts several times the median.
        busiest = ordered[0]
        median = ordered[len(ordered) // 2]
        assert busiest >= 4 * max(1, median)

    def test_some_threads_exist(self, small_corpus):
        replies = [p for p in small_corpus.posts if p.rsid is not None]
        assert replies
        forwards = [p for p in replies if p.kind is not None
                    and p.kind.value == "forward"]
        assert forwards  # both interaction kinds occur


class TestProjections:
    def test_to_records_roundtrip(self, small_corpus):
        records = small_corpus.to_records()
        assert len(records) == len(small_corpus.posts)
        for post, record in zip(small_corpus.posts, records):
            assert record.sid == post.sid and record.uid == post.uid
            assert record.rsid == (post.rsid if post.rsid is not None else -1)

    def test_to_dataset_cached(self, small_corpus):
        assert small_corpus.to_dataset() is small_corpus.to_dataset()

    def test_sample_location_from_corpus(self, small_corpus):
        import random
        location = small_corpus.sample_location(random.Random(0))
        assert any(post.location == location for post in small_corpus.posts)


class TestZipfVocabulary:
    def test_rank_frequency_decreasing(self):
        import random
        vocabulary = ZipfVocabulary()
        rng = random.Random(1)
        counts = {}
        for _ in range(20000):
            word = vocabulary.sample(rng)
            counts[word] = counts.get(word, 0) + 1
        first = counts.get(vocabulary.words[0], 0)
        tenth = counts.get(vocabulary.words[9], 0)
        fiftieth = counts.get(vocabulary.words[49], 0)
        assert first > tenth > fiftieth

    def test_sample_many_length(self):
        import random
        assert len(ZipfVocabulary().sample_many(random.Random(0), 7)) == 7
