"""Fixture-corpus tests for the RL100 concurrency family.

Every rule in the family has a seeded-violation fixture and a clean
twin under ``tests/lint_fixtures/``.  The violation file marks each
expected finding line with a trailing ``# seeded-violation`` comment,
so the assertions here pin the *exact* anchor lines, not just "found
something"; the clean twin must produce nothing at all.

The fixtures are linted via :func:`repro.lint.lint_source` with a
non-test path: the RL100 family sets ``include_tests = False``, so the
corpus never flags itself during a real tree scan.
"""

from pathlib import Path

import pytest

from repro.lint import all_rules, lint_source

FIXTURES = Path(__file__).parent / "lint_fixtures"
MARKER = "# seeded-violation"

#: rule id -> fixture stem.
FAMILY = {
    "RL100": "rl100",
    "RL101": "rl101",
    "RL102": "rl102",
    "RL103": "rl103",
    "RL104": "rl104",
    "RL105": "rl105",
    "RL106": "rl106",
}


def _rule(rule_id):
    matches = [rule for rule in all_rules() if rule.rule_id == rule_id]
    assert len(matches) == 1, f"{rule_id} not registered exactly once"
    return matches[0]


def _seeded_lines(source):
    return sorted(number for number, line
                  in enumerate(source.splitlines(), start=1)
                  if MARKER in line)


def _lint(source, stem, rule_id):
    # A src/-style path so include_tests = False does not veto the rule.
    return lint_source(source, path=f"src/{stem}.py",
                       rules=[_rule(rule_id)])


@pytest.mark.parametrize("rule_id", sorted(FAMILY))
def test_violation_fixture_is_caught(rule_id):
    stem = FAMILY[rule_id] + "_violation"
    source = (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")
    seeded = _seeded_lines(source)
    assert seeded, f"{stem}.py has no {MARKER} markers"
    findings = _lint(source, stem, rule_id)
    assert {finding.rule for finding in findings} == {rule_id}
    assert sorted(finding.line for finding in findings) == seeded


@pytest.mark.parametrize("rule_id", sorted(FAMILY))
def test_clean_twin_passes(rule_id):
    stem = FAMILY[rule_id] + "_clean"
    source = (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")
    assert MARKER not in source
    findings = _lint(source, stem, rule_id)
    assert findings == []


def test_fixture_corpus_is_complete():
    stems = {path.stem for path in FIXTURES.glob("rl*.py")}
    expected = {f"{stem}_{kind}" for stem in FAMILY.values()
                for kind in ("violation", "clean")}
    assert stems == expected


def test_family_skips_test_files():
    source = (FIXTURES / "rl106_violation.py").read_text(encoding="utf-8")
    findings = lint_source(source, path="tests/lint_fixtures/x.py",
                           rules=[_rule("RL106")])
    assert findings == []


def test_suppression_silences_a_family_finding():
    source = (
        "import threading\n"
        "\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "\n"
        "    def grab(self):\n"
        "        self._lock.acquire()  # repro-lint: disable=RL106 "
        "reason=paired release lives in the teardown hook\n"
    )
    assert lint_source(source, path="src/x.py",
                       rules=[_rule("RL106")]) == []
