"""Tests for distance metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import distance as d

coords = st.tuples(
    st.floats(min_value=-89.0, max_value=89.0, allow_nan=False),
    st.floats(min_value=-179.0, max_value=179.0, allow_nan=False),
)


class TestHaversine:
    def test_zero_distance(self):
        assert d.haversine_km((43.65, -79.38), (43.65, -79.38)) == 0.0

    def test_known_distance_toronto_nyc(self):
        # Toronto to New York is ~551 km great-circle.
        got = d.haversine_km((43.6532, -79.3832), (40.7128, -74.0060))
        assert 540 < got < 560

    def test_one_degree_latitude(self):
        got = d.haversine_km((0.0, 0.0), (1.0, 0.0))
        assert abs(got - d.KM_PER_DEGREE) < 0.5

    def test_antipodal(self):
        got = d.haversine_km((0.0, 0.0), (0.0, 180.0))
        assert abs(got - math.pi * d.EARTH_RADIUS_KM) < 1.0

    @given(coords, coords)
    def test_symmetry(self, a, b):
        assert math.isclose(d.haversine_km(a, b), d.haversine_km(b, a),
                            rel_tol=1e-12, abs_tol=1e-9)

    @given(coords, coords)
    def test_non_negative(self, a, b):
        assert d.haversine_km(a, b) >= 0.0

    @given(coords, coords, coords)
    def test_triangle_inequality(self, a, b, c):
        ab = d.haversine_km(a, b)
        bc = d.haversine_km(b, c)
        ac = d.haversine_km(a, c)
        assert ac <= ab + bc + 1e-6


class TestEquirectangular:
    @given(coords)
    def test_close_to_haversine_at_short_range(self, a):
        b = (a[0] + 0.05, a[1] + 0.05)
        if abs(b[0]) > 89.5:
            return
        hav = d.haversine_km(a, b)
        eq = d.equirectangular_km(a, b)
        assert abs(hav - eq) < max(0.02 * hav, 0.05)


class TestEuclideanDegrees:
    def test_is_plain_hypot(self):
        assert d.euclidean_degrees((0, 0), (3, 4)) == 5.0


class TestConversions:
    def test_km_to_degrees_lat_roundtrip(self):
        degrees = d.km_to_degrees_lat(111.0)
        assert abs(degrees - 111.0 / d.KM_PER_DEGREE) < 1e-12

    def test_lon_degrees_grow_with_latitude(self):
        assert d.km_to_degrees_lon(10, 60.0) > d.km_to_degrees_lon(10, 0.0)

    def test_lon_degrees_capped_at_pole(self):
        assert d.km_to_degrees_lon(10, 90.0) == 360.0

    def test_bounding_box_contains_circle(self):
        center = (43.65, -79.38)
        radius = 25.0
        min_lat, min_lon, max_lat, max_lon = d.bounding_box(center, radius)
        # Walk the circle rim; every rim point must be inside the box.
        for step in range(36):
            angle = step * math.pi / 18
            lat = center[0] + math.sin(angle) * d.km_to_degrees_lat(radius)
            lon = center[1] + math.cos(angle) * d.km_to_degrees_lon(
                radius, center[0])
            point_on_rim = (lat, lon)
            if d.haversine_km(center, point_on_rim) <= radius:
                assert min_lat <= lat <= max_lat
                assert min_lon <= lon <= max_lon

    def test_bounding_box_clamps_latitude(self):
        box = d.bounding_box((89.9, 0.0), 100.0)
        assert box[2] == 90.0


class TestDefaultMetric:
    def test_default_is_haversine(self):
        assert d.DEFAULT_METRIC is d.haversine_km


class TestMinDistanceToRect:
    """The exact spherical point-to-rectangle distance (used as the
    lower bound in R-tree best-first search and circle covers)."""

    @given(coords,
           st.floats(min_value=-85, max_value=80, allow_nan=False),
           st.floats(min_value=-175, max_value=170, allow_nan=False),
           st.floats(min_value=0.1, max_value=40, allow_nan=False),
           st.floats(min_value=0.1, max_value=40, allow_nan=False))
    def test_lower_bounds_all_contained_points(self, point, lat0, lon0,
                                               dlat, dlon):
        rect = (lat0, lon0, min(89.0, lat0 + dlat), min(179.0, lon0 + dlon))
        bound = d.min_distance_to_rect_km(point, rect)
        # Sample a grid of points inside the rectangle.
        for i in range(5):
            for j in range(5):
                lat = rect[0] + (rect[2] - rect[0]) * i / 4
                lon = rect[1] + (rect[3] - rect[1]) * j / 4
                assert bound <= d.haversine_km(point, (lat, lon)) + 1e-6

    def test_inside_rect_is_zero(self):
        assert d.min_distance_to_rect_km((5.0, 5.0), (0, 0, 10, 10)) == 0.0

    def test_wide_longitude_gap_regression(self):
        """The case coordinate clamping gets wrong: with a >90 degree
        longitude gap, the nearest point of a meridian edge lies
        poleward of the clamped latitude."""
        point = (0.0, 0.0)
        rect = (0.0, 95.0, 26.0, 95.0)  # a meridian segment
        bound = d.min_distance_to_rect_km(point, rect)
        clamped = d.haversine_km(point, (0.0, 95.0))
        interior = d.haversine_km(point, (26.0, 95.0))
        assert bound <= min(clamped, interior) + 1e-9
        assert bound < clamped  # strictly better than clamping here

    def test_matches_clamping_for_small_gaps(self):
        point = (43.0, -80.0)
        rect = (44.0, -79.0, 45.0, -78.0)
        bound = d.min_distance_to_rect_km(point, rect)
        clamped = d.haversine_km(point, (44.0, -79.0))
        assert bound == pytest.approx(clamped, rel=1e-9)
