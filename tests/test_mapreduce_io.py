"""Tests for DFS-backed MapReduce input/output connectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dfs.cluster import DFSCluster
from repro.mapreduce import Job, SumReducer, run_job
from repro.mapreduce.io import (
    DFSLineInputFormat,
    load_job_inputs,
    write_job_output,
)
from repro.mapreduce.types import Mapper


def cluster_with_file(lines, block_size=32, path="/in/data"):
    cluster = DFSCluster(num_datanodes=2, block_size=block_size)
    with cluster.create(path) as writer:
        for line in lines:
            writer.write((line + "\n").encode())
    return cluster


class TestSplits:
    def test_one_split_per_block(self):
        lines = [f"line-{i:03d}" for i in range(20)]
        cluster = cluster_with_file(lines, block_size=64)
        input_format = DFSLineInputFormat(cluster)
        splits = input_format.splits(["/in/data"])
        size = cluster.file_size("/in/data")
        assert len(splits) == (size + 63) // 64
        assert splits[0][1] == 0
        assert splits[-1][2] == size

    def test_empty_file(self):
        cluster = DFSCluster(block_size=64)
        cluster.create("/in/empty").close()
        assert DFSLineInputFormat(cluster).splits(["/in/empty"]) == []


class TestSplitReading:
    @given(st.lists(st.text(alphabet="abcdefgh0123456789", min_size=1,
                            max_size=30),
                    min_size=1, max_size=60),
           st.integers(min_value=8, max_value=128))
    @settings(max_examples=40, deadline=None)
    def test_no_record_lost_or_duplicated(self, lines, block_size):
        """The block-boundary convention must partition lines exactly."""
        cluster = cluster_with_file(lines, block_size=block_size)
        input_format = DFSLineInputFormat(cluster)
        collected = []
        for split in input_format.splits(["/in/data"]):
            collected.extend(input_format.read_split(split))
        assert collected == lines

    def test_boundary_exactly_on_newline(self):
        # Craft lines so a block boundary lands right after a newline.
        lines = ["a" * 31, "b" * 10]  # first line + \n = 32 = block size
        cluster = cluster_with_file(lines, block_size=32)
        input_format = DFSLineInputFormat(cluster)
        collected = []
        for split in input_format.splits(["/in/data"]):
            collected.extend(input_format.read_split(split))
        assert collected == lines

    def test_line_spanning_blocks(self):
        lines = ["x" * 100, "tail"]
        cluster = cluster_with_file(lines, block_size=32)
        input_format = DFSLineInputFormat(cluster)
        collected = []
        for split in input_format.splits(["/in/data"]):
            collected.extend(input_format.read_split(split))
        assert collected == lines

    def test_read_all_keys_unique(self):
        lines = [f"row {i}" for i in range(25)]
        cluster = cluster_with_file(lines, block_size=16)
        records = DFSLineInputFormat(cluster).read_all(["/in/data"])
        keys = [key for key, _line in records]
        assert len(keys) == len(set(keys)) == 25


class TestEndToEndJob:
    class WordMapper(Mapper):
        def map(self, key, value, emit, context):
            for word in value.split():
                emit(word, 1)

    def test_wordcount_from_dfs_to_dfs(self):
        lines = ["hotel cafe", "hotel", "cafe cafe pizza"]
        cluster = cluster_with_file(lines, block_size=16)
        inputs = load_job_inputs(cluster, "/in")
        job = Job("dfs-wc", mapper_factory=self.WordMapper,
                  reducer_factory=SumReducer, inputs=inputs,
                  num_reduce_tasks=2)
        result = run_job(job)
        assert result.as_dict() == {"hotel": 2, "cafe": 3, "pizza": 1}

        paths = write_job_output(cluster, "/out/wc", result.outputs)
        assert paths == ["/out/wc/part-00000", "/out/wc/part-00001"]
        combined = b"".join(
            cluster.open(path).pread(0, cluster.file_size(path))
            for path in paths)
        text = combined.decode()
        assert "hotel\t2" in text and "cafe\t3" in text
