"""Integration tests for per-query profiles and the obs facade.

The central acceptance invariant: every in-radius candidate examined by
a scoring loop is either pruned (attributed to exactly one bound family)
or fully scored::

    users_pruned_global + users_pruned_hot + users_scored == candidates_examined
"""

import pytest

from repro import obs
from repro.core.model import Semantics


def _queries(workload, num_keywords=1, radius=20.0, k=5, limit=6,
             semantics=Semantics.OR):
    return [workload.bind(spec, radius_km=radius, k=k, semantics=semantics)
            for spec in workload.specs(num_keywords)[:limit]]


class TestLedgerInvariant:
    def test_max_profile_balances(self, engine, workload):
        for query in _queries(workload, num_keywords=1, k=3):
            result = engine.search(query, method="max")
            profile = result.profile
            assert profile is not None
            profile.check()
            assert profile.method == "max"
            assert profile.bound_source in ("global", "hot")
            assert profile.candidates_examined == result.stats.candidates_in_radius
            # candidate_users is the distinct-user view of the same set.
            assert 0 < profile.candidate_users <= profile.candidates_examined
            assert profile.threads_built == result.stats.threads_built
            assert profile.users_pruned == result.stats.threads_pruned

    def test_max_multi_keyword_and_semantics(self, engine, workload):
        for query in _queries(workload, num_keywords=2, k=3,
                              semantics=Semantics.AND):
            profile = engine.search(query, method="max").profile
            profile.check()

    def test_sum_profile_balances_with_no_pruning(self, engine, workload):
        for query in _queries(workload, num_keywords=1, k=3):
            result = engine.search(query, method="sum")
            profile = result.profile
            assert profile is not None
            profile.check()
            assert profile.method == "sum"
            # Algorithm 4 scores every in-radius candidate.
            assert profile.users_pruned == 0
            assert profile.bound_source == "none"
            assert profile.users_scored == profile.candidates_examined

    def test_sum_and_max_agree_on_candidate_funnel(self, engine, workload):
        # Pruning changes how candidates are *processed*, never which
        # candidates are examined: both processors must report the same
        # funnel for the same query.
        for query in _queries(workload, num_keywords=1, k=3, limit=4):
            sum_profile = engine.search(query, method="sum").profile
            max_profile = engine.search(query, method="max").profile
            assert sum_profile.candidates == max_profile.candidates
            assert (sum_profile.candidates_examined
                    == max_profile.candidates_examined)
            assert sum_profile.candidate_users == max_profile.candidate_users
            assert sum_profile.cells_covered == max_profile.cells_covered

    def test_pruning_happens_somewhere_in_the_workload(self, engine, workload):
        # With k=1 the queue threshold is at its tightest, so across a
        # handful of single-keyword queries the bounds must fire.
        total_pruned = 0
        for query in _queries(workload, num_keywords=1, k=1, limit=8):
            profile = engine.search(query, method="max").profile
            profile.check()
            total_pruned += profile.users_pruned
        assert total_pruned > 0


class TestProfileContents:
    def test_io_and_funnel_fields(self, engine, workload):
        query = _queries(workload, limit=1)[0]
        profile = engine.search(query, method="max").profile
        assert profile.elapsed_seconds > 0.0
        assert profile.k == query.k
        assert profile.radius_km == query.radius_km
        assert profile.keywords == len(query.keywords)
        assert profile.cells_covered > 0
        assert profile.pages_read >= 0
        assert 0.0 <= profile.cache_hit_rate <= 1.0
        assert 0.0 <= profile.prune_rate <= 1.0
        assert isinstance(profile.io_by_component, dict)

    def test_as_dict_is_json_shaped(self, engine, workload):
        import json

        query = _queries(workload, limit=1)[0]
        profile = engine.search(query, method="max").profile
        data = json.loads(json.dumps(profile.as_dict()))
        assert data["method"] == "max"
        assert data["candidate_users"] == profile.candidate_users

    def test_describe_mentions_the_ledger(self, engine, workload):
        query = _queries(workload, limit=1)[0]
        profile = engine.search(query, method="max").profile
        text = profile.describe()
        assert "pruning:" in text
        assert f"scored={profile.users_scored}" in text


class TestDisabledPath:
    def test_trace_returns_shared_null_context(self):
        assert not obs.is_enabled()
        assert obs.trace("anything", attr=1) is obs.NULL_SPAN_CONTEXT  # repro-lint: disable=RL003 reason=asserts the disabled-path null context identity; no span is created
        # Identity, not just equality: the disabled path allocates nothing.
        assert obs.trace("other") is obs.trace("third")  # repro-lint: disable=RL003 reason=asserts the disabled-path null context identity; no span is created

    def test_disabled_search_records_no_spans_or_metrics(self, engine,
                                                         workload):
        assert not obs.is_enabled()
        tracer = obs.get_tracer()
        registry = obs.get_registry()
        tracer.reset()
        names_before = registry.names()
        query = _queries(workload, limit=1)[0]
        result = engine.search(query, method="max")
        assert tracer.roots() == []
        assert registry.names() == names_before
        # The profile itself is still produced — it does not depend on
        # the obs switch.
        assert result.profile is not None
        result.profile.check()

    def test_metric_helpers_are_noops_when_disabled(self):
        registry = obs.get_registry()
        names_before = registry.names()
        obs.inc("should.not.appear")
        obs.observe("should.not.appear.h", 1.0)
        obs.set_gauge("should.not.appear.g", 1.0)
        obs.event("should.not.appear.e")
        assert registry.names() == names_before


class TestProfileSearch:
    def test_span_tree_and_registry(self, engine, workload):
        query = _queries(workload, limit=1)[0]
        result, spans, registry = engine.profile_search(query, method="max")
        assert not obs.is_enabled()  # state restored afterwards

        assert result.profile is not None
        roots = [span for span in spans if span.name == "query.search"]
        assert len(roots) == 1
        root = roots[0]
        assert root.attributes["method"] == "max"
        # Children ran sequentially inside the search span.
        assert root.duration >= root.child_time()
        child_names = {child.name for child in root.children}
        assert "query.cover" in child_names
        assert "query.score" in child_names

        counters = registry.counters()
        assert counters["query.searches"] == 1
        scored = counters.get("query.users_scored", 0)
        pruned = (counters.get("query.pruned.global", 0)
                  + counters.get("query.pruned.hot", 0))
        assert scored + pruned == counters.get("query.candidates_in_radius", 0)
        assert registry.histogram("query.latency_seconds").count == 1

    def test_observed_restores_previous_collectors(self):
        outer_tracer, outer_registry = obs.enable()
        try:
            with obs.observed() as (inner_tracer, inner_registry):
                assert inner_tracer is not outer_tracer
                obs.inc("inner.only")
            assert obs.is_enabled()
            assert obs.get_tracer() is outer_tracer
            assert obs.get_registry() is outer_registry
            assert "inner.only" not in outer_registry.names()
            assert inner_registry.counters()["inner.only"] == 1
        finally:
            obs.disable()

    def test_capture_spans_false_keeps_metrics_only(self, engine, workload):
        query = _queries(workload, limit=1)[0]
        with obs.observed(capture_spans=False) as (tracer, registry):
            engine.search(query, method="max")
        assert tracer.roots() == []
        assert registry.counters()["query.searches"] == 1


class TestPrunedQueryEvents:
    def test_prune_events_match_profile_counts(self, engine, workload):
        # Find a query that prunes, then check its span events agree
        # with the profile's ledger.
        for query in _queries(workload, num_keywords=1, k=1, limit=8):
            result, spans, _registry = engine.profile_search(query,
                                                             method="max")
            profile = result.profile
            if profile.users_pruned == 0:
                continue
            events = [span for root in spans for span in root.walk()
                      if span.name == "query.prune"]
            assert len(events) == profile.users_pruned
            sources = {event.attributes["source"] for event in events}
            assert sources == {profile.bound_source}
            return
        pytest.fail("no query in the workload sample triggered pruning")
