"""Tests for MapReduce index construction (Algorithms 2-3)."""

import pytest

from repro.core.model import Post
from repro.dfs.cluster import DFSCluster, paper_cluster
from repro.geo import geohash
from repro.index.builder import (
    IndexConfig,
    build_hybrid_index,
    rebuild_forward_index,
    run_index_job,
    write_partitions,
)
from repro.index.blocks import decode_any
from repro.index.postings import decode_postings
from repro.text import Analyzer


def post(sid, text, lat=43.65, lon=-79.38, uid=1):
    analyzer = Analyzer()
    return Post(sid=sid, uid=uid, location=(lat, lon),
                words=tuple(analyzer.analyze(text)), text=text)


TORONTO = (43.6532, -79.3832)
LONDON = (51.5074, -0.1278)


@pytest.fixture()
def posts():
    return [
        post(1, "marriott hotel downtown"),
        post(2, "the grand hotel hotel"),          # tf(hotel) = 2
        post(3, "best cafe in town"),
        post(4, "london hotel by the thames", lat=LONDON[0], lon=LONDON[1]),
    ]


class TestIndexJob:
    def test_postings_grouped_by_cell_and_term(self, posts):
        result = run_index_job(posts, Analyzer(), IndexConfig())
        pairs = dict(result.all_pairs())
        toronto_cell = geohash.encode(43.65, -79.38, 4)
        london_cell = geohash.encode(LONDON[0], LONDON[1], 4)
        assert pairs[(toronto_cell, "hotel")] == [(1, 1), (2, 2)]
        assert pairs[(london_cell, "hotel")] == [(4, 1)]
        assert pairs[(toronto_cell, "cafe")] == [(3, 1)]

    def test_postings_sorted_by_timestamp(self, posts):
        # Insert out of sid order; reducer must sort (Algorithm 3).
        shuffled = [posts[1], posts[0]]
        result = run_index_job(shuffled, Analyzer(), IndexConfig())
        toronto_cell = geohash.encode(43.65, -79.38, 4)
        postings = dict(result.all_pairs())[(toronto_cell, "hotel")]
        assert postings == sorted(postings)

    def test_stop_words_excluded(self, posts):
        result = run_index_job(posts, Analyzer(), IndexConfig())
        terms = {term for (_cell, term), _p in result.all_pairs()}
        assert "the" not in terms and "in" not in terms

    def test_geohash_length_respected(self, posts):
        for length in (1, 2, 3):
            result = run_index_job(posts, Analyzer(),
                                   IndexConfig(geohash_length=length))
            for (cell, _term), _postings in result.all_pairs():
                assert len(cell) == length

    def test_empty_posts_produce_nothing(self):
        silent = Post(sid=1, uid=1, location=(0.0, 0.0), words=(),
                      text="the and of")
        result = run_index_job([silent], Analyzer(), IndexConfig())
        assert result.all_pairs() == []


class TestWriteAndForward:
    def test_forward_entries_resolve_postings(self, posts):
        cluster = paper_cluster(block_size=256)
        forward, result = build_hybrid_index(posts, cluster)
        toronto_cell = geohash.encode(43.65, -79.38, 4)
        reference = forward.lookup(toronto_cell, "hotel")
        assert reference is not None
        reader = cluster.open(reference.path)
        data = reader.pread(reference.offset, reference.length)
        assert decode_any(data) == [(1, 1), (2, 2)]
        assert reference.count == 2

    def test_flat_format_writes_raw_entries(self, posts):
        cluster = paper_cluster(block_size=256)
        config = IndexConfig(postings_format="flat")
        forward, _result = build_hybrid_index(posts, cluster, config=config)
        toronto_cell = geohash.encode(43.65, -79.38, 4)
        reference = forward.lookup(toronto_cell, "hotel")
        reader = cluster.open(reference.path)
        data = reader.pread(reference.offset, reference.length)
        assert decode_postings(data) == [(1, 1), (2, 2)]
        assert reference.length == reference.count * 12

    def test_every_entry_readable(self, posts):
        cluster = paper_cluster(block_size=128)
        forward, _result = build_hybrid_index(posts, cluster)
        for (_cell, _term), reference in forward.items():
            reader = cluster.open(reference.path)
            data = reader.pread(reference.offset, reference.length)
            postings = decode_any(data)
            assert len(postings) == reference.count

    def test_part_files_created_per_partition(self, posts):
        cluster = paper_cluster()
        config = IndexConfig(num_reduce_tasks=3)
        build_hybrid_index(posts, cluster, config=config)
        files = cluster.list_files("/index")
        assert files == [f"/index/part-{i:05d}" for i in range(3)]

    def test_rebuild_forward_index_matches(self, posts):
        cluster = paper_cluster()
        config = IndexConfig()
        result = run_index_job(posts, Analyzer(), config)
        original = write_partitions(result, cluster, config)
        rebuilt = rebuild_forward_index(cluster, result, config)
        assert len(rebuilt) == len(original)
        for (cell, term), reference in original.items():
            assert rebuilt.lookup(cell, term) == reference

    def test_zorder_contiguity(self):
        """Postings of nearby cells with the same prefix land contiguously
        (same part file, adjacent offsets) thanks to the sorted shuffle."""
        near_posts = [
            post(sid, "pizza place", lat=43.65 + sid * 1e-4, lon=-79.38)
            for sid in range(1, 6)
        ]
        cluster = paper_cluster()
        config = IndexConfig(geohash_length=6, num_reduce_tasks=1)
        forward, _result = build_hybrid_index(near_posts, cluster,
                                              config=config)
        refs = sorted((r.offset, cell) for (cell, term), r in forward.items()
                      if term == "pizza")
        cells_in_offset_order = [cell for _offset, cell in refs]
        assert cells_in_offset_order == sorted(cells_in_offset_order)


class TestConfigValidation:
    def test_bad_geohash_length(self):
        with pytest.raises(ValueError):
            IndexConfig(geohash_length=0)
        with pytest.raises(ValueError):
            IndexConfig(geohash_length=99)
