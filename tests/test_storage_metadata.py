"""Tests for the tweet metadata database (Section IV-A)."""

import random

import pytest

from repro.storage.metadata import MetadataDatabase, MetadataError
from repro.storage.records import make_record


def build_db(records):
    db = MetadataDatabase.in_memory()
    db.bulk_load(records)
    return db


def chain_records():
    """sid 1 <- 2, 3; 2 <- 4; plus standalone 5."""
    return [
        make_record(1, 10, 43.0, -79.0),
        make_record(2, 11, 43.1, -79.1, ruid=10, rsid=1),
        make_record(3, 12, 43.2, -79.2, ruid=10, rsid=1),
        make_record(4, 13, 43.3, -79.3, ruid=11, rsid=2),
        make_record(5, 10, 44.0, -80.0),
    ]


class TestInsertAndLookup:
    def test_point_lookup(self):
        db = build_db(chain_records())
        record = db.get(3)
        assert record is not None and record.uid == 12

    def test_missing_sid(self):
        db = build_db(chain_records())
        assert db.get(999) is None
        assert db.user_of(999) is None

    def test_duplicate_sid_rejected(self):
        db = build_db(chain_records())
        with pytest.raises(MetadataError):
            db.insert(make_record(1, 99, 0.0, 0.0))

    def test_user_of(self):
        db = build_db(chain_records())
        assert db.user_of(4) == 13

    def test_size(self):
        db = build_db(chain_records())
        assert len(db) == 5


class TestReplyIndex:
    def test_replies_to(self):
        db = build_db(chain_records())
        children = db.replies_to(1)
        assert sorted(r.sid for r in children) == [2, 3]
        assert db.replies_to(2)[0].sid == 4
        assert db.replies_to(5) == []

    def test_reply_count(self):
        db = build_db(chain_records())
        assert db.reply_count(1) == 2
        assert db.reply_count(5) == 0

    def test_max_reply_fanout(self):
        db = build_db(chain_records())
        assert db.max_reply_fanout == 2
        # Adding more replies to sid 2 raises the maximum.
        for sid in range(6, 10):
            db.insert(make_record(sid, 20, 0.0, 0.0, ruid=11, rsid=2))
        assert db.max_reply_fanout == 5


class TestUserIndex:
    def test_posts_of_user(self):
        db = build_db(chain_records())
        sids = [r.sid for r in db.posts_of_user(10)]
        assert sids == [1, 5]
        assert db.post_count_of_user(10) == 2
        assert db.posts_of_user(999) == []

    def test_posts_sorted_by_sid(self):
        records = [make_record(sid, 7, 0.0, 0.0) for sid in (9, 3, 6, 1)]
        db = MetadataDatabase.in_memory()
        for record in sorted(records, key=lambda r: -r.sid):
            db.insert(record)
        assert [r.sid for r in db.posts_of_user(7)] == [1, 3, 6, 9]


class TestScans:
    def test_full_scan_order(self):
        db = build_db(chain_records())
        assert [r.sid for r in db.scan()] == [1, 2, 3, 4, 5]

    def test_sid_range(self):
        db = build_db(chain_records())
        assert [r.sid for r in db.sid_range(2, 4)] == [2, 3, 4]


class TestIOAccounting:
    def test_io_happens_on_thread_style_queries(self):
        rng = random.Random(0)
        records = [make_record(sid, sid % 13, rng.uniform(-80, 80),
                               rng.uniform(-170, 170),
                               rsid=rng.randrange(1, sid) if sid > 1
                               and rng.random() < 0.4 else None)
                   for sid in range(1, 1500)]
        db = MetadataDatabase.in_memory(pool_size=8)  # tiny pool: real churn
        db.bulk_load([r if r.rsid != 0 else r for r in records])
        before = db.stats.total_ios()
        for sid in range(1, 100):
            db.replies_to(sid)
        assert db.stats.total_ios() >= before  # lookups may hit cache or disk
        assert db.stats.get("rsid_index").cache_misses >= 0

    def test_components_tracked_separately(self):
        db = build_db(chain_records())
        report = db.stats.report()
        assert {"heap", "sid_index", "rsid_index", "uid_index"} <= set(report)


class TestPersistence:
    def test_reopen_directory(self, tmp_path):
        directory = str(tmp_path / "db")
        db = MetadataDatabase.open_directory(directory)
        db.bulk_load(chain_records())
        db.flush()

        reopened = MetadataDatabase.open_directory(directory)
        assert len(reopened) == 5
        assert reopened.user_of(4) == 13
        assert sorted(r.sid for r in reopened.replies_to(1)) == [2, 3]
        # The fanout cache is rebuilt on open.
        assert reopened.max_reply_fanout == 2
        reopened.check_invariants()


class TestInvariantsUnderLoad:
    def test_random_bulk(self):
        rng = random.Random(42)
        records = []
        for sid in range(1, 3000):
            rsid = rng.randrange(1, sid) if sid > 1 and rng.random() < 0.3 else None
            records.append(make_record(sid, sid % 101, 0.0, 0.0,
                                       rsid=rsid,
                                       ruid=(rsid % 101) if rsid else None))
        db = build_db(records)
        db.check_invariants()
        # Spot-check reply counts against a dict oracle.
        oracle = {}
        for record in records:
            if record.rsid != -1:
                oracle[record.rsid] = oracle.get(record.rsid, 0) + 1
        for sid in rng.sample(range(1, 3000), 50):
            assert db.reply_count(sid) == oracle.get(sid, 0)
        assert db.max_reply_fanout == max(oracle.values())
