"""Fixture tests for the project lint rules (RL001-RL007).

Every rule gets at least one violating and one clean snippet, plus
suppression-comment coverage.  RL001 and RL002 additionally reconstruct
the two historical bugs they exist to prevent: the shared mutable
``ScoringConfig`` default and the postings-cache aliasing in
``HybridIndex``.
"""

from pathlib import Path
from textwrap import dedent

import pytest

from repro import lint
from repro.cli import main
from repro.lint import META_RULE, lint_source

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A source path that looks like production code (several rules skip
#: test files on purpose).
SRC_PATH = "src/repro/fake/module.py"


def findings_for(source: str, rule_id: str, path: str = SRC_PATH):
    return [f for f in lint_source(dedent(source), path=path)
            if f.rule == rule_id]


# -- framework -------------------------------------------------------------

class TestFramework:
    def test_all_rules_registered(self):
        assert lint.rule_ids() == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
            "RL100", "RL101", "RL102", "RL103", "RL104", "RL105", "RL106"]

    def test_syntax_error_reports_meta_finding(self):
        findings = lint_source("def broken(:\n", path=SRC_PATH)
        assert [f.rule for f in findings] == [META_RULE]

    def test_baseline_key_omits_line_number(self):
        source = """
            from dataclasses import dataclass

            @dataclass
            class A:
                xs: list = []
        """
        (before,) = findings_for(source, "RL001")
        (after,) = findings_for("\n\n\n" + dedent(source), "RL001")
        assert before.line != after.line
        assert before.baseline_key() == after.baseline_key()

    def test_baseline_round_trip_forgives_findings(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text(dedent("""
            from dataclasses import dataclass

            @dataclass
            class A:
                xs: list = []
        """))
        report = lint.lint_paths([bad])
        assert not report.ok
        baseline_file = tmp_path / "baseline.json"
        lint.write_baseline(baseline_file, report.findings)
        baseline = lint.load_baseline(baseline_file)
        forgiven = lint.lint_paths([bad], baseline=baseline)
        assert forgiven.ok
        assert len(forgiven.baselined) == 1
        assert forgiven.stale_baseline == []


# -- suppressions ----------------------------------------------------------

class TestSuppressions:
    VIOLATION = """
        from dataclasses import dataclass

        @dataclass
        class A:
            xs: list = []{comment}
    """

    def test_trailing_comment_suppresses_own_line(self):
        source = self.VIOLATION.format(
            comment="  # repro-lint: disable=RL001 reason=fixture")
        assert findings_for(source, "RL001") == []

    def test_standalone_comment_suppresses_next_line(self):
        source = """
            from dataclasses import dataclass

            @dataclass
            class A:
                # repro-lint: disable=RL001 reason=fixture
                xs: list = []
        """
        assert findings_for(source, "RL001") == []

    def test_reason_is_mandatory(self):
        source = self.VIOLATION.format(
            comment="  # repro-lint: disable=RL001")
        findings = lint_source(dedent(source), path=SRC_PATH)
        rules = sorted(f.rule for f in findings)
        # The suppression is ignored AND itself reported.
        assert rules == [META_RULE, "RL001"]

    def test_meta_rule_is_never_suppressible(self):
        source = self.VIOLATION.format(
            comment="  # repro-lint: disable=RL000,RL001")
        findings = lint_source(dedent(source), path=SRC_PATH)
        assert META_RULE in {f.rule for f in findings}

    def test_disable_all_with_reason(self):
        source = self.VIOLATION.format(
            comment="  # repro-lint: disable=all reason=generated fixture")
        assert findings_for(source, "RL001") == []

    def test_comment_inside_string_literal_is_ignored(self):
        source = '''
            TEXT = "# repro-lint: disable=RL001 reason=not a comment"
        '''
        findings = lint_source(dedent(source), path=SRC_PATH)
        assert findings == []


# -- RL001: no mutable dataclass defaults ----------------------------------

class TestRL001:
    def test_flags_mutable_literal_default(self):
        source = """
            from dataclasses import dataclass

            @dataclass
            class Config:
                weights: dict = {}
        """
        (finding,) = findings_for(source, "RL001")
        assert finding.symbol == "Config.weights"

    def test_flags_field_with_mutable_default(self):
        source = """
            from dataclasses import dataclass, field

            @dataclass
            class Config:
                xs: list = field(default=[])
        """
        assert len(findings_for(source, "RL001")) == 1

    def test_historical_scoring_config_bug(self):
        # PR-1 fixed exactly this: EngineConfig shared one ScoringConfig
        # instance across every engine, so tuning one query's weights
        # changed all later queries.
        source = """
            from dataclasses import dataclass

            @dataclass
            class ScoringConfig:
                alpha: float = 0.5

            @dataclass
            class EngineConfig:
                scoring: ScoringConfig = ScoringConfig()
        """
        (finding,) = findings_for(source, "RL001")
        assert finding.symbol == "EngineConfig.scoring"
        assert "shared" in finding.message

    def test_clean_defaults_pass(self):
        source = """
            from dataclasses import dataclass, field
            from typing import ClassVar, Optional, Tuple

            @dataclass
            class Config:
                name: str = "x"
                weights: dict = field(default_factory=dict)
                pair: Tuple[int, int] = (1, 2)
                registry: ClassVar[dict] = {}
                other: Optional[int] = None
        """
        assert findings_for(source, "RL001") == []


# -- RL002: cache returns must copy ----------------------------------------

class TestRL002:
    def test_historical_postings_aliasing_bug(self):
        # PR-2 fixed exactly this: HybridIndex.postings returned the
        # cached list by reference; temporal clipping then truncated the
        # cache in place, corrupting every later hit for that key.
        source = """
            class HybridIndex:
                def __init__(self):
                    self._cache = {}
                    self._order = []

                def postings(self, key):
                    self._order.append(key)
                    return self._order
        """
        (finding,) = findings_for(source, "RL002")
        assert finding.symbol == "HybridIndex.postings"

    def test_clean_copying_return_passes(self):
        source = """
            class HybridIndex:
                def __init__(self):
                    self._cache = {}

                def snapshot(self):
                    return dict(self._cache)
        """
        assert findings_for(source, "RL002") == []

    def test_init_itself_is_exempt(self):
        source = """
            class Holder:
                def __init__(self):
                    self._xs = []
        """
        assert findings_for(source, "RL002") == []

    def test_immutable_rebind_is_accepted(self):
        # The block-postings caches hand out tuples by reference on
        # purpose: callers cannot mutate them, so no defensive copy.
        source = """
            class Holder:
                def __init__(self):
                    self._snapshot = []

                def rebuild(self, items):
                    self._snapshot = tuple(items)

                def snapshot(self):
                    return self._snapshot
        """
        assert findings_for(source, "RL002") == []

    def test_tuple_literal_rebind_is_accepted(self):
        source = """
            class Holder:
                def __init__(self):
                    self._pair = []

                def reset(self):
                    self._pair = ()

                def pair(self):
                    return self._pair
        """
        assert findings_for(source, "RL002") == []

    def test_mutable_assignment_outside_init_is_caught(self):
        # The scan covers every method now, not just __init__.
        source = """
            class Holder:
                def reset(self):
                    self._order = []

                def order(self):
                    return self._order
        """
        (finding,) = findings_for(source, "RL002")
        assert finding.symbol == "Holder.order"


# -- RL003: span balance ---------------------------------------------------

class TestRL003:
    def test_flags_dangling_span(self):
        source = """
            def work(tracer):
                span = tracer.span("work")
                span.__enter__()
        """
        assert len(findings_for(source, "RL003")) == 1

    def test_flags_start_span_always(self):
        source = """
            def work(anything):
                with anything.start_span("work"):
                    pass
        """
        (finding,) = findings_for(source, "RL003")
        assert "start_span" in finding.message

    def test_clean_with_and_return_pass(self):
        source = """
            from repro import obs

            def direct(tracer):
                with tracer.span("a"):
                    pass

            def assigned_then_with():
                scope = obs.trace("b", k=1)
                with scope as span:
                    span.set(x=1)

            def reexported(tracer):
                return tracer.span("c")
        """
        assert findings_for(source, "RL003") == []


# -- RL004: lock discipline ------------------------------------------------

class TestRL004:
    def test_flags_lock_free_access_to_guarded_attr(self):
        source = """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._items.append(x)

                def peek(self):
                    return self._items[-1]
        """
        (finding,) = findings_for(source, "RL004")
        assert finding.symbol == "Box.peek"

    def test_clean_when_every_access_is_locked(self):
        source = """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._items.append(x)

                def peek(self):
                    with self._lock:
                        return self._items[-1]
        """
        assert findings_for(source, "RL004") == []

    def test_init_writes_are_exempt(self):
        source = """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def reset(self):
                    with self._lock:
                        self._items = []
        """
        assert findings_for(source, "RL004") == []


# -- RL005: operator purity ------------------------------------------------

class TestRL005:
    def test_flags_missing_writes_declaration(self):
        source = """
            class BadOp(PhysicalOperator):
                def run(self, ctx):
                    ctx.cells = []
        """
        (finding,) = findings_for(source, "RL005",
                                  path="src/repro/query/fake_ops.py")
        assert "declare" in finding.message

    def test_flags_undeclared_context_write(self):
        source = """
            class SneakyOp(PhysicalOperator):
                writes = ("cells",)

                def run(self, ctx):
                    ctx.cells = []
                    ctx.users = []
        """
        (finding,) = findings_for(source, "RL005",
                                  path="src/repro/query/fake_ops.py")
        assert "ctx.users" in finding.message

    def test_clean_declared_writes_pass(self):
        source = """
            class GoodOp(PhysicalOperator):
                writes = ("cells", "candidates")

                def run(self, ctx):
                    ctx.cells = []
                    ctx.candidates.append(1)
                    ctx.stats.candidates = 0  # nested stats are not ctx fields
        """
        assert findings_for(source, "RL005",
                            path="src/repro/query/fake_ops.py") == []


# -- RL006: page-pin release -----------------------------------------------

class TestRL006:
    def test_flags_unreleased_pin(self):
        source = """
            class Heap:
                def first_byte(self, pool):
                    page = pool.get_page(0)
                    return page.data[0]
        """
        (finding,) = findings_for(source, "RL006",
                                  path="src/repro/storage/fake_heap.py")
        assert "unpin" in finding.message

    def test_clean_try_finally_and_return_pass(self):
        source = """
            class Heap:
                def first_byte(self, pool):
                    page = pool.get_page(0)
                    try:
                        return page.data[0]
                    finally:
                        pool.unpin(page)

                def handoff(self, pool):
                    return pool.allocate_page()
        """
        assert findings_for(source, "RL006",
                            path="src/repro/storage/fake_heap.py") == []

    def test_enter_is_exempt(self):
        source = """
            class Pinned:
                def __enter__(self):
                    self.page = self.pool.get_page(self.page_no)
                    return self.page
        """
        assert findings_for(source, "RL006",
                            path="src/repro/storage/fake_pager.py") == []


# -- RL007: no naked float equality ----------------------------------------

class TestRL007:
    def test_flags_float_eq_in_scoring_code(self):
        source = """
            def tied(score):
                return score == 0.5
        """
        (finding,) = findings_for(source, "RL007",
                                  path="src/repro/core/scoring_helpers.py")
        assert "isclose" in finding.message

    def test_int_compare_and_inequalities_pass(self):
        source = """
            def fine(score, bound):
                return score == 0 or score <= 0.5 or score > bound
        """
        assert findings_for(source, "RL007",
                            path="src/repro/core/scoring_helpers.py") == []

    def test_rule_is_scoped_to_scoring_paths(self):
        source = """
            def elsewhere(x):
                return x == 0.5
        """
        assert findings_for(source, "RL007",
                            path="src/repro/data/generator_fake.py") == []


# -- CLI integration -------------------------------------------------------

class TestCheckCommand:
    def test_full_tree_is_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["check", "--rules", "src", "tests"]) == 0

    def test_violating_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(dedent("""
            from dataclasses import dataclass

            @dataclass
            class A:
                xs: list = []
        """))
        assert main(["check", "--rules", str(bad), "--no-baseline"]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        import json

        good = tmp_path / "good.py"
        good.write_text("VALUE = 1\n")
        assert main(["check", "--rules", str(good), "--no-baseline",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"]["ok"] is True
        assert payload["rules"]["files_checked"] == 1

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in lint.rule_ids():
            assert rule_id in out

    def test_missing_path_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["check", "--rules", str(tmp_path / "nope"),
                  "--no-baseline"])
