"""Tests for the MapReduce engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce import (
    HashPartitioner,
    IdentityMapper,
    IdentityReducer,
    Job,
    MapReduceRuntime,
    Mapper,
    MaxReducer,
    Reducer,
    SumReducer,
    TokenCountMapper,
    run_job,
)
from repro.mapreduce.shuffle import MapSpill, group_by_key, merge_spills
from repro.text import Analyzer


class SplitWordsMapper(Mapper):
    def map(self, key, value, emit, context):
        for word in value.split():
            emit(word, 1)


def word_count_job(texts, **kwargs):
    return Job("wc", mapper_factory=SplitWordsMapper,
               reducer_factory=SumReducer,
               inputs=list(enumerate(texts)), **kwargs)


class TestWordCount:
    TEXTS = ["a b a", "b c", "a"]

    def test_basic(self):
        result = run_job(word_count_job(self.TEXTS))
        assert result.as_dict() == {"a": 3, "b": 2, "c": 1}

    def test_with_combiner(self):
        result = run_job(word_count_job(self.TEXTS,
                                        combiner_factory=SumReducer))
        assert result.as_dict() == {"a": 3, "b": 2, "c": 1}
        # Combiner must shrink (or match) shuffled record count.
        assert (result.counters.get("combine_output_records")
                <= result.counters.get("map_output_records"))

    def test_parallel_matches_sequential(self):
        sequential = run_job(word_count_job(self.TEXTS))
        parallel = MapReduceRuntime(workers=4).run(word_count_job(self.TEXTS))
        assert sequential.as_dict() == parallel.as_dict()

    @pytest.mark.parametrize("maps,reduces", [(1, 1), (2, 3), (7, 2), (10, 10)])
    def test_task_counts_irrelevant_to_result(self, maps, reduces):
        result = run_job(word_count_job(self.TEXTS, num_map_tasks=maps,
                                        num_reduce_tasks=reduces))
        assert result.as_dict() == {"a": 3, "b": 2, "c": 1}


class TestSortedOutput:
    def test_partition_outputs_key_sorted(self):
        texts = ["zeta alpha m m", "beta alpha zeta q"]
        result = run_job(word_count_job(texts, num_reduce_tasks=3))
        for partition in result.outputs:
            keys = [key for key, _v in partition]
            assert keys == sorted(keys)

    def test_all_pairs_globally_sorted(self):
        result = run_job(word_count_job(["d c b a"]))
        assert [k for k, _v in result.all_pairs()] == ["a", "b", "c", "d"]


class TestCounters:
    def test_standard_counters(self):
        result = run_job(word_count_job(["x y", "y z"]))
        counters = result.counters
        assert counters.get("map_input_records") == 2
        assert counters.get("map_output_records") == 4
        assert counters.get("reduce_input_groups") == 3
        assert counters.get("reduce_output_records") == 3
        assert counters.get("shuffle_bytes") > 0


class TestValidation:
    def test_bad_mapper_factory(self):
        job = Job("bad", mapper_factory=lambda: object(),
                  reducer_factory=SumReducer, inputs=[])
        with pytest.raises(TypeError):
            run_job(job)

    def test_bad_task_counts(self):
        job = word_count_job(["a"], num_map_tasks=0)
        with pytest.raises(ValueError):
            run_job(job)

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            MapReduceRuntime(workers=0)

    def test_empty_input(self):
        result = run_job(word_count_job([]))
        assert result.all_pairs() == []


class TestLibraryComponents:
    def test_identity_pipeline(self):
        job = Job("id", mapper_factory=IdentityMapper,
                  reducer_factory=IdentityReducer,
                  inputs=[("k1", "v1"), ("k2", "v2"), ("k1", "v3")])
        result = run_job(job)
        assert sorted(result.all_pairs()) == [
            ("k1", "v1"), ("k1", "v3"), ("k2", "v2")]

    def test_max_reducer(self):
        job = Job("max", mapper_factory=IdentityMapper,
                  reducer_factory=MaxReducer,
                  inputs=[("k", 3), ("k", 9), ("k", 1)])
        assert run_job(job).as_dict() == {"k": 9}

    def test_token_count_mapper_with_analyzer(self):
        analyzer = Analyzer()
        job = Job("tokens",
                  mapper_factory=lambda: TokenCountMapper(analyzer),
                  reducer_factory=SumReducer,
                  inputs=[(1, "the hotels near THE hotel")])
        assert run_job(job).as_dict() == {"hotel": 2, "near": 1}


class TestPartitioner:
    def test_deterministic(self):
        partitioner = HashPartitioner()
        assert (partitioner.partition(("6gxp", "hotel"), 8)
                == partitioner.partition(("6gxp", "hotel"), 8))

    def test_in_range(self):
        partitioner = HashPartitioner()
        for key in ["a", ("b", 1), 42, ("6gxp", "hotel")]:
            assert 0 <= partitioner.partition(key, 5) < 5

    @given(st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_spreads_keys(self, keys):
        partitioner = HashPartitioner()
        buckets = {partitioner.partition(key, 4) for key in set(keys)}
        if len(set(keys)) >= 20:
            assert len(buckets) >= 2  # not everything in one partition


class TestShuffleInternals:
    def test_spill_sorts(self):
        spill = MapSpill([("b", 2), ("a", 1), ("c", 3)])
        assert [k for k, _v in spill.pairs] == ["a", "b", "c"]

    def test_merge_spills_sorted(self):
        spills = [MapSpill([("a", 1), ("c", 3)]), MapSpill([("b", 2)])]
        assert [k for k, _v in merge_spills(spills)] == ["a", "b", "c"]

    def test_group_by_key(self):
        stream = iter([("a", 1), ("a", 2), ("b", 3)])
        groups = list(group_by_key(stream))
        assert groups == [("a", [1, 2]), ("b", [3])]

    def test_group_by_key_empty(self):
        assert list(group_by_key(iter([]))) == []

    def test_merge_stable_on_ties(self):
        spills = [MapSpill([("k", "first")]), MapSpill([("k", "second")])]
        values = [v for _k, v in merge_spills(spills)]
        assert values == ["first", "second"]

    @given(st.lists(st.lists(st.tuples(st.integers(0, 20), st.integers()),
                             max_size=30), max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_merge_is_total_and_sorted(self, raw_spills):
        spills = [MapSpill(list(pairs)) for pairs in raw_spills]
        merged = list(merge_spills(spills))
        assert len(merged) == sum(len(pairs) for pairs in raw_spills)
        keys = [k for k, _v in merged]
        assert keys == sorted(keys)


class TestDeterminism:
    @given(st.lists(st.text(alphabet="abcdef ", min_size=0, max_size=30),
                    max_size=20),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_result_independent_of_parallelism(self, texts, maps, reduces):
        job1 = word_count_job(texts, num_map_tasks=maps,
                              num_reduce_tasks=reduces)
        job2 = word_count_job(texts, num_map_tasks=1, num_reduce_tasks=1)
        assert run_job(job1).as_dict() == run_job(job2).as_dict()


class TestCountersThreadSafety:
    def test_concurrent_increments(self):
        import threading
        from repro.mapreduce.counters import Counters
        counters = Counters()

        def bump():
            for _ in range(2000):
                counters.increment("hits")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters.get("hits") == 16000

    def test_snapshot_isolated(self):
        from repro.mapreduce.counters import Counters
        counters = Counters()
        counters.increment("a", 3)
        snap = counters.snapshot()
        counters.increment("a")
        assert snap["a"] == 3

    def test_repr_sorted(self):
        from repro.mapreduce.counters import Counters
        counters = Counters()
        counters.increment("zz")
        counters.increment("aa")
        text = repr(counters)
        assert text.index("aa") < text.index("zz")


class TestInputSplits:
    def test_contiguous_splits(self):
        job = word_count_job([f"r{i}" for i in range(10)], num_map_tasks=3)
        splits = list(job.input_splits())
        flattened = [record for split in splits for record in split]
        assert flattened == list(enumerate(f"r{i}" for i in range(10)))
        assert len(splits) == 3

    def test_more_tasks_than_records(self):
        job = word_count_job(["only"], num_map_tasks=10)
        splits = [s for s in job.input_splits() if s]
        assert len(splits) == 1

    def test_empty_input_single_empty_split(self):
        job = word_count_job([], num_map_tasks=4)
        assert list(job.input_splits()) == [[]]
