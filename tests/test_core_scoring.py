"""Tests for the scoring functions (Definitions 4-11)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.scoring import (
    DEFAULT_CONFIG,
    ScoringConfig,
    distance_score,
    keyword_match_count,
    keyword_relevance,
    max_score,
    sum_score,
    thread_popularity,
    upper_bound_popularity,
    upper_bound_popularity_literal,
    upper_bound_user_score,
    user_distance_score,
    user_score,
)
from repro.geo.distance import haversine_km


class TestScoringConfig:
    def test_paper_defaults(self):
        assert DEFAULT_CONFIG.alpha == 0.5
        assert DEFAULT_CONFIG.keyword_normalizer == 40.0
        assert DEFAULT_CONFIG.epsilon == 0.1

    @pytest.mark.parametrize("kwargs", [
        dict(alpha=-0.1), dict(alpha=1.1),
        dict(keyword_normalizer=0.0), dict(epsilon=-1.0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ScoringConfig(**kwargs)


class TestThreadPopularity:
    def test_paper_figure2(self):
        """3*(1/2) + 4*(1/3) + 2*(1/4) = 10/3."""
        assert thread_popularity([1, 3, 4, 2]) == pytest.approx(10.0 / 3.0)

    def test_singleton_epsilon(self):
        assert thread_popularity([1], epsilon=0.1) == 0.1
        assert thread_popularity([], epsilon=0.3) == 0.3

    def test_two_levels(self):
        assert thread_popularity([1, 4]) == pytest.approx(2.0)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=2,
                    max_size=8))
    def test_monotone_in_level_sizes(self, sizes):
        sizes = [1] + sizes
        bigger = [1] + [s + 1 for s in sizes[1:]]
        assert thread_popularity(bigger) >= thread_popularity(sizes)


class TestDistanceScore:
    QUERY = (43.65, -79.38)

    def test_at_query_location(self):
        assert distance_score(self.QUERY, self.QUERY, 10.0) == 1.0

    def test_outside_radius_zero(self):
        far = (44.80, -79.38)  # > 100 km north
        assert distance_score(far, self.QUERY, 10.0) == 0.0

    def test_linear_decay(self):
        # A point at exactly half the radius scores 0.5.
        point = (self.QUERY[0] + 0.0449662, self.QUERY[1])  # ~5 km north
        d = haversine_km(self.QUERY, point)
        expected = (10.0 - d) / 10.0
        assert distance_score(point, self.QUERY, 10.0) == pytest.approx(expected)

    @given(st.floats(min_value=-0.5, max_value=0.5),
           st.floats(min_value=-0.5, max_value=0.5),
           st.floats(min_value=1.0, max_value=100.0))
    def test_range_is_unit_interval(self, dlat, dlon, radius):
        point = (self.QUERY[0] + dlat, self.QUERY[1] + dlon)
        score = distance_score(point, self.QUERY, radius)
        assert 0.0 <= score <= 1.0


class TestKeywordRelevance:
    def test_paper_bag_example(self):
        """Query "spicy restaurant", tweet with one "spicy" and two
        "restaurant": occurrence count is 3 (Definition 6)."""
        bag = {"spici": 1, "restaur": 2}
        assert keyword_match_count(bag, frozenset({"spici", "restaur"})) == 3

    def test_no_match(self):
        assert keyword_match_count({"cafe": 2}, frozenset({"hotel"})) == 0

    def test_relevance_formula(self):
        bag = {"hotel": 2}
        got = keyword_relevance(bag, frozenset({"hotel"}), popularity=4.0)
        assert got == pytest.approx((2 / 40.0) * 4.0)

    def test_relevance_may_exceed_one(self):
        bag = {"hotel": 10}
        got = keyword_relevance(bag, frozenset({"hotel"}), popularity=100.0)
        assert got > 1.0


class TestUserAggregates:
    def test_sum_and_max(self):
        values = [0.2, 0.9, 0.5]
        assert sum_score(values) == pytest.approx(1.6)
        assert max_score(values) == 0.9

    def test_empty(self):
        assert sum_score([]) == 0.0
        assert max_score([]) == 0.0

    def test_user_distance_average(self):
        query = (43.65, -79.38)
        locations = [query, (50.0, 0.0)]  # one perfect, one outside
        assert user_distance_score(locations, query, 10.0) == pytest.approx(0.5)

    def test_user_distance_empty(self):
        assert user_distance_score([], (0.0, 0.0), 10.0) == 0.0


class TestUserScore:
    def test_alpha_blend(self):
        config = ScoringConfig(alpha=0.3)
        assert user_score(1.0, 0.5, config) == pytest.approx(
            0.3 * 1.0 + 0.7 * 0.5)

    def test_alpha_extremes(self):
        assert user_score(0.8, 0.2, ScoringConfig(alpha=1.0)) == 0.8
        assert user_score(0.8, 0.2, ScoringConfig(alpha=0.0)) == 0.2


class TestUpperBounds:
    def test_compounding_bound(self):
        # depth 3, fanout 2: levels hold <= 2 and 4 -> 2/2 + 4/3.
        assert upper_bound_popularity(2, 3) == pytest.approx(1.0 + 4.0 / 3.0)

    def test_literal_bound(self):
        # t_m at every level: 2/2 + 2/3.
        assert upper_bound_popularity_literal(2, 3) == pytest.approx(
            1.0 + 2.0 / 3.0)

    def test_zero_fanout(self):
        assert upper_bound_popularity(0, 5) == 0.0
        assert upper_bound_popularity_literal(0, 5) == 0.0

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=2, max_value=6))
    def test_compounding_dominates_literal(self, fanout, depth):
        assert (upper_bound_popularity(fanout, depth)
                >= upper_bound_popularity_literal(fanout, depth))

    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=1,
                    max_size=4),
           st.integers(min_value=1, max_value=5))
    def test_bound_dominates_any_thread(self, child_counts, fanout):
        """Any thread whose per-node fanout is at most ``fanout`` has
        popularity below the compounding bound."""
        depth = len(child_counts) + 1
        sizes = [1]
        for count in child_counts:
            sizes.append(sizes[-1] * min(count, fanout))
            if sizes[-1] == 0:
                sizes.pop()
                break
        popularity = thread_popularity(sizes, epsilon=0.0)
        assert popularity <= upper_bound_popularity(fanout, depth) + 1e-9

    def test_upper_bound_user_score(self):
        config = ScoringConfig(alpha=0.5, keyword_normalizer=40.0)
        got = upper_bound_user_score(8.0, 2, config)
        assert got == pytest.approx(0.5 * (2 / 40.0) * 8.0 + 0.5)

    def test_upper_bound_user_score_dominates_actual(self):
        config = DEFAULT_CONFIG
        popularity = 3.0
        bound = upper_bound_user_score(popularity, 2, config)
        actual = user_score(
            keyword_relevance({"hotel": 2}, frozenset({"hotel"}), popularity,
                              config),
            0.95, config)
        assert bound >= actual
