"""Tests for the IR-tree baseline, including ranking agreement with the
hybrid-index engine (both implement identical TkLUS semantics)."""

import pytest

from repro.baselines.irtree import IRTree, IRTreeProcessor
from repro.core.model import Semantics
from repro.geo.distance import haversine_km


@pytest.fixture(scope="module")
def processor(dataset):
    return IRTreeProcessor(dataset)


class TestIRTreeStructure:
    def test_build_and_stats(self, dataset):
        tree = IRTree(max_entries=8).build(dataset.posts.values())
        stats = tree.stats()
        assert stats["points"] == len(dataset.posts)
        assert stats["nodes"] >= stats["leaves"] >= 1
        assert stats["distinct_terms_at_root"] > 0

    def test_query_before_build_rejected(self, workload):
        tree = IRTree()
        query = workload.bind(workload.specs(1)[0], radius_km=10.0)
        with pytest.raises(RuntimeError):
            list(tree.candidates(query))

    def test_root_terms_cover_all_words(self, dataset):
        tree = IRTree(max_entries=8).build(dataset.posts.values())
        every_word = set()
        for post in dataset.posts.values():
            every_word.update(post.words)
        assert tree.node_terms(tree._tree._root) == every_word


class TestCandidateRetrieval:
    def test_matches_scan_or(self, dataset, processor, workload):
        query = workload.bind(workload.specs(1)[0], radius_km=20.0)
        got = {post.sid for post, _m in
               processor.tree.candidates(query)}
        expected = {
            post.sid for post in dataset.posts.values()
            if query.keywords.intersection(post.words)
            and haversine_km(query.location, post.location) <= query.radius_km
        }
        assert got == expected

    def test_matches_scan_and(self, dataset, processor, workload):
        query = workload.bind(workload.specs(2)[0], radius_km=30.0,
                              semantics=Semantics.AND)
        got = {post.sid for post, _m in processor.tree.candidates(query)}
        expected = {
            post.sid for post in dataset.posts.values()
            if query.keywords <= set(post.words)
            and haversine_km(query.location, post.location) <= query.radius_km
        }
        assert got == expected

    def test_match_counts_bag_model(self, dataset, processor, workload):
        query = workload.bind(workload.specs(1)[1], radius_km=20.0)
        for post, match_count in processor.tree.candidates(query):
            bag = post.word_bag()
            assert match_count == sum(bag.get(kw, 0) for kw in query.keywords)
            assert match_count >= 1


class TestRankingAgreement:
    """The IR-tree baseline must produce the same rankings as the
    hybrid-index engine — same scoring, different access path."""

    @pytest.mark.parametrize("radius", [10.0, 30.0])
    def test_sum_agreement(self, engine, processor, workload, radius):
        for spec in workload.specs(1)[:5]:
            query = workload.bind(spec, radius_km=radius)
            a = engine.search_sum(query).users
            b = processor.search_sum(query).users
            assert [(u, pytest.approx(s)) for u, s in a] == b

    @pytest.mark.parametrize("radius", [10.0, 30.0])
    def test_max_agreement(self, engine, processor, workload, radius):
        for spec in workload.specs(1)[:5]:
            query = workload.bind(spec, radius_km=radius)
            a = engine.search_max(query).users
            b = processor.search_max(query).users
            assert [(u, pytest.approx(s)) for u, s in a] == b

    def test_and_semantics_agreement(self, engine, processor, workload):
        for spec in workload.specs(2)[:4]:
            query = workload.bind(spec, radius_km=25.0,
                                  semantics=Semantics.AND)
            a = engine.search_sum(query).users
            b = processor.search_sum(query).users
            assert [(u, pytest.approx(s)) for u, s in a] == b
