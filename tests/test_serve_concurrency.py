"""Concurrency regressions for the serving layer.

Two satellite guarantees of the serve work:

* the planner memo is safe under concurrent planning (double-checked
  locking: racing builders may each build, but exactly one plan object
  is ever published per spec);
* the snapshot pin is released on *every* execution exit path —
  success, queue-spent timeout, mid-plan cancellation, operator error —
  so compaction reclamation can never be blocked by a dead query
  (the RL103 discipline, asserted via ``pin_count``).
"""

import threading

import pytest

from repro.core.model import Semantics
from repro.data.generator import generate_corpus
from repro.data.queries import QueryWorkload
from repro.ingest import IngestConfig, IngestService
from repro.query.engine import TkLUSEngine
from repro.serve import (AdmissionConfig, QueryCancelled, QueryServer,
                         ServeConfig)

JOIN_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(num_users=60, num_root_tweets=300, seed=7)


@pytest.fixture(scope="module")
def queries(corpus):
    workload = QueryWorkload(corpus, seed=3)
    return workload.make_queries(2, 20.0, k=5, semantics=Semantics.OR,
                                 limit=8)


class TestPlannerMemoThreadSafety:
    def test_concurrent_planning_publishes_one_plan_per_spec(self, corpus,
                                                             queries):
        engine = TkLUSEngine.from_posts(corpus.posts)
        threads, rounds = 8, 50
        barrier = threading.Barrier(threads)
        seen = {}          # spec -> set of plan object ids
        lock = threading.Lock()
        errors = []

        def hammer():
            try:
                barrier.wait()
                for round_index in range(rounds):
                    for method in ("max", "sum"):
                        query = queries[round_index % len(queries)]
                        plan = engine.processor(method).plan_for(query)
                        with lock:
                            seen.setdefault(plan.spec, set()).add(id(plan))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(JOIN_TIMEOUT)
        assert not any(thread.is_alive() for thread in pool)
        assert errors == []
        assert seen
        # Exactly one published plan object per memo key: losers of the
        # build race must return the winner, never their own build.
        for spec, identities in seen.items():
            assert len(identities) == 1, spec


class _TrippingToken:
    """Duck-typed cancel token that trips after N operator boundaries —
    deterministic mid-plan cancellation."""

    def __init__(self, after_checks):
        self.after_checks = after_checks
        self.checks = 0
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def check(self):
        self.checks += 1
        if self.cancelled or self.checks > self.after_checks:
            raise QueryCancelled("tripped mid-plan")


class TestSnapshotPinRelease:
    @pytest.fixture()
    def live_setup(self, corpus, tmp_path):
        service = IngestService(
            str(tmp_path / "svc"),
            ingest_config=IngestConfig(flush_posts=100))
        for post in corpus.posts[:200]:
            service.append(post)
        service.flush()
        engine = service.build_query_engine()
        yield service, engine
        service.close()

    def _pin_count(self, service):
        return service.live.generations.pin_count()

    def test_success_path_releases_pin(self, live_setup, queries):
        service, engine = live_setup
        config = ServeConfig(workers=1, cache_enabled=False)
        with QueryServer(engine, live=service.live, config=config) as server:
            for query in queries:
                server.execute(query)
        assert self._pin_count(service) == 0

    def test_mid_plan_cancellation_releases_pin(self, live_setup, queries):
        service, engine = live_setup
        server = QueryServer(engine, live=service.live,
                             config=ServeConfig(workers=1))
        for after_checks in range(0, 4):
            token = _TrippingToken(after_checks)
            with pytest.raises(QueryCancelled):
                server._execute_query(queries[0], "max", token)
            assert self._pin_count(service) == 0
        # The aborted execution must not have poisoned the cache: a
        # served result after cancellations equals a fresh execution.
        with server:
            served = server.execute(queries[0])
        assert served == engine.search(queries[0], "max").users

    def test_mixed_outcomes_under_load_release_all_pins(self, live_setup,
                                                        queries):
        service, engine = live_setup
        config = ServeConfig(
            workers=4,
            admission=AdmissionConfig(max_queue_depth=256))
        with QueryServer(engine, live=service.live, config=config) as server:
            tickets = []
            for round_index in range(10):
                for index, query in enumerate(queries):
                    # Mix queue-spent deadlines (guaranteed timeout)
                    # with unbounded tickets; cancel a third of them.
                    timeout = -1.0 if (round_index + index) % 3 == 0 else None
                    ticket = server.submit(query, timeout_seconds=timeout)
                    if index % 3 == 2:
                        ticket.cancel()
                    tickets.append(ticket)
            for ticket in tickets:
                assert ticket.wait(JOIN_TIMEOUT)
        outcomes = {ticket.outcome for ticket in tickets}
        assert "ok" in outcomes
        assert "timeout" in outcomes
        assert self._pin_count(service) == 0

    def test_pins_released_under_concurrent_ingest(self, live_setup,
                                                   corpus, queries):
        service, engine = live_setup
        stop = threading.Event()
        errors = []

        def ingester():
            try:
                index = 200
                posts = corpus.posts
                while not stop.is_set() and index < len(posts):
                    service.append(posts[index])
                    index += 1
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=ingester)
        thread.start()
        try:
            with QueryServer(engine, live=service.live,
                             config=ServeConfig(workers=4)) as server:
                for _ in range(5):
                    for query in queries:
                        served = server.execute(query)
                        assert isinstance(served, list)
        finally:
            stop.set()
            thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive()
        assert errors == []
        assert self._pin_count(service) == 0
