"""Tests for heap files and record serialisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.heapfile import HeapFile
from repro.storage.pager import BufferPool, FilePager, MemoryPager
from repro.storage.records import NO_REF, RECORD_SIZE, TweetRecord, make_record


def make_heap(capacity=16):
    return HeapFile(BufferPool(MemoryPager(), capacity=capacity))


class TestHeapFile:
    def test_insert_read(self):
        heap = make_heap()
        rid = heap.insert(b"first record")
        assert heap.read(rid) == b"first record"

    def test_many_records_span_pages(self):
        heap = make_heap()
        payload = b"y" * 500
        rids = [heap.insert(payload) for _ in range(50)]
        assert heap.page_count > 1
        for rid in rids:
            assert heap.read(rid) == payload

    def test_delete(self):
        heap = make_heap()
        rid = heap.insert(b"gone")
        heap.delete(rid)
        with pytest.raises(KeyError):
            heap.read(rid)

    def test_scan_order_is_insertion_order(self):
        heap = make_heap()
        expected = []
        for i in range(200):
            record = f"rec-{i:04d}".encode()
            heap.insert(record)
            expected.append(record)
        got = [data for _rid, data in heap.scan()]
        assert got == expected

    def test_scan_skips_deleted(self):
        heap = make_heap()
        rids = [heap.insert(f"r{i}".encode()) for i in range(10)]
        heap.delete(rids[4])
        got = [data for _rid, data in heap.scan()]
        assert b"r4" not in got
        assert len(got) == 9

    def test_persistence(self, tmp_path):
        path = str(tmp_path / "heap.pages")
        pool = BufferPool(FilePager(path), capacity=8)
        heap = HeapFile(pool)
        rid = heap.insert(b"durable")
        pool.close()

        pool2 = BufferPool(FilePager(path), capacity=8)
        heap2 = HeapFile(pool2)
        assert heap2.read(rid) == b"durable"
        # Appends continue on the reopened tail page.
        rid2 = heap2.insert(b"more")
        assert heap2.read(rid2) == b"more"
        pool2.close()

    @given(st.lists(st.binary(min_size=1, max_size=300), min_size=1,
                    max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_random(self, blobs):
        heap = make_heap()
        rids = [heap.insert(blob) for blob in blobs]
        for rid, blob in zip(rids, blobs):
            assert heap.read(rid) == blob


class TestTweetRecord:
    def test_pack_unpack(self):
        record = TweetRecord(sid=12345, uid=67, lat=43.65, lon=-79.38,
                             ruid=99, rsid=11111)
        assert TweetRecord.unpack(record.pack()) == record

    def test_fixed_size(self):
        record = make_record(1, 2, 3.0, 4.0)
        assert len(record.pack()) == RECORD_SIZE

    def test_make_record_maps_none(self):
        record = make_record(1, 2, 3.0, 4.0, ruid=None, rsid=None)
        assert record.ruid == NO_REF and record.rsid == NO_REF
        assert not record.is_reply_or_forward

    def test_is_reply_or_forward(self):
        assert make_record(2, 1, 0.0, 0.0, ruid=5, rsid=1).is_reply_or_forward

    def test_replace_location(self):
        record = make_record(1, 2, 3.0, 4.0)
        moved = record.replace_location(10.0, 20.0)
        assert (moved.lat, moved.lon) == (10.0, 20.0)
        assert moved.sid == record.sid

    @given(st.integers(min_value=0, max_value=2**62),
           st.integers(min_value=0, max_value=2**31),
           st.floats(min_value=-90, max_value=90, allow_nan=False),
           st.floats(min_value=-180, max_value=180, allow_nan=False))
    def test_roundtrip_random(self, sid, uid, lat, lon):
        record = make_record(sid, uid, lat, lon)
        back = TweetRecord.unpack(record.pack())
        assert back.sid == sid and back.uid == uid
        assert back.lat == lat and back.lon == lon
