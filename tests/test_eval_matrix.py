"""Tests for the scalar-vs-batched benchmark matrix harness."""

import copy
import json

import pytest

from repro import columnar
from repro.eval.matrix import (
    MATRIX_SCHEMA_VERSION,
    MatrixConfig,
    cell_id,
    diff_matrix,
    list_cells,
    render_matrix,
    run_matrix,
    validate_matrix_report,
    write_report,
)


@pytest.fixture(scope="module")
def smoke_payload():
    return run_matrix(MatrixConfig.smoke())


class TestGrid:
    def test_cell_id_format(self):
        assert cell_id("large", 20, 40.0, 2) == "large-k20-r40-kw2"
        assert cell_id("small", 5, 12.5, 1) == "small-k5-r12.5-kw1"

    def test_default_grid_shape(self):
        config = MatrixConfig()
        cells = list_cells(config)
        expected = (len(config.datasets) * len(config.k_values)
                    * len(config.radii_km) * len(config.keyword_counts))
        assert len(cells) == expected
        assert len(set(cells)) == expected

    def test_smoke_grid_is_small(self):
        assert len(list_cells(MatrixConfig.smoke())) <= 4


class TestRunMatrix:
    def test_smoke_run_is_valid_and_parity_holds(self, smoke_payload):
        assert validate_matrix_report(smoke_payload) == []
        assert smoke_payload["schema_version"] == MATRIX_SCHEMA_VERSION
        assert smoke_payload["backend"] == columnar.active_backend()
        assert smoke_payload["results_identical"] is True
        assert all(cell["results_identical"]
                   for cell in smoke_payload["cells"])
        assert len(smoke_payload["cells"]) \
            == len(list_cells(MatrixConfig.smoke()))

    def test_largest_cell_anchors_the_grid(self, smoke_payload):
        cells = {cell["id"]: cell for cell in smoke_payload["cells"]}
        largest = max(cells.values(), key=lambda cell: (
            cell["num_posts"], cell["keywords"], cell["k"],
            cell["radius_km"]))
        assert smoke_payload["largest_cell"]["id"] == largest["id"]
        assert smoke_payload["largest_cell"]["speedup"] \
            == largest["speedup"]

    def test_only_cell_runs_one_cell(self):
        config = MatrixConfig.smoke()
        target = list_cells(config)[0]
        payload = run_matrix(config, only_cell=target)
        assert [cell["id"] for cell in payload["cells"]] == [target]
        assert validate_matrix_report(payload) == []

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError, match="unknown cell"):
            run_matrix(MatrixConfig.smoke(), only_cell="nope-k1-r1-kw1")

    def test_report_round_trips_through_json(self, smoke_payload,
                                             tmp_path):
        path = tmp_path / "BENCH_matrix.json"
        write_report(smoke_payload, str(path))
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded == smoke_payload
        assert validate_matrix_report(loaded) == []


class TestValidate:
    def test_rejects_non_object(self):
        assert validate_matrix_report([]) \
            == ["report must be an object, got list"]

    def test_rejects_wrong_version(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["schema_version"] = 999
        assert any("schema_version" in p
                   for p in validate_matrix_report(payload))

    def test_rejects_duplicate_cell_ids(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["cells"].append(copy.deepcopy(payload["cells"][0]))
        assert any("duplicates" in p
                   for p in validate_matrix_report(payload))

    def test_rejects_unknown_largest_cell(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["largest_cell"]["id"] = "missing-k1-r1-kw1"
        assert any("largest_cell.id" in p
                   for p in validate_matrix_report(payload))

    def test_rejects_missing_leg_metrics(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        del payload["cells"][0]["batched"]
        assert any("batched missing" in p
                   for p in validate_matrix_report(payload))


class TestRenderAndDiff:
    def test_render_lists_every_cell(self, smoke_payload):
        text = render_matrix(smoke_payload)
        for cell in smoke_payload["cells"]:
            assert cell["id"] in text
        assert "overall parity: ok" in text

    def test_diff_identical_reports_clean(self, smoke_payload):
        assert diff_matrix(smoke_payload, smoke_payload) == []

    def test_diff_flags_speedup_collapse(self, smoke_payload):
        slower = copy.deepcopy(smoke_payload)
        for cell in slower["cells"]:
            if cell["speedup"] is not None:
                cell["speedup"] = cell["speedup"] / 10.0
        problems = diff_matrix(slower, smoke_payload)
        assert problems and all("below" in p for p in problems)

    def test_diff_flags_missing_committed_cell(self, smoke_payload):
        committed = copy.deepcopy(smoke_payload)
        committed["cells"] = committed["cells"][1:]
        problems = diff_matrix(smoke_payload, committed)
        assert any("not in committed report" in p for p in problems)

    def test_diff_flags_parity_break(self, smoke_payload):
        broken = copy.deepcopy(smoke_payload)
        broken["results_identical"] = False
        assert "current run: results_identical is false" \
            in diff_matrix(broken, smoke_payload)
