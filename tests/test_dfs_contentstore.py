"""Tests for the DFS tweet-content store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import Post
from repro.dfs.cluster import DFSCluster, paper_cluster
from repro.dfs.contentstore import ContentStore, ContentStoreError


def post(sid, uid=1, text=None):
    return Post(sid=sid, uid=uid, location=(43.0, -79.0), words=(),
                text=text if text is not None else f"tweet number {sid}")


class TestWriteBatch:
    def test_roundtrip(self):
        store = ContentStore(paper_cluster())
        store.write_batch([post(1), post(5), post(9)])
        assert store.get(5) == (1, "tweet number 5")
        assert store.get(1) == (1, "tweet number 1")
        assert store.get(9) == (1, "tweet number 9")
        assert len(store) == 3

    def test_missing_sid(self):
        store = ContentStore(paper_cluster())
        store.write_batch([post(1), post(5)])
        assert store.get(3) is None
        assert store.get(100) is None

    def test_unsorted_batch_rejected(self):
        store = ContentStore(paper_cluster())
        with pytest.raises(ContentStoreError):
            store.write_batch([post(5), post(1)])

    def test_duplicate_sid_rejected(self):
        store = ContentStore(paper_cluster())
        with pytest.raises(ContentStoreError):
            store.write_batch([post(5), post(5)])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            ContentStore(paper_cluster()).write_batch([])

    def test_multiple_runs(self):
        store = ContentStore(paper_cluster())
        store.write_batch([post(1), post(2)])
        store.write_batch([post(10), post(20)])
        assert store.run_count == 2
        assert store.get(2) == (1, "tweet number 2")
        assert store.get(20) == (1, "tweet number 20")

    def test_unicode_content(self):
        store = ContentStore(paper_cluster())
        store.write_batch([post(1, text="café in 서울 ☕")])
        assert store.get(1) == (1, "café in 서울 ☕")

    def test_uid_stored(self):
        store = ContentStore(paper_cluster())
        store.write_batch([post(7, uid=42)])
        assert store.get(7) == (42, "tweet number 7")


class TestSparseIndex:
    def test_stride_one_indexes_everything(self):
        store = ContentStore(paper_cluster(), index_stride=1)
        store.write_batch([post(i) for i in range(1, 50)])
        for sid in (1, 25, 49):
            assert store.get(sid) is not None

    def test_large_stride_still_finds_all(self):
        store = ContentStore(paper_cluster(), index_stride=100)
        store.write_batch([post(i) for i in range(1, 200)])
        for sid in (1, 99, 100, 101, 199):
            assert store.get(sid) == (1, f"tweet number {sid}")

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            ContentStore(paper_cluster(), index_stride=0)

    @given(st.sets(st.integers(min_value=1, max_value=10**6),
                   min_size=1, max_size=120),
           st.integers(min_value=1, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_random_sids_roundtrip(self, sids, stride):
        store = ContentStore(DFSCluster(num_datanodes=2, block_size=256),
                             index_stride=stride)
        ordered = sorted(sids)
        store.write_batch([post(sid) for sid in ordered])
        for sid in ordered:
            assert store.get(sid) == (1, f"tweet number {sid}")
        # Absent sids between existing ones resolve to None.
        probe = ordered[0] + 1
        if probe not in sids:
            assert store.get(probe) is None


class TestCollectAndResultLines:
    def test_collect(self):
        store = ContentStore(paper_cluster())
        store.write_batch([post(1), post(2), post(3)])
        got = store.collect([1, 3, 99])
        assert set(got) == {1, 3}

    def test_result_lines_format(self):
        store = ContentStore(paper_cluster())
        store.write_batch([post(1, uid=7, text="best hotel downtown")])
        lines = store.result_lines([(7, 1), (8, 99)])
        assert lines[0] == "(u7, best hotel downtown)"
        assert "content missing" in lines[1]

    def test_total_bytes_positive(self):
        store = ContentStore(paper_cluster())
        store.write_batch([post(1)])
        assert store.total_bytes() > 0


class TestEndToEndWithEngine:
    def test_user_study_lines_from_query(self, corpus, engine, workload):
        """The full Figure 3 flow: query -> ranking -> collect contents
        -> formatted result lines."""
        store = ContentStore(engine.index.cluster, prefix="/study-contents")
        store.write_batch(corpus.posts)
        query = workload.bind(workload.specs(1)[0], radius_km=20.0, k=5)
        result = engine.search_max(query)
        if not result.users:
            pytest.skip("query matched nothing")
        by_uid = {}
        for post_obj in corpus.posts:
            if query.keywords.intersection(post_obj.words):
                by_uid.setdefault(post_obj.uid, post_obj.sid)
        pairs = [(uid, by_uid[uid]) for uid, _s in result.users
                 if uid in by_uid]
        lines = store.result_lines(pairs)
        assert len(lines) == len(pairs)
        assert all(line.startswith("(u") for line in lines)
