"""MemIndex / LiveIndex tests: builder parity, watermarks, and the
answer-parity acceptance criterion (live reads == monolithic build,
sum and max, with and without pruning)."""

import pytest

from repro.data.generator import generate_corpus
from repro.index.builder import IndexConfig
from repro.index.hybrid import HybridIndex
from repro.ingest.live import LiveIndex
from repro.ingest.memindex import MemIndex
from repro.query.engine import TkLUSEngine
from repro.text.analyzer import Analyzer


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(num_users=120, num_root_tweets=500, seed=29)


@pytest.fixture(scope="module")
def mem_over_corpus(corpus):
    mem = MemIndex(IndexConfig(), Analyzer())
    for lsn, post in enumerate(corpus.posts, start=1):
        mem.add(post, lsn)
    return mem


class TestMemIndex:
    def test_mirrors_builder_postings(self, corpus, mem_over_corpus):
        """Every (cell, term) list must byte-match the MapReduce-built
        index — the property that makes flush answer-preserving."""
        hybrid = HybridIndex.build(corpus.posts)
        checked = 0
        for (cell, term), _ref in hybrid.forward.items():
            expected = tuple(hybrid.postings(cell, term))
            assert tuple(mem_over_corpus.postings(cell, term)) == expected
            checked += 1
            if checked >= 300:
                break
        assert checked > 50
        # And nothing extra: the memtable indexes exactly the same keys.
        assert len(mem_over_corpus.keys()) == len(hybrid.forward)

    def test_watermark_filters_late_postings(self):
        mem = MemIndex(IndexConfig(), Analyzer())
        post = generate_corpus(num_users=5, num_root_tweets=10,
                               seed=1).posts[0]
        cell_term = None
        mem.add(post, 1)
        for key in mem.keys():
            cell_term = key
            break
        assert cell_term is not None
        cell, term = cell_term
        full = mem.postings(cell, term)
        assert mem.postings(cell, term, max_lsn=0) == ()
        assert mem.postings(cell, term, max_lsn=1) == full

    def test_lsn_must_increase(self, corpus):
        mem = MemIndex(IndexConfig(), Analyzer())
        mem.add(corpus.posts[0], 5)
        with pytest.raises(ValueError):
            mem.add(corpus.posts[1], 5)

    def test_sealed_memtable_rejects_writes(self, corpus):
        mem = MemIndex(IndexConfig(), Analyzer())
        mem.add(corpus.posts[0], 1)
        mem.seal()
        with pytest.raises(RuntimeError):
            mem.add(corpus.posts[1], 2)
        assert mem.posts()  # reads keep working

    def test_posts_in_lsn_order(self, corpus, mem_over_corpus):
        assert mem_over_corpus.posts() == list(corpus.posts)
        assert mem_over_corpus.post_count == len(corpus.posts)

    def test_size_accounting_grows(self, corpus):
        mem = MemIndex(IndexConfig(), Analyzer())
        assert mem.size_bytes() == 0
        mem.add(corpus.posts[0], 1)
        assert mem.size_bytes() > 0


def _live_engine_over(corpus, split):
    """A LiveIndex with one flushed generation (posts[:split]) and the
    rest live in a memtable, wired into a TkLUSEngine."""
    config = IndexConfig()
    analyzer = Analyzer()
    generation = HybridIndex.build(corpus.posts[:split], analyzer=analyzer,
                                   config=config)
    mem = MemIndex(config, analyzer)
    for lsn, post in enumerate(corpus.posts[split:], start=1):
        mem.add(post, lsn)
    live = LiveIndex(config, analyzer, [mem], [generation])
    engine = TkLUSEngine.from_posts(corpus.posts)
    engine.index = live
    engine._sum.index = live
    engine._max.index = live
    return engine, live, mem


class TestLiveIndexParity:
    """Acceptance criterion: memtable + generation reads are
    answer-identical to a monolithic build over the whole stream."""

    @pytest.fixture(scope="class")
    def engines(self, corpus):
        split = len(corpus.posts) * 2 // 3
        live_engine, live, mem = _live_engine_over(corpus, split)
        mono_engine = TkLUSEngine.from_posts(corpus.posts)
        return live_engine, mono_engine, live, mem

    @pytest.mark.parametrize("keywords,radius", [
        (["hotel"], 15.0),
        (["restaurant", "pizza"], 30.0),
        (["museum", "park", "cafe"], 25.0),
    ])
    def test_sum_and_max_parity(self, engines, keywords, radius):
        live_engine, mono_engine, _live, _mem = engines
        query = mono_engine.make_query((43.6532, -79.3832), radius,
                                       keywords, k=10)
        assert (live_engine.search_sum(query).users
                == mono_engine.search_sum(query).users)
        assert (live_engine.search_max(query).users
                == mono_engine.search_max(query).users)

    def test_max_parity_without_pruning(self, engines):
        live_engine, mono_engine, _live, _mem = engines
        query = mono_engine.make_query((43.6532, -79.3832), 20.0,
                                       ["hotel", "restaurant"], k=10)
        live_raw = live_engine.processor("max", use_pruning=False)
        mono_raw = mono_engine.processor("max", use_pruning=False)
        assert live_raw.search(query).users == mono_raw.search(query).users

    def test_postings_merge_across_components(self, engines, corpus):
        _live_engine, mono_engine, live, _mem = engines
        mono = mono_engine.index
        checked = 0
        for (cell, term), _ref in mono.forward.items():
            expected = tuple(mono.postings(cell, term))
            assert tuple(live.postings(cell, term)) == expected
            checked += 1
            if checked >= 200:
                break
        assert checked > 50


class TestSnapshotConsistency:
    def test_appends_invisible_behind_watermark(self, corpus):
        """A pinned snapshot's answers do not change when appends land
        after it — the stable-view guarantee mid-plan reads rely on."""
        split = len(corpus.posts) // 2
        engine, live, mem = _live_engine_over(corpus, split)
        late = corpus.posts[-1]

        snapshot = live.snapshot()
        cells = snapshot.cover(late.location, 25.0)
        terms = list(late.words[:2]) or ["hotel"]
        before = snapshot.postings_for_query(cells, terms)

        bumped = type(late)(
            sid=max(post.sid for post in corpus.posts) + 1, uid=late.uid,
            location=late.location, words=late.words, text=late.text,
            ruid=None, rsid=None, kind=None)
        mem.add(bumped, mem.max_lsn + 1)

        after = snapshot.postings_for_query(cells, terms)
        assert after == before  # snapshot pinned below the new LSN
        unpinned = live.postings_for_query(cells, terms)
        assert unpinned != before  # the live view does see it

    def test_watermark_is_max_memtable_lsn(self, corpus):
        config = IndexConfig()
        analyzer = Analyzer()
        mem = MemIndex(config, analyzer)
        live = LiveIndex(config, analyzer, [mem], [])
        assert live.watermark() == 0
        mem.add(corpus.posts[0], 9)
        assert live.watermark() == 9

    def test_stats_aggregate_across_components(self, corpus):
        split = len(corpus.posts) // 2
        _engine, live, _mem = _live_engine_over(corpus, split)
        cells = live.cover((43.6532, -79.3832), 25.0)
        live.postings_for_query(cells, ["hotel", "restaurant"])
        total = live.stats
        assert total.postings_fetches == live.postings_fetch_count()
        assert total.postings_fetches > 0
