"""Property-based integration tests of the full retrieval pipeline:
random mini-corpora, indexed and queried, checked against brute force."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import Post, Semantics, TkLUSQuery
from repro.dfs.cluster import paper_cluster
from repro.geo.distance import haversine_km
from repro.index.builder import IndexConfig
from repro.index.hybrid import HybridIndex
from repro.query.semantics import candidates_from_postings

TERMS = ["hotel", "cafe", "pizza", "game", "mall"]

mini_posts = st.lists(
    st.tuples(
        st.floats(min_value=42.0, max_value=45.0, allow_nan=False),   # lat
        st.floats(min_value=-81.0, max_value=-78.0, allow_nan=False),  # lon
        st.lists(st.sampled_from(TERMS), min_size=1, max_size=4),
    ),
    min_size=1, max_size=40,
)


def build_posts(raw):
    posts = []
    for sid, (lat, lon, words) in enumerate(raw, start=1):
        posts.append(Post(sid=sid, uid=sid % 7 + 1, location=(lat, lon),
                          words=tuple(words), text=" ".join(words)))
    return posts


class TestRetrievalCompleteness:
    """The index + cover + semantics pipeline must retrieve exactly the
    tweets a full scan would."""

    @given(mini_posts,
           st.sampled_from(TERMS),
           st.floats(min_value=5.0, max_value=120.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_or_single_keyword(self, raw, term, radius):
        posts = build_posts(raw)
        index = HybridIndex.build(posts, paper_cluster(),
                                  config=IndexConfig(num_reduce_tasks=2))
        center = (43.65, -79.38)
        cells = index.cover(center, radius)
        per_cell = index.postings_for_query(cells, [term])
        candidates = candidates_from_postings(per_cell, [term], Semantics.OR)
        retrieved = set()
        by_sid = {post.sid: post for post in posts}
        for candidate in candidates:
            post = by_sid[candidate.tid]
            if haversine_km(center, post.location) <= radius:
                retrieved.add(candidate.tid)
        expected = {
            post.sid for post in posts
            if term in post.words
            and haversine_km(center, post.location) <= radius
        }
        assert retrieved == expected

    @given(mini_posts,
           st.floats(min_value=10.0, max_value=150.0, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_and_two_keywords(self, raw, radius):
        posts = build_posts(raw)
        index = HybridIndex.build(posts, paper_cluster(),
                                  config=IndexConfig(num_reduce_tasks=3))
        center = (43.65, -79.38)
        terms = ["hotel", "cafe"]
        cells = index.cover(center, radius)
        per_cell = index.postings_for_query(cells, terms)
        candidates = candidates_from_postings(per_cell, terms, Semantics.AND)
        by_sid = {post.sid: post for post in posts}
        retrieved = {
            c.tid for c in candidates
            if haversine_km(center, by_sid[c.tid].location) <= radius
        }
        expected = {
            post.sid for post in posts
            if {"hotel", "cafe"} <= set(post.words)
            and haversine_km(center, post.location) <= radius
        }
        assert retrieved == expected

    @given(mini_posts, st.sampled_from(TERMS))
    @settings(max_examples=20, deadline=None)
    def test_match_counts_are_term_frequencies(self, raw, term):
        posts = build_posts(raw)
        index = HybridIndex.build(posts, paper_cluster())
        center = (43.65, -79.38)
        cells = index.cover(center, 500.0)  # cover everything
        per_cell = index.postings_for_query(cells, [term])
        candidates = candidates_from_postings(per_cell, [term], Semantics.OR)
        by_sid = {post.sid: post for post in posts}
        for candidate in candidates:
            expected_tf = list(by_sid[candidate.tid].words).count(term)
            assert candidate.match_count == expected_tf


class TestEndToEndScoresFinite:
    @given(mini_posts,
           st.sampled_from(TERMS),
           st.floats(min_value=5.0, max_value=100.0, allow_nan=False),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_engine_never_produces_nan_or_negative(self, raw, term, radius, k):
        from repro.query.engine import TkLUSEngine
        posts = build_posts(raw)
        engine = TkLUSEngine.from_posts(posts, precompute_bounds=False)
        query = TkLUSQuery(location=(43.65, -79.38), radius_km=radius,
                           keywords=frozenset({term}), k=k)
        for method in ("sum", "max"):
            result = engine.search(query, method=method)
            assert len(result.users) <= k
            for _uid, score in result.users:
                assert math.isfinite(score)
                assert score >= 0.0
