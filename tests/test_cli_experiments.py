"""Smoke test for the CLI experiments subcommand (tiny scale)."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("flag", [["--small"]])
def test_experiments_subcommand_smoke(flag, capsys, monkeypatch):
    """Run the CLI experiments path against a micro context by patching
    the context factory — the full --small run is exercised by
    examples/run_all_experiments.py and the benchmark suite."""
    from repro.eval.experiments import ExperimentContext

    original = ExperimentContext.create

    def tiny(cls=None, **kwargs):
        return original(num_users=120, num_root_tweets=400,
                        queries_per_point=2)

    monkeypatch.setattr(ExperimentContext, "create",
                        classmethod(lambda cls, **kw: tiny()))
    assert main(["experiments", *flag]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "Fig 13" in out
    assert "6gxp" in out  # Table IV reproduced
