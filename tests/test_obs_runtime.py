"""Tests for the continuous telemetry runtime (sampling, retention,
slow-query capture, SLO accounting, facade wiring)."""

import io
import json

import pytest

from repro import obs
from repro.data.generator import generate_corpus
from repro.obs.runtime import (
    RuntimeConfig,
    RuntimeRegistry,
    RuntimeTelemetry,
    SlowQueryLog,
    SLOTracker,
    TokenBucket,
    TraceSampler,
)
from repro.obs.timeseries import TimeSeriesCounter, TimeSeriesHistogram
from repro.query.engine import TkLUSEngine


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.disable()


class TestRuntimeConfig:
    def test_validates_span_mode(self):
        with pytest.raises(ValueError):
            RuntimeConfig(span_mode="verbose")

    def test_validates_sample_rate(self):
        with pytest.raises(ValueError):
            RuntimeConfig(sample_rate=1.5)

    def test_validates_rings(self):
        with pytest.raises(ValueError):
            RuntimeConfig(trace_ring=0)


class TestTraceSampler:
    def test_seeded_sampler_is_deterministic(self):
        one = TraceSampler(0.5, seed=7)
        two = TraceSampler(0.5, seed=7)
        first = [one.sample() for _ in range(40)]
        second = [two.sample() for _ in range(40)]
        assert first == second
        assert any(first) and not all(first)

    def test_extremes_short_circuit(self):
        assert all(TraceSampler(1.0).sample() for _ in range(10))
        assert not any(TraceSampler(0.0).sample() for _ in range(10))


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_min=60.0, burst=3, clock=clock)
        assert [bucket.allow() for _ in range(4)] == [True, True, True,
                                                     False]
        clock.advance(1.0)           # 60/min = 1 token per second
        assert bucket.allow() is True
        assert bucket.allow() is False

    def test_capacity_is_capped(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_min=60.0, burst=2, clock=clock)
        clock.advance(3600.0)        # long idle must not bank 3600 tokens
        results = [bucket.allow() for _ in range(3)]
        assert results == [True, True, False]


class TestSlowQueryLog:
    def test_fast_queries_do_not_build_records(self):
        log = SlowQueryLog(threshold_ms=100.0, ring_size=4)
        built = []
        assert log.consider(5.0, lambda: built.append(1) or {}) is False
        assert built == []
        assert log.records() == []

    def test_ring_is_bounded(self):
        log = SlowQueryLog(threshold_ms=0.0, ring_size=3)
        for i in range(10):
            log.consider(1.0, lambda i=i: {"i": i})
        records = log.records()
        assert [r["i"] for r in records] == [7, 8, 9]
        assert log.status()["captured"] == 10
        assert log.status()["retained"] == 3

    def test_sink_is_rate_limited(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_ms=0.0, ring_size=64, path=str(path),
                           rate_per_min=60.0, burst=2, clock=clock)
        for i in range(5):
            log.consider(1.0, lambda i=i: {"i": i})
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2       # burst capacity
        assert log.status()["sink_dropped"] == 3
        # The in-memory ring kept everything regardless.
        assert len(log.records()) == 5


class TestSLOTracker:
    def test_budget_accounting(self):
        clock = FakeClock()
        slo = SLOTracker(latency_ms=100.0, target=0.9, clock=clock)
        for _ in range(9):
            assert slo.record(0.01) is False
        assert slo.record(0.5) is True
        status = slo.status()
        assert status["total"] == 10
        assert status["violations"] == 1
        assert status["compliance"] == pytest.approx(0.9)
        assert status["budget_allowed"] == pytest.approx(1.0)
        assert status["budget_remaining"] == pytest.approx(0.0)
        # 10% recent violations against a 10% allowance: burn rate 1.
        assert status["burn_rate"] == pytest.approx(1.0)

    def test_empty_tracker(self):
        status = SLOTracker(latency_ms=100.0, target=0.99).status()
        assert status["compliance"] == 1.0
        assert status["burn_rate"] == 0.0


class TestRuntimeRegistry:
    def test_mints_time_series_instruments(self):
        registry = RuntimeRegistry()
        assert isinstance(registry.counter("c"), TimeSeriesCounter)
        assert isinstance(registry.histogram("h"), TimeSeriesHistogram)
        # Same instance on re-request (double-checked fast path).
        assert registry.counter("c") is registry.counter("c")


class TestRetention:
    def test_slow_traces_always_retained(self):
        runtime = RuntimeTelemetry(RuntimeConfig(
            sample_rate=0.0, slow_trace_ms=0.0, seed=1))
        with runtime.trace_context("query.search", {}):
            pass
        assert len(runtime.slow_traces()) == 1
        assert runtime.registry.counters()["obs.traces.slow"] == 1

    def test_unsampled_fast_traces_dropped_but_counted(self):
        runtime = RuntimeTelemetry(RuntimeConfig(
            sample_rate=0.0, slow_trace_ms=1e9, seed=1))
        for _ in range(5):
            with runtime.trace_context("query.search", {}):
                pass
        assert runtime.sampled_traces() == []
        assert runtime.slow_traces() == []
        assert runtime.registry.counters()["obs.traces.finished"] == 5

    def test_rings_are_bounded(self):
        runtime = RuntimeTelemetry(RuntimeConfig(
            sample_rate=1.0, slow_trace_ms=1e9, trace_ring=4, seed=1))
        for _ in range(20):
            with runtime.trace_context("query.search", {}):
                pass
        assert len(runtime.sampled_traces()) == 4

    def test_sampled_mode_suppresses_span_construction(self):
        runtime = RuntimeTelemetry(RuntimeConfig(
            span_mode="sampled", sample_rate=0.0, seed=1))
        with runtime.trace_context("query.search", {}) as root:
            # Children of an unsampled root must not become roots.
            with runtime.trace_context("query.cover", {}) as child:
                pass
            assert child is obs.NULL_SPAN
        assert root is obs.NULL_SPAN
        assert runtime.registry.counters().get("obs.traces.finished", 0) == 0

    def test_sampled_mode_builds_sampled_roots(self):
        runtime = RuntimeTelemetry(RuntimeConfig(
            span_mode="sampled", sample_rate=1.0, slow_trace_ms=1e9,
            seed=1))
        with runtime.trace_context("query.search", {}) as span:
            pass
        assert span is not obs.NULL_SPAN
        assert len(runtime.sampled_traces()) == 1

    def test_none_mode_builds_nothing(self):
        runtime = RuntimeTelemetry(RuntimeConfig(span_mode="none"))
        with runtime.trace_context("query.search", {}) as span:
            pass
        assert span is obs.NULL_SPAN
        assert runtime.event_enabled() is False


class TestRecordQuery:
    def test_slo_and_violation_counter(self):
        runtime = RuntimeTelemetry(RuntimeConfig(
            slo_latency_ms=100.0, slow_query_ms=1e9))
        runtime.record_query(None, None, elapsed_seconds=0.5)
        runtime.record_query(None, None, elapsed_seconds=0.01)
        counters = runtime.registry.counters()
        assert counters["query.slo_violations"] == 1
        assert runtime.slo.status()["violations"] == 1


class TestFacadeWiring:
    def test_enable_runtime_installs_and_disable_restores(self):
        assert obs.get_runtime() is None
        runtime = obs.enable_runtime()
        assert obs.get_runtime() is runtime
        assert obs.is_enabled()
        obs.disable_runtime()
        assert obs.get_runtime() is None
        assert not obs.is_enabled()

    def test_enable_runtime_rejects_both_arguments(self):
        with pytest.raises(ValueError):
            obs.enable_runtime(RuntimeConfig(),
                               runtime=RuntimeTelemetry())

    def test_observed_restores_runtime(self):
        runtime = obs.enable_runtime()
        with obs.observed():
            assert obs.get_runtime() is None
        assert obs.get_runtime() is runtime
        obs.disable_runtime()

    def test_facade_metrics_flow_into_time_series(self):
        obs.enable_runtime()
        obs.inc("some.counter", 3)
        obs.observe("some.latency", 0.25)
        runtime = obs.get_runtime()
        counter = runtime.registry.find_counter("some.counter")
        assert isinstance(counter, TimeSeriesCounter)
        assert counter.value == 3
        assert counter.rate(60.0) > 0
        obs.disable_runtime()


class TestSlowQueryEndToEnd:
    """A deliberately slow query (threshold 0) must capture plan,
    profile funnel, and span tree — the PR's acceptance scenario."""

    @pytest.fixture(scope="class")
    def setup(self):
        corpus = generate_corpus(num_users=60, num_root_tweets=300, seed=11)
        engine = TkLUSEngine.from_posts(corpus.posts)
        return engine, corpus.posts[0].location

    def _query(self, setup):
        engine, location = setup
        return engine.make_query(location, 20.0, ["hotel"], k=5)

    def test_capture_contains_plan_profile_and_spans(self, setup):
        engine, _ = setup
        runtime = obs.enable_runtime(RuntimeConfig(slow_query_ms=0.0))
        try:
            engine.search_max(self._query(setup))
        finally:
            obs.disable_runtime()
        records = runtime.slow_queries.records()
        assert len(records) == 1
        record = records[0]
        assert record["elapsed_ms"] > 0
        plan = record["plan"]
        assert plan["label"]
        assert plan["operators"]
        assert plan["spec"]["method"] in ("sum", "max")
        profile = record["profile"]
        assert profile["candidates_examined"] == (
            profile["users_pruned_global"] + profile["users_pruned_hot"]
            + profile["users_scored"])
        spans = record["spans"]
        assert spans[0]["name"] == "query.search"
        assert any(s["parent_id"] == spans[0]["span_id"] for s in spans[1:])
        # The record is JSON-serialisable as the sink requires.
        json.dumps(record, default=str)
        assert runtime.registry.counters()["query.slow_captured"] == 1

    def test_fast_threshold_captures_nothing(self, setup):
        engine, _ = setup
        runtime = obs.enable_runtime(RuntimeConfig(slow_query_ms=1e9))
        try:
            engine.search_max(self._query(setup))
        finally:
            obs.disable_runtime()
        assert runtime.slow_queries.records() == []
        assert runtime.slo.status()["total"] == 1


class TestReporting:
    def test_status_shape(self):
        runtime = RuntimeTelemetry(RuntimeConfig())
        status = runtime.status()
        assert set(status) == {"uptime_seconds", "span_mode", "sample_rate",
                               "traces", "slo", "slow_queries"}
        assert status["span_mode"] == "all"

    def test_prometheus_text_includes_slo_gauges(self):
        runtime = RuntimeTelemetry(RuntimeConfig())
        runtime.record_query(None, None, 0.01)
        text = runtime.prometheus_text()
        assert "repro_slo_compliance 1" in text
        assert "repro_slo_burn_rate" in text

    def test_dump_jsonl_round_trips(self):
        runtime = RuntimeTelemetry(RuntimeConfig())
        runtime.registry.counter("a").inc(2)
        runtime.registry.histogram("b").observe(0.5)
        handle = io.StringIO()
        count = runtime.dump_jsonl(handle)
        lines = handle.getvalue().strip().splitlines()
        assert count == len(lines)
        records = [json.loads(line) for line in lines]
        by_name = {(r["type"], r["name"]): r for r in records}
        assert by_name[("counter", "a")]["value"] == 2
        assert by_name[("histogram", "b")]["summary"]["count"] == 1
        assert "windows" in by_name[("counter", "a")]
