"""Tests for the Zipf vocabulary and keyword constants."""

import random

import pytest

from repro.data.vocabulary import (
    EXTRA_MEANINGFUL_KEYWORDS,
    FILLER_WORDS,
    MODIFIER_WORDS,
    TABLE2_KEYWORDS,
    ZipfVocabulary,
)


class TestConstants:
    def test_table2_matches_paper(self):
        assert TABLE2_KEYWORDS == [
            "restaurant", "game", "cafe", "shop", "hotel",
            "club", "coffee", "film", "pizza", "mall",
        ]

    def test_no_overlap_between_pools(self):
        pools = [TABLE2_KEYWORDS, EXTRA_MEANINGFUL_KEYWORDS, MODIFIER_WORDS]
        for i, a in enumerate(pools):
            for b in pools[i + 1:]:
                assert not set(a) & set(b)

    def test_extra_keywords_count(self):
        # 10 + 20 = the paper's 30 meaningful keywords.
        assert len(EXTRA_MEANINGFUL_KEYWORDS) == 20

    def test_filler_nonempty_and_unique(self):
        assert len(FILLER_WORDS) == len(set(FILLER_WORDS))
        assert len(FILLER_WORDS) > 50


class TestZipfVocabulary:
    def test_hot_keywords_lead_ranks(self):
        vocabulary = ZipfVocabulary()
        assert vocabulary.words[:10] == TABLE2_KEYWORDS

    def test_custom_word_list(self):
        vocabulary = ZipfVocabulary(words=["a", "b", "c"])
        rng = random.Random(0)
        assert set(vocabulary.sample_many(rng, 100)) <= {"a", "b", "c"}

    def test_exponent_controls_skew(self):
        rng_flat = random.Random(1)
        rng_steep = random.Random(1)
        flat = ZipfVocabulary(exponent=0.1)
        steep = ZipfVocabulary(exponent=2.0)

        def head_share(vocabulary, rng):
            draws = vocabulary.sample_many(rng, 5000)
            return sum(1 for word in draws
                       if word in TABLE2_KEYWORDS) / len(draws)

        assert head_share(steep, rng_steep) > head_share(flat, rng_flat)

    def test_sampling_deterministic_per_seed(self):
        vocabulary = ZipfVocabulary()
        a = vocabulary.sample_many(random.Random(9), 50)
        b = vocabulary.sample_many(random.Random(9), 50)
        assert a == b

    def test_every_word_reachable(self):
        vocabulary = ZipfVocabulary(words=["x", "y"])
        draws = set(vocabulary.sample_many(random.Random(2), 500))
        assert draws == {"x", "y"}
