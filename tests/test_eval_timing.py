"""Tests for timing utilities and result/stat value objects."""

import time

import pytest

from repro.eval.timing import Stopwatch, TimingResult, time_callable
from repro.query.results import QueryResult, QueryStats


class TestTimeCallable:
    def test_repeats(self):
        calls = []
        result = time_callable(lambda: calls.append(1), repeats=5)
        assert len(calls) == 5
        assert len(result.samples) == 5

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_aggregates(self):
        result = TimingResult(samples=[1.0, 2.0, 3.0])
        assert result.mean == pytest.approx(2.0)
        assert result.median == 2.0
        assert result.minimum == 1.0
        assert result.maximum == 3.0
        assert result.total == 6.0

    def test_measures_real_time(self):
        result = time_callable(lambda: time.sleep(0.01), repeats=2)
        assert result.minimum >= 0.009


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.005)
        first = watch.elapsed
        with watch:
            time.sleep(0.005)
        assert watch.elapsed > first

    def test_reentrant_nesting(self):
        # Nested start/stop pairs are allowed; only the outermost pair
        # accrues into elapsed (inner intervals are already covered).
        watch = Stopwatch()
        watch.start()
        watch.start()
        assert watch.depth == 2
        time.sleep(0.005)
        inner = watch.stop()
        assert inner > 0.0
        assert watch.elapsed == 0.0  # still inside the outer interval
        outer = watch.stop()
        assert watch.depth == 0
        assert outer >= inner
        assert watch.elapsed == pytest.approx(outer)

    def test_nested_context_managers(self):
        watch = Stopwatch()
        with watch:
            with watch:
                time.sleep(0.002)
        assert watch.elapsed >= 0.002
        assert not watch.running

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_stop_returns_delta(self):
        watch = Stopwatch()
        watch.start()
        delta = watch.stop()
        assert delta >= 0.0
        assert watch.elapsed == delta


class TestQueryStats:
    def test_prune_rate(self):
        stats = QueryStats(threads_built=6, threads_pruned=4)
        assert stats.prune_rate == pytest.approx(0.4)

    def test_prune_rate_no_work(self):
        assert QueryStats().prune_rate == 0.0


class TestQueryResult:
    def test_ranking_and_len(self):
        result = QueryResult(users=[(3, 0.9), (1, 0.5)])
        assert result.ranking() == [3, 1]
        assert len(result) == 2
