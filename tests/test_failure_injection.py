"""Failure-injection tests: node deaths, corrupted data, tiny caches,
crashing user code."""

import pytest

from repro.data.generator import generate_corpus
from repro.dfs.cluster import DFSCluster
from repro.dfs.datanode import DataNodeError
from repro.index.builder import IndexConfig
from repro.mapreduce import Job, Mapper, SumReducer, run_job
from repro.query.engine import EngineConfig, TkLUSEngine

TORONTO = (43.6532, -79.3832)


@pytest.fixture(scope="module")
def small_posts():
    return generate_corpus(num_users=100, num_root_tweets=400, seed=17).posts


class TestDFSFailover:
    def build(self, posts, replication=3):
        cluster = DFSCluster(num_datanodes=3, replication=replication)
        engine = TkLUSEngine.from_posts(posts, cluster=cluster,
                                        precompute_bounds=False)
        return cluster, engine

    def test_queries_survive_single_node_death(self, small_posts):
        cluster, engine = self.build(small_posts)
        query = engine.make_query(TORONTO, 20.0, ["restaurant"], k=5)
        before = engine.search_sum(query).users
        cluster.datanode("dn0").kill()
        after = engine.search_sum(query).users
        assert after == before

    def test_queries_survive_two_node_deaths(self, small_posts):
        cluster, engine = self.build(small_posts)
        query = engine.make_query(TORONTO, 20.0, ["restaurant"], k=5)
        before = engine.search_sum(query).users
        cluster.datanode("dn0").kill()
        cluster.datanode("dn1").kill()
        assert engine.search_sum(query).users == before

    def test_total_outage_raises(self, small_posts):
        cluster, engine = self.build(small_posts)
        query = engine.make_query(TORONTO, 20.0, ["restaurant"], k=5)
        for node in cluster.datanodes:
            node.kill()
        with pytest.raises(DataNodeError):
            engine.search_sum(query)

    def test_recovery_after_revival(self, small_posts):
        cluster, engine = self.build(small_posts)
        query = engine.make_query(TORONTO, 20.0, ["restaurant"], k=5)
        before = engine.search_sum(query).users
        for node in cluster.datanodes:
            node.kill()
        for node in cluster.datanodes:
            node.revive()
        assert engine.search_sum(query).users == before

    def test_unreplicated_cluster_fragile(self, small_posts):
        cluster, engine = self.build(small_posts, replication=1)
        query = engine.make_query(TORONTO, 20.0, ["restaurant"], k=5)
        result = engine.search_sum(query)
        if not result.users:
            pytest.skip("query matched nothing; pick a denser keyword")
        cluster.datanode("dn0").kill()
        cluster.datanode("dn1").kill()
        cluster.datanode("dn2").kill()
        with pytest.raises(DataNodeError):
            engine.search_sum(query)


class TestTinyBufferPool:
    def test_correct_with_minimal_pool(self, small_posts):
        """A pool far smaller than the working set must still produce
        identical results — just with more physical I/O."""
        roomy = TkLUSEngine.from_posts(
            small_posts, config=EngineConfig(pool_size=512),
            precompute_bounds=False)
        cramped = TkLUSEngine.from_posts(
            small_posts, config=EngineConfig(pool_size=2),
            precompute_bounds=False)
        for keywords in (["restaurant"], ["hotel"], ["game"]):
            query_a = roomy.make_query(TORONTO, 25.0, keywords, k=10)
            query_b = cramped.make_query(TORONTO, 25.0, keywords, k=10)
            assert (roomy.search_sum(query_a).users
                    == cramped.search_sum(query_b).users)
        cramped_stats = cramped.database.stats
        roomy_stats = roomy.database.stats
        assert (cramped_stats.get("sid_index").cache_misses
                >= roomy_stats.get("sid_index").cache_misses)


class TestMapReduceFailures:
    class ExplodingMapper(Mapper):
        def map(self, key, value, emit, context):
            if value == "boom":
                raise RuntimeError("mapper exploded")
            emit(value, 1)

    def test_mapper_exception_propagates_sequential(self):
        job = Job("explode", mapper_factory=self.ExplodingMapper,
                  reducer_factory=SumReducer,
                  inputs=[(1, "fine"), (2, "boom")])
        with pytest.raises(RuntimeError, match="mapper exploded"):
            run_job(job)

    def test_mapper_exception_propagates_parallel(self):
        job = Job("explode", mapper_factory=self.ExplodingMapper,
                  reducer_factory=SumReducer,
                  inputs=[(i, "boom" if i == 7 else "x") for i in range(10)],
                  num_map_tasks=4)
        with pytest.raises(RuntimeError, match="mapper exploded"):
            run_job(job, workers=4)


class TestCorruptedIndex:
    def test_truncated_part_file_detected(self, small_posts, tmp_path):
        """A part file that lost bytes after save is caught on load or on
        the first postings fetch — never silently mis-decoded."""
        import os
        from repro.query.persistence import save_engine, load_engine

        engine = TkLUSEngine.from_posts(small_posts, precompute_bounds=False)
        directory = str(tmp_path / "corrupt")
        save_engine(engine, directory)
        # Truncate a part file by a non-multiple of the entry size.
        parts_dir = os.path.join(directory, "inverted")
        victim = sorted(os.listdir(parts_dir))[0]
        path = os.path.join(parts_dir, victim)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:-5])

        loaded = load_engine(directory)
        # Find an entry whose postings live at the truncated tail of the
        # victim part file and fetch it: decode must reject the short read
        # (postings bytes are fixed 12-byte entries).
        victim_path = f"/index/{victim}"
        tail_entry = max(
            ((cell, term, ref) for (cell, term), ref in loaded.index.forward.items()
             if ref.path == victim_path),
            key=lambda item: item[2].offset + item[2].length)
        cell, term, _ref = tail_entry
        with pytest.raises(ValueError):
            loaded.index.postings(cell, term)
