"""Tests for cross-platform federated search."""

import pytest

from repro.data.generator import generate_corpus
from repro.query.engine import TkLUSEngine
from repro.query.federation import (
    FederatedEngine,
    FederatedUser,
    _min_max_normalise,
)

TORONTO = (43.6532, -79.3832)


@pytest.fixture(scope="module")
def federation():
    twitter = TkLUSEngine.from_posts(
        generate_corpus(num_users=150, num_root_tweets=600, seed=1).posts,
        precompute_bounds=False)
    weibo = TkLUSEngine.from_posts(
        generate_corpus(num_users=150, num_root_tweets=600, seed=2).posts,
        precompute_bounds=False)
    return FederatedEngine({"twitter": twitter, "weibo": weibo})


class TestNormalisation:
    def test_min_max(self):
        assert _min_max_normalise([2.0, 4.0, 3.0]) == [0.0, 1.0, 0.5]

    def test_constant_list(self):
        assert _min_max_normalise([5.0, 5.0]) == [1.0, 1.0]

    def test_empty(self):
        assert _min_max_normalise([]) == []


class TestConstruction:
    def test_empty_federation_rejected(self):
        with pytest.raises(ValueError):
            FederatedEngine({})

    def test_unknown_weight_rejected(self, federation):
        with pytest.raises(ValueError):
            FederatedEngine(dict(federation.platforms),
                            platform_weights={"myspace": 1.0})

    def test_duplicate_platform_rejected(self, federation):
        with pytest.raises(ValueError):
            federation.add_platform("twitter", None)  # type: ignore[arg-type]

    def test_bad_weight_rejected(self, federation):
        with pytest.raises(ValueError):
            FederatedEngine(dict(federation.platforms),
                            platform_weights={"twitter": 0.0})


class TestSearch:
    def make_query(self, federation, **kwargs):
        engine = federation.platforms["twitter"]
        defaults = dict(radius_km=25.0, keywords=["restaurant"], k=10)
        defaults.update(kwargs)
        return engine.make_query(TORONTO, **defaults)

    def test_merges_across_platforms(self, federation):
        query = self.make_query(federation)
        result = federation.search(query)
        platforms = {user.platform for user in result.users}
        assert platforms <= {"twitter", "weibo"}
        assert len(platforms) == 2  # both corpora have Toronto users
        assert len(result.users) <= query.k

    def test_scores_descending(self, federation):
        result = federation.search(self.make_query(federation))
        scores = [user.score for user in result.users]
        assert scores == sorted(scores, reverse=True)

    def test_per_platform_stats(self, federation):
        result = federation.search(self.make_query(federation))
        assert set(result.per_platform_stats) == {"twitter", "weibo"}
        for stats in result.per_platform_stats.values():
            assert stats.cells_covered > 0

    def test_platform_weights_bias_merge(self, federation):
        query = self.make_query(federation)
        biased = FederatedEngine(dict(federation.platforms),
                                 platform_weights={"weibo": 100.0,
                                                   "twitter": 0.001})
        result = biased.search(query)
        weibo_users = [u for u in result.users if u.platform == "weibo"]
        # With overwhelming weight, weibo fills the head of the ranking.
        head = result.users[:len(weibo_users)]
        assert all(user.platform == "weibo" for user in head)

    def test_unnormalised_uses_raw_scores(self, federation):
        query = self.make_query(federation, k=5)
        raw = FederatedEngine(dict(federation.platforms), normalise=False)
        result = raw.search(query)
        # Raw scores must equal what each platform reports.
        for user in result.users:
            local = federation.platforms[user.platform].search_max(
                federation.platforms[user.platform].make_query(
                    TORONTO, 25.0, ["restaurant"], k=5))
            local_scores = dict(local.users)
            if user.uid in local_scores:
                assert user.score == pytest.approx(local_scores[user.uid])

    def test_sum_method_supported(self, federation):
        result = federation.search(self.make_query(federation), method="sum")
        assert isinstance(result.users, list)

    def test_ranking_pairs(self, federation):
        result = federation.search(self.make_query(federation))
        for platform, uid in result.ranking():
            assert platform in {"twitter", "weibo"}
            assert isinstance(uid, int)


class TestFederatedUser:
    def test_value_object(self):
        user = FederatedUser("twitter", 42, 0.5)
        assert user.platform == "twitter"
        with pytest.raises(AttributeError):
            user.score = 1.0  # type: ignore[misc]
