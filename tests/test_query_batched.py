"""End-to-end parity of the batched (columnar) query pipeline.

The contract under test: with ``ScoringConfig(kernels="batched")`` the
max- and sum-ranking processors must return results *bitwise identical*
to the scalar pipeline — same uids, same score bits, same pruning
ledger — on both columnar backends.  Speed is the matrix bench's
problem; this file only cares that the fast path cannot change an
answer.
"""

from dataclasses import replace

import pytest

from repro import columnar
from repro.core.model import Semantics
from repro.core.scoring import ScoringConfig
from repro.core.temporal import TemporalSpec, TimeWindow
from repro.query.max_ranking import MaxScoreProcessor
from repro.query.pipeline import (
    BatchCandidateFormOp,
    BatchRankOp,
    BatchTopKOp,
    FusedRadiusScoreOp,
    Planner,
)
from repro.query.sum_ranking import SumScoreProcessor

BACKENDS = ["python"] + (["numpy"] if columnar.have_numpy() else [])


@pytest.fixture(scope="module")
def processors(engine):
    batched = replace(engine.config.scoring, kernels="batched")
    return {
        ("max", "scalar"): engine.processor("max"),
        ("sum", "scalar"): engine.processor("sum"),
        ("max", "batched"): MaxScoreProcessor(
            engine.index, engine.database, engine.threads, engine.bounds,
            batched, engine.metric),
        ("sum", "batched"): SumScoreProcessor(
            engine.index, engine.database, engine.threads,
            batched, engine.metric),
    }


def queries_under_test(engine, workload):
    queries = []
    for num_keywords in (1, 2):
        for spec in workload.specs(num_keywords)[:4]:
            queries.append(workload.bind(spec, radius_km=15.0, k=5))
            queries.append(workload.bind(spec, radius_km=40.0, k=10,
                                         semantics=Semantics.AND))
    # A temporal window exercises the columnar clip.
    max_sid = engine.database.max_sid
    windowed = workload.bind(workload.specs(1)[0], radius_km=25.0, k=10)
    queries.append(replace(
        windowed,
        temporal=TemporalSpec(window=TimeWindow(max_sid // 4, max_sid))))
    return queries


def fingerprint(result):
    """Everything that must agree, with scores taken bitwise."""
    stats = result.stats
    profile = result.profile
    return {
        "users": [(uid, score.hex()) for uid, score in result.users],
        "candidates": stats.candidates,
        "candidates_in_radius": stats.candidates_in_radius,
        "threads_built": stats.threads_built,
        "threads_pruned": stats.threads_pruned,
        "distance_checks_skipped": stats.distance_checks_skipped,
        "ledger": None if profile is None else (
            profile.candidates_examined, profile.candidate_users,
            profile.users_scored, profile.users_pruned_global,
            profile.users_pruned_hot, profile.bound_source),
    }


class TestBatchedParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method", ["max", "sum"])
    def test_bitwise_identical_to_scalar(self, engine, workload,
                                         processors, method, backend):
        scalar = processors[(method, "scalar")]
        batched = processors[(method, "batched")]
        with columnar.force_backend(backend):
            for query in queries_under_test(engine, workload):
                # First pass warms the shared thread cache so
                # ``threads_built`` reflects the same cache state for
                # both legs (the processors share one ThreadBuilder).
                scalar.search(query)
                expected = fingerprint(scalar.search(query))
                got = fingerprint(batched.search(query))
                assert got == expected, query

    def test_backends_agree_with_each_other(self, engine, workload,
                                            processors):
        if len(BACKENDS) < 2:
            pytest.skip("only one columnar backend available")
        batched = processors[("max", "batched")]
        query = workload.bind(workload.specs(1)[0], radius_km=30.0, k=10)
        batched.search(query)   # warm the shared thread cache
        prints = {}
        for backend in BACKENDS:
            with columnar.force_backend(backend):
                prints[backend] = fingerprint(batched.search(query))
        assert prints["python"] == prints["numpy"]

    def test_profile_reports_kernel_family(self, engine, workload,
                                           processors):
        query = workload.bind(workload.specs(1)[0], radius_km=20.0, k=5)
        assert processors[("max", "scalar")].search(query) \
            .profile.kernels == "scalar"
        assert processors[("max", "batched")].search(query) \
            .profile.kernels == "batched"


class TestBatchedPlanShape:
    def test_batched_plan_uses_fused_operators(self):
        plan = Planner().plan("max", kernels="batched")
        names = [type(op).__name__ for op in plan.operators]
        assert "FusedRadiusScoreOp" in names
        assert "BatchCandidateFormOp" in names
        assert "BatchRankOp" in names and "BatchTopKOp" in names
        assert "RadiusFilterOp" not in names   # fused away
        assert plan.spec.kernels == "batched"
        assert "kernels=batched" in plan.describe()

    def test_scalar_plan_unchanged(self):
        plan = Planner().plan("max")
        names = [type(op).__name__ for op in plan.operators]
        assert "FusedRadiusScoreOp" not in names
        assert plan.spec.kernels == "scalar"
        assert "kernels=batched" not in plan.describe()

    def test_scan_and_distributed_coerce_to_scalar(self):
        planner = Planner()
        assert planner.plan("max", scan=True,
                            kernels="batched").spec.kernels == "scalar"
        assert planner.plan("max", distributed=True,
                            kernels="batched").spec.kernels == "scalar"

    def test_operators_declare_writes(self):
        # RL005: every operator declares what it writes into the context.
        for op in (FusedRadiusScoreOp("max"), BatchCandidateFormOp(),
                   BatchRankOp(), BatchTopKOp()):
            assert op.writes


class TestScoringConfigKernels:
    def test_auto_resolves_to_batched(self):
        assert ScoringConfig(kernels="auto").resolved_kernels() == "batched"
        assert ScoringConfig().resolved_kernels() == "scalar"

    def test_invalid_kernels_rejected(self):
        with pytest.raises(ValueError, match="kernels"):
            ScoringConfig(kernels="simd")
