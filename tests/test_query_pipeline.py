"""Pipeline refactor acceptance tests.

Property-style parity: the operator-pipeline processors must return
results identical to an *independent* first-principles scorer (written
inline here, deliberately not the repo's refactored oracle) across
random corpora x {sum, max} x {AND, OR} x {pruning on/off} x
boundary-radius queries — including tie order.  Plus unit coverage of
the planner, plan rendering, and the PostingsSource protocol seam.
"""

from __future__ import annotations

import pytest

from repro.core.model import Semantics
from repro.core.scoring import ScoringConfig, user_distance_score, user_score
from repro.core.thread import DatasetThreadBuilder
from repro.data.generator import generate_corpus
from repro.data.queries import QueryWorkload
from repro.geo.distance import DEFAULT_METRIC
from repro.index.generations import GenerationalIndex
from repro.index.hybrid import HybridIndex
from repro.query.engine import TkLUSEngine
from repro.query.pipeline import (
    PartitionedPostingsSource,
    PhysicalPlan,
    Planner,
    PlanSpec,
    PostingsSource,
    QueryContext,
    run_plan,
)
from repro.query.profiling import ProfileRecorder

SEEDS = (7, 4242)


# -- an independent reference scorer (first principles, no repro.query) ------

def reference_ranking(dataset, threads, query, aggregate,
                      config=None, metric=DEFAULT_METRIC):
    """Definition 6/7/8/9/10 computed directly over the dataset."""
    config = config or ScoringConfig()
    parts = {}
    for post in dataset.posts.values():
        bag = {}
        for word in post.words:
            bag[word] = bag.get(word, 0) + 1
        present = [kw for kw in query.keywords if bag.get(kw)]
        if not present:
            continue
        if query.semantics is Semantics.AND and len(present) != len(query.keywords):
            continue
        if metric(query.location, post.location) > query.radius_km:
            continue
        match_count = sum(bag[kw] for kw in present)
        relevance = (match_count / config.keyword_normalizer
                     ) * threads.popularity(post.sid)
        if aggregate == "sum":
            parts[post.uid] = parts.get(post.uid, 0.0) + relevance
        else:
            parts[post.uid] = max(parts.get(post.uid, 0.0), relevance)
    scored = []
    for uid, keyword_part in parts.items():
        locations = [p.location for p in dataset.posts_of(uid)]
        distance_part = user_distance_score(locations, query.location,
                                            query.radius_km, metric)
        scored.append((uid, user_score(keyword_part, distance_part, config)))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored[:query.k]


def assert_rankings_match(actual, expected, context=""):
    """Pairwise score equality (tolerance for float-summation order) and
    exact uid agreement — tie groups are broken by ascending uid on both
    sides, so uid sequences must match outright."""
    assert len(actual) == len(expected), context
    for position, ((uid_a, score_a), (uid_e, score_e)) in enumerate(
            zip(actual, expected)):
        assert abs(score_a - score_e) <= 1e-9, \
            f"{context}: score diverged at rank {position}"
        if uid_a != uid_e:
            # Only acceptable inside an exact tie straddling the ranks.
            assert abs(score_a - score_e) <= 1e-9
            tied_actual = sorted(uid for uid, s in actual
                                 if abs(s - score_a) <= 1e-9)
            tied_expected = sorted(uid for uid, s in expected
                                   if abs(s - score_e) <= 1e-9)
            assert tied_actual == tied_expected, \
                f"{context}: tie group differs at rank {position}"


# -- fixtures: small random corpora ------------------------------------------

@pytest.fixture(scope="module", params=SEEDS)
def random_setup(request):
    corpus = generate_corpus(num_users=150, num_root_tweets=700,
                             seed=request.param)
    dataset = corpus.to_dataset()
    engine = TkLUSEngine.from_posts(corpus.posts)
    threads = DatasetThreadBuilder(dataset, depth=6,
                                   epsilon=ScoringConfig().epsilon)
    workload = QueryWorkload(corpus, seed=request.param)
    return engine, dataset, threads, workload


def sample_queries(workload, semantics, radius=20.0, k=5, limit=3):
    queries = []
    for num_keywords in (1, 2):
        for spec in workload.specs(num_keywords)[:limit]:
            queries.append(workload.bind(spec, radius_km=radius, k=k,
                                         semantics=semantics))
    return queries


# -- the parity matrix --------------------------------------------------------

class TestPipelineParity:
    @pytest.mark.parametrize("method", ["sum", "max"])
    @pytest.mark.parametrize("semantics", [Semantics.AND, Semantics.OR])
    def test_matches_independent_reference(self, random_setup, method,
                                           semantics):
        engine, dataset, threads, workload = random_setup
        for query in sample_queries(workload, semantics):
            result = engine.search(query, method=method)
            expected = reference_ranking(dataset, threads, query, method)
            assert_rankings_match(
                result.users, expected,
                f"{method}/{semantics.value}/{sorted(query.keywords)}")

    @pytest.mark.parametrize("semantics", [Semantics.AND, Semantics.OR])
    def test_pruning_ablation_is_exact(self, random_setup, semantics):
        engine, _dataset, _threads, workload = random_setup
        pruned = engine.processor("max", use_pruning=True)
        unpruned = engine.processor("max", use_pruning=False)
        for query in sample_queries(workload, semantics):
            engine.threads.clear_cache()
            with_pruning = pruned.search(query)
            engine.threads.clear_cache()
            without = unpruned.search(query)
            # Identical float operations on the surviving candidates:
            # exact equality, not just tolerance.
            assert with_pruning.users == without.users

    def test_cell_containment_shortcut_is_exact(self, random_setup):
        from repro.query.sum_ranking import SumScoreProcessor
        engine, _dataset, _threads, workload = random_setup
        with_shortcut = engine.processor("sum")
        without = SumScoreProcessor(engine.index, engine.database,
                                    engine.threads,
                                    engine.config.scoring, engine.metric,
                                    use_cell_containment=False)
        for query in sample_queries(workload, Semantics.OR):
            assert (with_shortcut.search(query).users
                    == without.search(query).users)

    @pytest.mark.parametrize("method", ["sum", "max"])
    def test_boundary_radius(self, random_setup, method):
        # Radius exactly equal to a post's distance: the post is *inside*
        # (the filter is strict >), and the pipeline must agree with the
        # reference on that boundary.
        engine, dataset, threads, workload = random_setup
        centre = workload.sample_location()
        posts = sorted(dataset.posts.values(), key=lambda p: p.sid)[:10]
        for post in posts:
            radius = DEFAULT_METRIC(centre, post.location)
            if radius == 0.0 or radius > 80.0:
                continue
            query = engine.make_query(centre, radius, list(post.words)[:1],
                                      k=5)
            if not query.keywords:
                continue
            result = engine.search(query, method=method)
            expected = reference_ranking(dataset, threads, query, method)
            assert_rankings_match(result.users, expected,
                                  f"boundary r={radius}")


# -- the PostingsSource seam --------------------------------------------------

class _DelegatingSource:
    """A black-box PostingsSource wrapper: proves the fetch operator
    depends only on the protocol, not on HybridIndex."""

    def __init__(self, inner):
        self._inner = inner

    @property
    def geohash_length(self):
        return self._inner.geohash_length

    def cover(self, location, radius_km, metric=DEFAULT_METRIC):
        return self._inner.cover(location, radius_km, metric)

    def postings_for_query(self, cells, terms):
        return self._inner.postings_for_query(cells, terms)

    def postings_fetch_count(self):
        return self._inner.postings_fetch_count()


class TestPostingsSourceProtocol:
    def test_hybrid_index_satisfies_protocols(self, random_setup):
        engine, *_ = random_setup
        assert isinstance(engine.index, PostingsSource)
        assert isinstance(engine.index, PartitionedPostingsSource)

    def test_generational_index_satisfies_source(self):
        assert issubclass(GenerationalIndex, object)
        for name in ("cover", "postings_for_query", "postings_fetch_count",
                     "geohash_length"):
            assert hasattr(GenerationalIndex, name)

    def test_foreign_source_is_interchangeable(self, random_setup):
        engine, _dataset, _threads, workload = random_setup
        planner = Planner()
        query = sample_queries(workload, Semantics.OR, limit=1)[0]
        wrapped = _DelegatingSource(engine.index)
        assert isinstance(wrapped, PostingsSource)
        recorder = ProfileRecorder(engine.database, engine.index, query,
                                   "sum")
        ctx = QueryContext.for_database(
            query, config=engine.config.scoring, metric=engine.metric,
            source=wrapped, database=engine.database, threads=engine.threads,
            profile=recorder.profile)
        result = run_plan(planner.plan_for_query("sum", query), ctx,
                          method="sum", recorder=recorder)
        assert result.users == engine.search_sum(query).users


# -- planner and plan rendering -----------------------------------------------

class TestPlanner:
    def test_plans_are_memoised(self):
        planner = Planner()
        first = planner.plan("max", Semantics.OR)
        second = planner.plan("max", Semantics.OR)
        assert first is second
        assert planner.plan("max", Semantics.AND) is not first

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PlanSpec(method="median")
        with pytest.raises(ValueError):
            PlanSpec(distributed=True, scan=True)

    def test_indexed_shapes(self):
        planner = Planner()
        assert planner.plan("sum", Semantics.OR).operator_names() == [
            "Cover", "PostingsFetch", "CandidateForm", "RadiusFilter",
            "ThreadScore", "Rank", "TopK"]
        assert planner.plan("max", Semantics.OR).operator_names() == [
            "Cover", "PostingsFetch", "CandidateForm", "RadiusFilter",
            "BoundsPrune", "ThreadScore", "Rank", "TopK"]
        assert "BoundsPrune" not in planner.plan(
            "max", Semantics.OR, pruning=False).operator_names()
        assert "TemporalClip" in planner.plan(
            "sum", Semantics.OR, temporal=True).operator_names()

    def test_scan_and_distributed_shapes(self):
        planner = Planner()
        scan = planner.plan("sum", Semantics.OR, scan=True)
        assert scan.operator_names()[0] == "DatasetScan"
        distributed = planner.plan("sum", Semantics.OR, distributed=True)
        assert distributed.operator_names() == [
            "Cover", "PartitionRoute", "ScatterGather", "Rank", "TopK"]

    def test_plan_for_query_reads_query_shape(self, random_setup):
        engine, _dataset, _threads, workload = random_setup
        planner = Planner()
        query = sample_queries(workload, Semantics.AND, limit=1)[0]
        plan = planner.plan_for_query("max", query)
        assert plan.spec is not None
        assert plan.spec.semantics is Semantics.AND
        assert not plan.spec.temporal

    def test_describe_mentions_operators_and_paper_lines(self):
        planner = Planner()
        text = planner.explain("max", Semantics.AND, temporal=True)
        assert "plan[" in text
        for token in ("Cover", "PostingsFetch", "TemporalClip",
                      "CandidateForm", "RadiusFilter", "BoundsPrune",
                      "ThreadScore", "Rank", "TopK", "Alg 4/5 line 1",
                      "Def 11"):
            assert token in text

    def test_distributed_describe_nests_server_plan(self):
        planner = Planner()
        text = planner.explain("sum", Semantics.OR, distributed=True)
        assert "ScatterGather" in text
        assert "plan[server," in text

    def test_plan_iteration(self):
        plan = Planner().plan("sum", Semantics.OR)
        assert isinstance(plan, PhysicalPlan)
        assert len(plan) == len(list(plan))


class TestEngineExplain:
    def test_engine_explain_plan(self, random_setup):
        engine, _dataset, _threads, workload = random_setup
        query = sample_queries(workload, Semantics.OR, limit=1)[0]
        text = engine.explain_plan(query, method="max")
        assert "BoundsPrune" in text
        ablation = engine.explain_plan(query, method="max",
                                       use_pruning=False)
        assert "BoundsPrune" not in ablation


class TestSharedConfigDefaults:
    def test_processor_configs_are_per_instance(self, random_setup):
        # Regression: the processors used to share one module-level
        # ScoringConfig default instance across every construction.
        from repro.query.baseline import BruteForceProcessor
        from repro.query.max_ranking import MaxScoreProcessor
        from repro.query.sum_ranking import SumScoreProcessor
        engine, dataset, *_ = random_setup
        a = SumScoreProcessor(engine.index, engine.database, engine.threads)
        b = SumScoreProcessor(engine.index, engine.database, engine.threads)
        assert a.config is not b.config
        c = MaxScoreProcessor(engine.index, engine.database, engine.threads,
                              engine.bounds)
        assert c.config is not a.config
        d = BruteForceProcessor(dataset)
        e = BruteForceProcessor(dataset)
        assert d.config is not e.config
        own = ScoringConfig(alpha=0.9)
        assert SumScoreProcessor(engine.index, engine.database,
                                 engine.threads, own).config is own
