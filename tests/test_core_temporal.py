"""Tests for the temporal TkLUS extension (Section VIII future work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import QueryError
from repro.core.model import Semantics, TkLUSQuery
from repro.core.temporal import (
    NO_TEMPORAL,
    RecencyModel,
    TemporalSpec,
    TimeWindow,
)

posting_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1000),
              st.integers(min_value=1, max_value=5)),
    max_size=60,
).map(lambda pairs: sorted(dict(pairs).items()))


class TestTimeWindow:
    def test_unbounded(self):
        window = TimeWindow()
        assert window.unbounded
        assert window.contains(0) and window.contains(10**12)

    def test_bounds_inclusive(self):
        window = TimeWindow(10, 20)
        assert window.contains(10) and window.contains(20)
        assert not window.contains(9) and not window.contains(21)

    def test_half_open_variants(self):
        assert TimeWindow(start=5).contains(10**9)
        assert not TimeWindow(start=5).contains(4)
        assert TimeWindow(end=5).contains(0)
        assert not TimeWindow(end=5).contains(6)

    def test_empty_window_rejected(self):
        with pytest.raises(QueryError):
            TimeWindow(10, 5)

    def test_clip_postings(self):
        postings = [(1, 1), (5, 2), (9, 1), (12, 3)]
        assert TimeWindow(5, 9).clip_postings(postings) == [(5, 2), (9, 1)]
        assert TimeWindow(6, 8).clip_postings(postings) == []
        assert TimeWindow().clip_postings(postings) == postings

    @given(posting_lists,
           st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_clip_matches_filter(self, postings, a, b):
        start, end = min(a, b), max(a, b)
        window = TimeWindow(start, end)
        expected = [(tid, tf) for tid, tf in postings
                    if start <= tid <= end]
        assert window.clip_postings(postings) == expected


class TestRecencyModel:
    def test_half_life_semantics(self):
        model = RecencyModel(half_life=10)
        assert model.weight(100, reference=100) == 1.0
        assert model.weight(90, reference=100) == pytest.approx(0.5)
        assert model.weight(80, reference=100) == pytest.approx(0.25)

    def test_future_timestamps_capped(self):
        model = RecencyModel(half_life=10)
        assert model.weight(110, reference=100) == 1.0

    def test_invalid_half_life(self):
        with pytest.raises(QueryError):
            RecencyModel(half_life=0)

    def test_reference_resolution(self):
        assert RecencyModel(10).resolve_reference(55) == 55
        assert RecencyModel(10, reference=70).resolve_reference(55) == 70


class TestTemporalSpec:
    def test_trivial(self):
        assert NO_TEMPORAL.is_trivial
        assert not TemporalSpec(window=TimeWindow(1, 2)).is_trivial
        assert not TemporalSpec(recency=RecencyModel(5)).is_trivial


class TestTemporalQueries:
    """End-to-end behaviour through the engine (vs the oracle)."""

    def _mid_window(self, corpus):
        sids = [post.sid for post in corpus.posts]
        return TimeWindow(sids[len(sids) // 4], sids[len(sids) // 2])

    def test_window_restricts_candidates(self, corpus, engine, workload):
        spec = workload.specs(1)[0]
        base = workload.bind(spec, radius_km=30.0)
        window = self._mid_window(corpus)
        windowed = TkLUSQuery(location=base.location, radius_km=30.0,
                              keywords=base.keywords, k=10,
                              temporal=TemporalSpec(window=window))
        full = engine.search_sum(base)
        narrow = engine.search_sum(windowed)
        assert narrow.stats.candidates <= full.stats.candidates

    def test_window_agreement_with_oracle(self, corpus, engine, workload,
                                          oracle):
        window = self._mid_window(corpus)
        for spec in workload.specs(1)[:5]:
            base = workload.bind(spec, radius_km=25.0)
            query = TkLUSQuery(location=base.location, radius_km=25.0,
                               keywords=base.keywords, k=10,
                               temporal=TemporalSpec(window=window))
            indexed = engine.search_sum(query)
            exact = oracle.search_sum(query)
            assert [u for u, _s in indexed.users] == [u for u, _s in exact.users]

    def test_window_results_only_contain_windowed_tweets(
            self, corpus, engine, workload, dataset):
        from repro.geo.distance import haversine_km
        window = self._mid_window(corpus)
        base = workload.bind(workload.specs(1)[1], radius_km=30.0)
        query = TkLUSQuery(location=base.location, radius_km=30.0,
                           keywords=base.keywords, k=10,
                           temporal=TemporalSpec(window=window))
        result = engine.search_sum(query)
        for uid, _score in result.users:
            assert any(
                window.contains(post.sid)
                and query.keywords.intersection(post.words)
                and haversine_km(query.location, post.location) <= 30.0
                for post in dataset.posts_of(uid))

    def test_recency_agreement_with_oracle(self, engine, workload, oracle):
        temporal = TemporalSpec(recency=RecencyModel(half_life=500.0))
        for spec in workload.specs(1)[:4]:
            base = workload.bind(spec, radius_km=25.0)
            query = TkLUSQuery(location=base.location, radius_km=25.0,
                               keywords=base.keywords, k=10,
                               temporal=temporal)
            indexed = engine.search_sum(query)
            exact = oracle.search_sum(query)
            for (_ua, sa), (_ub, sb) in zip(indexed.users, exact.users):
                assert sa == pytest.approx(sb)

    def test_recency_prefers_newer_on_max(self, engine, workload, oracle):
        """With a tiny half-life, older tweets' keyword contribution
        vanishes — the winner must hold a recent matching tweet."""
        temporal = TemporalSpec(recency=RecencyModel(half_life=50.0))
        base = workload.bind(workload.specs(1)[2], radius_km=30.0)
        query = TkLUSQuery(location=base.location, radius_km=30.0,
                           keywords=base.keywords, k=10, temporal=temporal)
        plain = TkLUSQuery(location=base.location, radius_km=30.0,
                           keywords=base.keywords, k=10)
        weighted = engine.search_max(query)
        unweighted = engine.search_max(plain)
        # Scores can only shrink under a <= 1 multiplicative weight.
        weighted_scores = dict(weighted.users)
        unweighted_scores = dict(unweighted.users)
        for uid in set(weighted_scores) & set(unweighted_scores):
            assert weighted_scores[uid] <= unweighted_scores[uid] + 1e-9

    def test_max_pruning_still_sound_under_recency(self, engine, workload):
        temporal = TemporalSpec(recency=RecencyModel(half_life=200.0))
        pruned = engine.processor("max", use_pruning=True)
        unpruned = engine.processor("max", use_pruning=False)
        for spec in workload.specs(1)[:4]:
            base = workload.bind(spec, radius_km=30.0)
            query = TkLUSQuery(location=base.location, radius_km=30.0,
                               keywords=base.keywords, k=10,
                               temporal=temporal)
            engine.threads.clear_cache()
            a = pruned.search(query)
            engine.threads.clear_cache()
            b = unpruned.search(query)
            assert [u for u, _s in a.users] == [u for u, _s in b.users]
