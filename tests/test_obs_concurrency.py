"""Hammer tests: registry and time-series instruments under concurrent
writers (ingest + query threads) with a live reader exporting snapshots.

The locking model (documented in ``repro.obs.metrics``): the registry
lock guards instrument *minting* only; each instrument owns its own lock
for updates, so writers on different instruments never contend and a
reader snapshot never blocks the write path for long.  These tests pin
the load-bearing consequence — no lost updates, no torn snapshots."""

import io
import threading

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import RuntimeConfig, RuntimeRegistry, RuntimeTelemetry

THREADS = 8
ITERATIONS = 2_000


def _run_threads(worker):
    threads = [threading.Thread(target=worker, args=(tid,))
               for tid in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricsRegistryHammer:
    def test_no_lost_counter_updates(self):
        registry = MetricsRegistry()

        def worker(tid):
            for _ in range(ITERATIONS):
                registry.counter("shared").inc()
                registry.counter(f"per_thread.{tid}").inc(2)

        _run_threads(worker)
        counters = registry.counters()
        assert counters["shared"] == THREADS * ITERATIONS
        for tid in range(THREADS):
            assert counters[f"per_thread.{tid}"] == 2 * ITERATIONS

    def test_histograms_and_gauges_under_contention(self):
        registry = MetricsRegistry()

        def worker(tid):
            for i in range(ITERATIONS):
                registry.histogram("latency").observe(0.001 * (tid + 1))
                registry.gauge("depth").set(float(i))

        _run_threads(worker)
        summary = registry.histograms()["latency"]
        assert summary["count"] == THREADS * ITERATIONS
        assert 0.0 < registry.gauges()["depth"] <= ITERATIONS

    def test_reader_snapshots_while_writers_run(self):
        """Snapshots are not atomic *across* instruments (each has its
        own lock), but every individual value must be monotone over
        successive snapshots and bounded by the true total."""
        registry = MetricsRegistry()
        stop = threading.Event()
        violations = []

        def reader():
            last = {}
            while not stop.is_set():
                snapshot = registry.counters()
                for name, value in snapshot.items():
                    if value < last.get(name, 0):
                        violations.append((name, last[name], value))
                    if value > THREADS * ITERATIONS:
                        violations.append((name, "overshoot", value))
                last = snapshot

        def writer(tid):
            for _ in range(ITERATIONS):
                registry.counter("a").inc()
                registry.counter("b").inc()

        observer = threading.Thread(target=reader)
        observer.start()
        _run_threads(writer)
        stop.set()
        observer.join()
        assert violations == []
        counters = registry.counters()
        assert counters["a"] == counters["b"] == THREADS * ITERATIONS


class TestRuntimeRegistryHammer:
    def test_time_series_counters_do_not_lose_updates(self):
        registry = RuntimeRegistry()

        def worker(tid):
            for _ in range(ITERATIONS):
                registry.counter("ingest.appends").inc()
                registry.histogram("query.latency_seconds").observe(0.005)

        _run_threads(worker)
        assert registry.counter("ingest.appends").value == (
            THREADS * ITERATIONS)
        assert registry.histogram(
            "query.latency_seconds").summary()["count"] == (
                THREADS * ITERATIONS)

    def test_minting_race_returns_single_instance(self):
        registry = RuntimeRegistry()
        seen = []
        barrier = threading.Barrier(THREADS)

        def worker(tid):
            barrier.wait()
            seen.append(registry.counter("raced"))

        _run_threads(worker)
        assert len(set(map(id, seen))) == 1


class TestFacadeHammer:
    def test_ingest_and_query_shapes_through_facade(self):
        """The realistic shape: ingest threads and query threads pushing
        through the ``obs`` facade into one runtime while an exporter
        thread dumps JSONL snapshots."""
        runtime = obs.enable_runtime(RuntimeConfig(slow_query_ms=1e9))
        stop = threading.Event()
        export_errors = []

        def exporter():
            while not stop.is_set():
                try:
                    runtime.dump_jsonl(io.StringIO())
                    runtime.prometheus_text()
                except Exception as exc:  # pragma: no cover - failure path
                    export_errors.append(exc)
                    return

        def ingest_worker(tid):
            for _ in range(ITERATIONS):
                obs.inc("ingest.appends")
                obs.observe("ingest.wal_append_seconds", 0.0001)

        def query_worker(tid):
            for _ in range(ITERATIONS):
                obs.inc("query.searches")
                obs.observe("query.latency_seconds", 0.002)

        observer = threading.Thread(target=exporter)
        observer.start()
        try:
            threads = (
                [threading.Thread(target=ingest_worker, args=(tid,))
                 for tid in range(THREADS // 2)]
                + [threading.Thread(target=query_worker, args=(tid,))
                   for tid in range(THREADS // 2)])
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            stop.set()
            observer.join()
            obs.disable_runtime()
        assert export_errors == []
        counters = runtime.registry.counters()
        assert counters["ingest.appends"] == (THREADS // 2) * ITERATIONS
        assert counters["query.searches"] == (THREADS // 2) * ITERATIONS

    def test_concurrent_traces_keep_thread_local_parents(self):
        runtime = RuntimeTelemetry(RuntimeConfig(
            sample_rate=1.0, slow_trace_ms=1e9, trace_ring=256))
        bad_parents = []

        def worker(tid):
            for _ in range(200):
                with runtime.trace_context("root", {"tid": tid}) as root:
                    with runtime.trace_context("child", {}) as child:
                        pass
                # Parent links are thread-local: the child must land in
                # THIS thread's root, and only that child.
                if root.children != [child]:
                    bad_parents.append((tid, [s.name for s in root.children]))

        _run_threads(worker)
        assert bad_parents == []
        assert runtime.registry.counters()["obs.traces.finished"] == (
            THREADS * 200)
