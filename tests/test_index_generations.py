"""Tests for generational (periodic-batch) index ingestion."""

import pytest

from repro.data.generator import generate_corpus
from repro.dfs.cluster import paper_cluster
from repro.index.builder import IndexConfig
from repro.index.generations import GenerationalIndex
from repro.index.hybrid import HybridIndex


@pytest.fixture(scope="module")
def batches():
    corpus = generate_corpus(num_users=150, num_root_tweets=600, seed=77)
    posts = corpus.posts
    third = len(posts) // 3
    return [posts[:third], posts[third:2 * third], posts[2 * third:]]


@pytest.fixture()
def generational(batches):
    index = GenerationalIndex(paper_cluster())
    for batch in batches:
        index.ingest(batch)
    return index


@pytest.fixture(scope="module")
def monolithic(batches):
    all_posts = [post for batch in batches for post in batch]
    return HybridIndex.build(all_posts, paper_cluster())


class TestIngestion:
    def test_generation_count(self, generational, batches):
        assert generational.generation_count == 3
        assert generational.post_count == sum(len(b) for b in batches)

    def test_empty_batch_rejected(self):
        index = GenerationalIndex(paper_cluster())
        with pytest.raises(ValueError):
            index.ingest([])

    def test_generations_have_distinct_prefixes(self, generational):
        prefixes = {generation.index.config.output_prefix
                    for generation in generational.generations}
        assert len(prefixes) == 3

    def test_part_files_per_generation(self, generational):
        files = generational.cluster.list_files("/index")
        assert any("gen-00000" in path for path in files)
        assert any("gen-00002" in path for path in files)


class TestMergedQueries:
    def test_postings_match_monolithic(self, generational, monolithic):
        """Merged postings across generations equal a single build's."""
        checked = 0
        for (cell, term), _ref in list(monolithic.forward.items())[:300]:
            merged = generational.postings(cell, term)
            single = monolithic.postings(cell, term)
            assert merged == single, (cell, term)
            checked += 1
        assert checked > 0

    def test_no_extra_postings(self, generational, monolithic):
        """Every generational posting also exists monolithically."""
        for generation in generational.generations:
            for (cell, term), _ref in list(generation.index.forward.items())[:100]:
                merged = generational.postings(cell, term)
                assert merged == monolithic.postings(cell, term)

    def test_cover_matches(self, generational, monolithic):
        center = (43.6532, -79.3832)
        assert generational.cover(center, 15.0) == monolithic.cover(center, 15.0)

    def test_postings_for_query_shape(self, generational):
        cells = generational.cover((43.6532, -79.3832), 15.0)
        grouped = generational.postings_for_query(cells, ["restaur", "hotel"])
        for per_term in grouped.values():
            for postings in per_term.values():
                tids = [tid for tid, _tf in postings]
                assert tids == sorted(tids)


class TestEngineEquivalence:
    def test_query_results_match_monolithic_engine(self, batches):
        """An engine over the generational index answers exactly like an
        engine over one monolithic build."""
        from repro.query.engine import TkLUSEngine

        all_posts = [post for batch in batches for post in batch]
        mono_engine = TkLUSEngine.from_posts(all_posts,
                                             precompute_bounds=False)

        gen_engine = TkLUSEngine.from_posts(all_posts,
                                            precompute_bounds=False)
        generational = GenerationalIndex(paper_cluster())
        for batch in batches:
            generational.ingest(batch)
        # Swap the index behind the processors.
        gen_engine.index = generational  # type: ignore[assignment]
        gen_engine._sum.index = generational  # type: ignore[assignment]
        gen_engine._max.index = generational  # type: ignore[assignment]

        for keywords in (["restaurant"], ["hotel"], ["coffee"]):
            query = mono_engine.make_query((43.6532, -79.3832), 25.0,
                                           keywords, k=10)
            assert (gen_engine.search_sum(query).users
                    == mono_engine.search_sum(query).users)
            assert (gen_engine.search_max(query).users
                    == mono_engine.search_max(query).users)


class TestCompaction:
    def test_compact_to_single_generation(self, batches):
        index = GenerationalIndex(paper_cluster())
        for batch in batches:
            index.ingest(batch)
        before = {}
        for generation in index.generations:
            for (cell, term), _ref in generation.index.forward.items():
                before[(cell, term)] = index.postings(cell, term)

        index.compact()
        assert index.generation_count == 1
        assert index.compactions == 1
        for (cell, term), expected in list(before.items())[:200]:
            assert index.postings(cell, term) == expected

    def test_compact_reclaims_files(self, batches):
        index = GenerationalIndex(paper_cluster())
        for batch in batches:
            index.ingest(batch)
        files_before = len(index.cluster.list_files("/index"))
        entries_before = sum(
            ref.count for generation in index.generations
            for _key, ref in generation.index.forward.items())
        index.compact()
        files_after = len(index.cluster.list_files("/index"))
        assert files_after < files_before
        # Same data, one generation: same logical entry count.  (Byte
        # size shifts under the block format — merging lists changes the
        # block/header layout — so it is asserted under "flat" below.)
        entries_after = sum(
            ref.count for generation in index.generations
            for _key, ref in generation.index.forward.items())
        assert entries_after == entries_before

    def test_compact_size_unchanged_flat(self, batches):
        index = GenerationalIndex(paper_cluster(),
                                  config=IndexConfig(postings_format="flat"))
        for batch in batches:
            index.ingest(batch)
        size_before = index.inverted_size_bytes()
        index.compact()
        # Flat entries cost 12 bytes each regardless of list layout.
        assert index.inverted_size_bytes() == size_before

    def test_compact_posts_argument_removed(self, batches):
        """The deprecated ``compact(posts)`` override is gone: the index
        retains its batches and always rebuilds from them."""
        index = GenerationalIndex(paper_cluster())
        index.ingest(batches[0])
        with pytest.raises(TypeError):
            index.compact(list(batches[0]))  # type: ignore[call-arg]

    def test_compact_without_retained_batches_needs_posts(self, batches):
        index = GenerationalIndex(paper_cluster(), retain_batches=False)
        index.ingest(batches[0])
        with pytest.raises(ValueError, match="retain_batches"):
            index.compact()

    def test_compact_empty_index_rejected(self):
        index = GenerationalIndex(paper_cluster())
        with pytest.raises(ValueError, match="nothing to compact"):
            index.compact()

    def test_retained_batches_are_immutable_copies(self, batches):
        index = GenerationalIndex(paper_cluster())
        batch = list(batches[0])
        generation = index.ingest(batch)
        batch.clear()  # caller mutates their list; retention unaffected
        assert generation.posts is not None
        assert len(generation.posts) == generation.post_count


class TestConfigPropagation:
    def test_geohash_length_inherited(self, batches):
        index = GenerationalIndex(paper_cluster(),
                                  config=IndexConfig(geohash_length=3))
        index.ingest(batches[0])
        for (cell, _term), _ref in index.generations[0].index.forward.items():
            assert len(cell) == 3
            break
