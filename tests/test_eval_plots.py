"""Tests for ASCII figure rendering."""

import pytest

from repro.eval.plots import bar_chart, line_chart, series_from_rows


class TestBarChart:
    def test_basic(self):
        text = bar_chart([("sum", 10.0), ("max", 5.0)], width=20, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("sum")
        # sum's bar is twice max's.
        assert lines[1].count("#") == 2 * lines[2].count("#")

    def test_zero_values(self):
        text = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "(no data)" not in text

    def test_empty(self):
        assert "(no data)" in bar_chart([])

    def test_unit_suffix(self):
        assert "ms" in bar_chart([("q", 3.0)], unit="ms")


class TestLineChart:
    def test_markers_and_legend(self):
        text = line_chart([1, 2, 3], {"sum": [1, 2, 3], "max": [3, 2, 1]})
        assert "S" in text and "M" in text
        assert "S=sum" in text and "M=max" in text

    def test_extremes_on_grid(self):
        text = line_chart([0, 10], {"x": [0.0, 100.0]}, height=5, width=20)
        lines = text.splitlines()
        assert lines[0].strip().startswith("100")
        assert "0 |" in lines[4]

    def test_constant_series(self):
        text = line_chart([1, 2], {"flat": [5.0, 5.0]})
        assert "F" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1, 2, 3], {"s": [1, 2]})

    def test_empty(self):
        assert "(no data)" in line_chart([], {})

    def test_marker_collision_resolved(self):
        text = line_chart([1, 2], {"sum": [1, 2], "sigma": [2, 1]})
        # Two series starting with 's': second gets a digit marker.
        assert "=sum" in text and "=sigma" in text


class TestSeriesFromRows:
    ROWS = [
        {"radius_km": 5.0, "sum_seconds": 0.1, "semantics": "and"},
        {"radius_km": 10.0, "sum_seconds": 0.2, "semantics": "and"},
        {"radius_km": 5.0, "sum_seconds": 0.3, "semantics": "or"},
        {"radius_km": 10.0, "sum_seconds": 0.4, "semantics": "or"},
    ]

    def test_single_series(self):
        xs, series = series_from_rows(self.ROWS[:2], "radius_km",
                                      "sum_seconds")
        assert xs == [5.0, 10.0]
        assert series == {"sum_seconds": [0.1, 0.2]}

    def test_grouped(self):
        xs, series = series_from_rows(self.ROWS, "radius_km", "sum_seconds",
                                      group_key="semantics")
        assert xs == [5.0, 10.0]
        assert series == {"and": [0.1, 0.2], "or": [0.3, 0.4]}

    def test_empty(self):
        assert series_from_rows([], "x", "y") == ([], {})

    def test_pipeline_with_line_chart(self):
        xs, series = series_from_rows(self.ROWS, "radius_km", "sum_seconds",
                                      group_key="semantics")
        text = line_chart(xs, series, title="Fig 10")
        assert text.startswith("Fig 10")
