"""Mixed ingest+query bench: report shape, schema gate, the committed
report, and the CLI entry point."""

import json

import pytest

from repro.cli import main
from repro.eval.ingest_bench import (
    IngestBenchConfig,
    render_ingest_summary,
    run_ingest_bench,
    validate_ingest_bench_report,
)

SMALL = IngestBenchConfig(num_users=60, num_root_tweets=300, queries=4,
                          appends_per_query=6, flush_posts=100)


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("ingest-bench") / "run")
    return run_ingest_bench(directory, SMALL)


class TestRunIngestBench:
    def test_report_is_valid(self, payload):
        assert validate_ingest_bench_report(payload) == []

    def test_appends_actually_interleaved(self, payload):
        # More appends than the mixed phase alone could produce → the
        # preload landed; queries all ran against the moving index.
        mixed_max = SMALL.queries * SMALL.appends_per_query
        assert payload["ingest"]["appends"] > mixed_max
        assert payload["query_latency_ms"]["queries"] == SMALL.queries

    def test_flushes_happened_mid_run(self, payload):
        assert payload["ingest"]["flushes"] >= 2
        assert payload["ingest"]["memtable_posts"] > 0  # tail stayed live

    def test_recovery_round_trips(self, payload):
        assert payload["recovery"]["posts_match"]
        assert (payload["ingest"]["replayed_records"]
                == payload["ingest"]["memtable_posts"])

    def test_json_serialisable(self, payload):
        assert json.loads(json.dumps(payload)) == payload

    def test_render_summary(self, payload):
        text = render_ingest_summary(payload)
        assert "p50" in text and "fsyncs" in text and "ok" in text


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_ingest_bench_report([]) != []

    def test_rejects_missing_seed(self, payload):
        broken = dict(payload)
        del broken["seed"]
        assert any("seed" in p
                   for p in validate_ingest_bench_report(broken))

    def test_rejects_recovery_mismatch(self, payload):
        broken = json.loads(json.dumps(payload))
        broken["recovery"]["posts_match"] = False
        assert any("posts_match" in p
                   for p in validate_ingest_bench_report(broken))

    def test_rejects_missing_ingest_metric(self, payload):
        broken = json.loads(json.dumps(payload))
        del broken["ingest"]["fsyncs"]
        assert any("fsyncs" in p
                   for p in validate_ingest_bench_report(broken))

    def test_rejects_bool_counter(self, payload):
        broken = json.loads(json.dumps(payload))
        broken["ingest"]["flushes"] = True
        assert any("flushes" in p
                   for p in validate_ingest_bench_report(broken))


class TestCommittedReport:
    def test_checked_in_ingest_report_is_valid(self):
        with open("BENCH_ingest.json") as handle:
            payload = json.load(handle)
        assert validate_ingest_bench_report(payload) == []
        assert payload["seed"] == 42
        assert payload["ingest"]["flushes"] >= 1


class TestCli:
    def test_ingest_bench_command(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["ingest-bench", "--users", "60", "--roots", "300",
                     "--queries", "3", "--appends-per-query", "4",
                     "--flush-posts", "100", "--output", str(out)]) == 0
        with open(out) as handle:
            assert validate_ingest_bench_report(json.load(handle)) == []
        assert "query latency" in capsys.readouterr().out
