"""The flat-vs-block bench harness: report shape, schema validation,
format parity, and the CLI entry point."""

import json

import pytest

from repro.cli import main
from repro.eval.bench import (
    BenchConfig,
    _quantile,
    render_summary,
    run_bench,
    validate_bench_report,
)


@pytest.fixture(scope="module")
def payload():
    return run_bench(BenchConfig(num_users=60, num_root_tweets=300,
                                 queries_per_workload=3))


class TestQuantile:
    def test_empty(self):
        assert _quantile([], 0.5) == 0.0

    def test_single_value(self):
        assert _quantile([7.0], 0.5) == 7.0
        assert _quantile([7.0], 0.95) == 7.0

    def test_median_interpolates(self):
        assert _quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_p95(self):
        values = [float(i) for i in range(1, 101)]
        assert _quantile(values, 0.95) == pytest.approx(95.05)


class TestRunBench:
    def test_report_is_valid(self, payload):
        assert validate_bench_report(payload) == []

    def test_covers_all_workloads(self, payload):
        names = [w["name"] for w in payload["workloads"]]
        assert names == ["fig8_single", "fig8_single_windowed", "fig10_multi"]

    def test_formats_answer_identically(self, payload):
        assert all(w["results_identical"] for w in payload["workloads"])

    def test_block_format_decodes_less(self, payload):
        # The headline claim: delta+varint blocks decode fewer bytes
        # than flat 12-byte entries on every workload, and the temporal
        # window keeps the >= 1.5x acceptance bar with room to spare.
        for workload in payload["workloads"]:
            assert workload["decoded_bytes_reduction"] is not None
            assert workload["decoded_bytes_reduction"] > 1.0
        windowed = payload["workloads"][1]
        assert windowed["temporal_window"]
        assert windowed["decoded_bytes_reduction"] >= 1.5

    def test_windowed_workload_skips_blocks(self, payload):
        windowed = payload["workloads"][1]["formats"]["block"]
        full = payload["workloads"][0]["formats"]["block"]
        assert windowed["postings_bytes_decoded"] \
            <= full["postings_bytes_decoded"]

    def test_json_serialisable(self, payload):
        assert json.loads(json.dumps(payload)) is not None

    def test_render_summary_mentions_workloads(self, payload):
        text = render_summary(payload)
        assert "fig8_single" in text
        assert "parity ok" in text


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_bench_report([]) != []

    def test_rejects_bad_schema_version(self, payload):
        broken = json.loads(json.dumps(payload))
        broken["schema_version"] = 99
        assert any("schema_version" in p
                   for p in validate_bench_report(broken))

    def test_rejects_missing_format(self, payload):
        broken = json.loads(json.dumps(payload))
        del broken["workloads"][0]["formats"]["block"]
        assert any("formats.block" in p
                   for p in validate_bench_report(broken))

    def test_rejects_negative_latency(self, payload):
        broken = json.loads(json.dumps(payload))
        broken["workloads"][0]["formats"]["flat"]["latency_ms"]["p50"] = -1
        assert any("latency_ms.p50" in p
                   for p in validate_bench_report(broken))

    def test_rejects_bool_counter(self, payload):
        broken = json.loads(json.dumps(payload))
        broken["workloads"][0]["formats"]["flat"]["blocks_decoded"] = True
        assert any("blocks_decoded" in p
                   for p in validate_bench_report(broken))

    def test_rejects_empty_workloads(self):
        assert any("workloads" in p for p in validate_bench_report(
            {"schema_version": 1, "config": {}, "workloads": []}))


class TestSeedRecorded:
    """BENCH JSON must be reproducible: the workload seed is part of
    the schema, at top level, and must agree with the config block."""

    def test_seed_promoted_to_top_level(self, payload):
        assert payload["seed"] == payload["config"]["seed"]

    def test_missing_seed_rejected(self, payload):
        stripped = dict(payload)
        del stripped["seed"]
        assert any("seed" in problem
                   for problem in validate_bench_report(stripped))

    def test_bool_seed_rejected(self, payload):
        poisoned = dict(payload)
        poisoned["seed"] = True
        assert any("seed" in problem
                   for problem in validate_bench_report(poisoned))

    def test_seed_config_disagreement_rejected(self, payload):
        skewed = dict(payload)
        skewed["seed"] = payload["config"]["seed"] + 1
        assert any("seed" in problem
                   for problem in validate_bench_report(skewed))

    def test_nondefault_seed_lands_in_report(self):
        report = run_bench(BenchConfig(num_users=40, num_root_tweets=150,
                                       queries_per_workload=1, seed=99))
        assert report["seed"] == 99
        assert validate_bench_report(report) == []


class TestCommittedReport:
    def test_checked_in_bench_report_is_valid(self):
        with open("BENCH_query.json") as handle:
            payload = json.load(handle)
        assert validate_bench_report(payload) == []
        windowed = [w for w in payload["workloads"]
                    if w["name"] == "fig8_single_windowed"]
        assert windowed and windowed[0]["decoded_bytes_reduction"] >= 1.5


class TestCli:
    def test_bench_command(self, tmp_path, capsys):
        # --overhead-rounds 0 skips the telemetry-overhead measurement:
        # at this tiny scale the ratio is pure noise and would trip the
        # budget gate (the real budget is enforced on the committed
        # full-scale report by the perf contract).
        out = tmp_path / "bench.json"
        assert main(["bench", "--users", "60", "--roots", "300",
                     "--queries", "2", "--overhead-rounds", "0",
                     "--output", str(out)]) == 0
        with open(out) as handle:
            payload = json.load(handle)
        assert validate_bench_report(payload) == []
        assert "telemetry_overhead" not in payload
        assert "parity ok" in capsys.readouterr().out

    def test_bench_command_measures_overhead(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--users", "60", "--roots", "300",
                     "--queries", "2", "--overhead-rounds", "1",
                     "--max-overhead", "1000", "--output", str(out)]) == 0
        with open(out) as handle:
            payload = json.load(handle)
        assert validate_bench_report(payload) == []
        overhead = payload["telemetry_overhead"]
        assert overhead["within_budget"] is True
        assert overhead["overhead_ratio"] > 0
        capsys.readouterr()
