"""Tests for scatter-gather distributed query execution."""

import pytest

from repro.index.builder import IndexConfig
from repro.query.distributed import DistributedExecutor
from repro.query.engine import EngineConfig, TkLUSEngine


@pytest.fixture(scope="module")
def executor(engine):
    return DistributedExecutor(engine.index, engine.database,
                               engine.threads, engine.config.scoring,
                               engine.metric, max_workers=4)


def same_ranking(a, b):
    """uid order identical; scores equal up to float summation order."""
    assert len(a) == len(b)
    for (uid_a, score_a), (uid_b, score_b) in zip(a, b):
        assert uid_a == uid_b
        assert score_a == pytest.approx(score_b, rel=1e-9, abs=1e-12)


class TestEquivalence:
    @pytest.mark.parametrize("radius", [10.0, 30.0])
    def test_sum_matches_single_node(self, engine, executor, workload,
                                     radius):
        for spec in workload.specs(1)[:6]:
            query = workload.bind(spec, radius_km=radius, k=10)
            distributed = executor.search(query, aggregate="sum")
            single = engine.search_sum(query)
            same_ranking(distributed.users, single.users)

    def test_max_matches_unpruned_single_node(self, engine, executor,
                                              workload):
        unpruned = engine.processor("max", use_pruning=False)
        for spec in workload.specs(1)[:5]:
            query = workload.bind(spec, radius_km=25.0, k=10)
            distributed = executor.search(query, aggregate="max")
            engine.threads.clear_cache()
            single = unpruned.search(query)
            same_ranking(distributed.users, single.users)

    def test_multi_keyword_and(self, engine, executor, workload):
        from repro.core.model import Semantics
        for spec in workload.specs(2)[:4]:
            query = workload.bind(spec, radius_km=30.0,
                                  semantics=Semantics.AND)
            same_ranking(executor.search(query, aggregate="sum").users,
                         engine.search_sum(query).users)

    def test_temporal_queries_supported(self, engine, executor, workload,
                                        corpus):
        from repro.core.model import TkLUSQuery
        from repro.core.temporal import TemporalSpec, TimeWindow
        sids = [post.sid for post in corpus.posts]
        window = TimeWindow(sids[len(sids) // 4], sids[len(sids) // 2])
        base = workload.bind(workload.specs(1)[0], radius_km=25.0)
        query = TkLUSQuery(location=base.location, radius_km=25.0,
                           keywords=base.keywords, k=10,
                           temporal=TemporalSpec(window=window))
        same_ranking(executor.search(query, aggregate="sum").users,
                     engine.search_sum(query).users)


class TestScatterShape:
    def test_server_count_reported(self, executor, workload):
        query = workload.bind(workload.specs(1)[0], radius_km=25.0)
        result = executor.search(query)
        assert result.stats.servers_involved >= 1
        assert result.stats.partial_results == result.stats.servers_involved

    def test_invalid_aggregate(self, executor, workload):
        query = workload.bind(workload.specs(1)[0], radius_km=10.0)
        with pytest.raises(ValueError):
            executor.search(query, aggregate="median")

    def test_no_matching_cells(self, executor, engine):
        query = engine.make_query((-33.86, 151.21), 1.0,
                                  ["zzzunindexed"], k=5)
        result = executor.search(query)
        assert result.users == []
        assert result.stats.servers_involved == 0

    def test_range_partitioning_narrows_scatter(self, corpus, workload):
        """Under geohash range partitioning each query involves fewer
        servers than under hash partitioning."""
        hash_engine = TkLUSEngine.from_posts(
            corpus.posts,
            config=EngineConfig(index=IndexConfig(partitioning="hash",
                                                  num_reduce_tasks=8)),
            precompute_bounds=False)
        range_engine = TkLUSEngine.from_posts(
            corpus.posts,
            config=EngineConfig(index=IndexConfig(partitioning="range",
                                                  num_reduce_tasks=8)),
            precompute_bounds=False)
        hash_exec = DistributedExecutor(hash_engine.index,
                                        hash_engine.database,
                                        hash_engine.threads)
        range_exec = DistributedExecutor(range_engine.index,
                                         range_engine.database,
                                         range_engine.threads)
        hash_servers = 0
        range_servers = 0
        for spec in workload.specs(1)[:8]:
            query = workload.bind(spec, radius_km=15.0)
            hash_servers += hash_exec.search(query).stats.servers_involved
            range_servers += range_exec.search(query).stats.servers_involved
        assert range_servers <= hash_servers

    def test_parallel_matches_serial_execution(self, engine, workload):
        serial = DistributedExecutor(engine.index, engine.database,
                                     engine.threads, engine.config.scoring,
                                     engine.metric, max_workers=1)
        parallel = DistributedExecutor(engine.index, engine.database,
                                       engine.threads, engine.config.scoring,
                                       engine.metric, max_workers=8)
        for spec in workload.specs(1)[:5]:
            query = workload.bind(spec, radius_km=30.0)
            same_ranking(serial.search(query).users,
                         parallel.search(query).users)
