"""Crash-safety of the durable compaction path in ``IngestService``.

The generic kill-point matrix (``test_ingest_recovery.py``) already
drives every compaction failpoint at early/late timings and asserts
byte-identical answers; this file checks the *mechanics* behind that
guarantee — which directories each crash shape leaves behind, that
recovery classifies them correctly (orphan output vs. superseded
inputs), manifest lineage, and pin-deferred reclamation.
"""

import json
import os

import pytest

from repro.compaction import CompactionConfig
from repro.data.generator import generate_corpus
from repro.ingest import (
    Failpoints,
    IngestConfig,
    IngestService,
    SimulatedCrash,
)

FLUSH_EVERY = 50


@pytest.fixture(scope="module")
def posts():
    corpus = generate_corpus(num_users=50, num_root_tweets=200, seed=7)
    return corpus.posts[:140]


def _service(directory, failpoints=None, enabled=True):
    return IngestService(
        directory,
        ingest_config=IngestConfig(flush_posts=FLUSH_EVERY),
        failpoints=failpoints,
        compaction_config=CompactionConfig(enabled=enabled, min_inputs=2,
                                           max_inputs=4))


def _append_until_crash(service, posts):
    """Append until the armed failpoint fires; returns the position of
    the next unacknowledged post."""
    for position, post in enumerate(posts):
        try:
            service.append(post)
        except SimulatedCrash as crash:
            assert crash.point.startswith("compaction.")
            return position + 1  # the triggering append was acknowledged
    raise AssertionError("failpoint never fired")


def _answers(service, posts):
    engine = service.build_query_engine()
    query = engine.make_query(posts[0].location, 25.0,
                              ["hotel", "pizza"], k=8)
    return (len(service.database), engine.search_max(query).users,
            engine.search_sum(query).users)


def _manifest(directory):
    with open(os.path.join(directory, "MANIFEST.json"),
              encoding="utf-8") as handle:
        return json.load(handle)


def _gen_dirs(directory):
    root = os.path.join(directory, "generations")
    return sorted(os.listdir(root)) if os.path.isdir(root) else []


@pytest.fixture(scope="module")
def reference(posts, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("compaction") / "reference")
    service = _service(directory)
    for post in posts:
        service.append(post)
    answers = _answers(service, posts)
    service.close()
    return answers


class TestCrashShapes:
    @pytest.mark.parametrize("point", ["compaction.merge.mid",
                                       "compaction.pre_commit"])
    def test_pre_commit_crash_leaves_orphan_output(self, posts, tmp_path,
                                                   reference, point):
        """Before the manifest rename the merge output is an orphan
        directory: recovery must delete it and keep the inputs."""
        directory = str(tmp_path / "crashed")
        failpoints = Failpoints()
        failpoints.arm(point)
        service = _service(directory, failpoints=failpoints)
        position = _append_until_crash(service, posts)

        committed = {f"gen-{int(e['number']):05d}"
                     for e in _manifest(directory)["generations"]}
        on_disk = set(_gen_dirs(directory))
        assert on_disk - committed, "crash should leave the merge output"

        recovered = _service(directory)
        assert recovered.recovery.orphan_generations_removed >= 1
        assert set(_gen_dirs(directory)) == committed  # inputs survived
        for post in posts[position:]:
            recovered.append(post)
        assert _answers(recovered, posts) == reference
        recovered.close()

    def test_pre_reclaim_crash_leaves_superseded_inputs(self, posts,
                                                        tmp_path, reference):
        """After the manifest rename the inputs are the orphans: the
        merge is committed, so recovery must load the output and delete
        the superseded input directories."""
        directory = str(tmp_path / "crashed")
        failpoints = Failpoints()
        failpoints.arm("compaction.pre_reclaim")
        service = _service(directory, failpoints=failpoints)
        position = _append_until_crash(service, posts)

        manifest = _manifest(directory)
        merged = [e for e in manifest["generations"]
                  if e["source_generations"]]
        assert len(merged) == 1
        assert merged[0]["tier"] == 1
        superseded = {f"gen-{int(n):05d}"
                      for n in merged[0]["source_generations"]}
        assert superseded <= set(_gen_dirs(directory))

        recovered = _service(directory)
        assert recovered.recovery.orphan_generations_removed \
            >= len(superseded)
        assert not superseded & set(_gen_dirs(directory))
        for post in posts[position:]:
            recovered.append(post)
        assert _answers(recovered, posts) == reference
        recovered.close()

    def test_double_crash_across_one_merge(self, posts, tmp_path, reference):
        """Crash mid-merge, recover, then crash again after the retried
        merge's commit — recovery must still converge byte-identically."""
        directory = str(tmp_path / "double")
        failpoints = Failpoints()
        failpoints.arm("compaction.merge.mid")
        service = _service(directory, failpoints=failpoints)
        crashes = 0
        position = 0
        while position < len(posts):
            try:
                service.append(posts[position])
                position += 1
            except SimulatedCrash:
                crashes += 1
                position += 1  # compaction crashes post-acknowledgement
                failpoints = Failpoints()
                if crashes == 1:
                    failpoints.arm("compaction.pre_reclaim")
                service = _service(directory, failpoints=failpoints)
        assert crashes == 2
        assert _answers(service, posts) == reference
        service.close()


class TestCommitMechanics:
    def test_manifest_lineage_and_tiers(self, posts, tmp_path):
        directory = str(tmp_path / "lineage")
        service = _service(directory, enabled=False)
        for post in posts:
            service.append(post)
        inputs = [entry["number"]
                  for entry in _manifest(directory)["generations"]]
        assert len(inputs) == 2
        assert service.compact() == 1
        manifest = _manifest(directory)
        (entry,) = manifest["generations"]
        assert entry["tier"] == 1
        assert sorted(entry["source_generations"]) == sorted(inputs)
        assert entry["post_count"] == 2 * FLUSH_EVERY
        seqs = [entry["seq"]]
        assert all(seq < manifest["next_seq"] for seq in seqs)
        assert service.tier_breakdown()["1"]["generations"] == 1
        service.close()

    def test_pinned_reader_defers_directory_reclaim(self, posts, tmp_path):
        directory = str(tmp_path / "pinned")
        service = _service(directory, enabled=False)
        for post in posts:
            service.append(post)
        before = set(_gen_dirs(directory))
        pin = service.generations.pin()
        service.compact()
        # The pinned reader still reaches the superseded inputs: their
        # directories must survive until the pin is released.
        assert before <= set(_gen_dirs(directory))
        assert service.generations.pending_reclaim() == len(before)
        pin.release()
        assert service.generations.pending_reclaim() == 0
        assert not before & set(_gen_dirs(directory))
        service.close()

    def test_merge_preserves_answers_and_database(self, posts, tmp_path,
                                                  reference):
        directory = str(tmp_path / "identity")
        service = _service(directory, enabled=False)
        for post in posts:
            service.append(post)
        before = _answers(service, posts)
        merges = service.compact()
        assert merges >= 1
        assert _answers(service, posts) == before == reference
        service.close()

    def test_recovered_service_sees_compacted_shape(self, posts, tmp_path):
        directory = str(tmp_path / "reopen")
        service = _service(directory, enabled=False)
        for post in posts:
            service.append(post)
        service.compact()
        expected = _answers(service, posts)
        service.close()

        recovered = _service(directory, enabled=False)
        assert _answers(recovered, posts) == expected
        status = recovered.status()
        assert [gen["tier"] for gen in status["generations"]] == [1]
        assert status["compaction"]["debt"] == 0
        recovered.close()
