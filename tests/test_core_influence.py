"""Tests for the social-influence (PageRank) extension."""

import pytest

from repro.core.influence import (
    InfluenceConfig,
    InfluenceModel,
    blend_influence,
)
from repro.core.model import Dataset, EdgeKind, Post, SocialNetwork


def star_network(center=1, spokes=(2, 3, 4, 5)):
    """Everyone replies to the centre."""
    network = SocialNetwork()
    sid = 100
    for spoke in spokes:
        network.add_interaction(spoke, center, sid, EdgeKind.REPLY)
        sid += 1
    return network


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(damping=0.0), dict(damping=1.0),
        dict(max_iterations=0), dict(forward_weight=0.0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            InfluenceConfig(**kwargs)


class TestPageRank:
    def test_empty_network(self):
        model = InfluenceModel(SocialNetwork())
        assert len(model) == 0
        assert model.influence(42) == 0.0

    def test_star_center_dominates(self):
        model = InfluenceModel(star_network())
        assert model.influence(1) == 1.0  # normalised peak
        for spoke in (2, 3, 4, 5):
            assert model.influence(spoke) < model.influence(1)

    def test_spokes_symmetric(self):
        model = InfluenceModel(star_network())
        values = {model.influence(spoke) for spoke in (2, 3, 4, 5)}
        assert len(values) == 1

    def test_chain_monotone(self):
        """a -> b -> c: influence grows along the chain."""
        network = SocialNetwork()
        network.add_interaction(1, 2, 10, EdgeKind.REPLY)
        network.add_interaction(2, 3, 11, EdgeKind.REPLY)
        model = InfluenceModel(network)
        assert model.influence(3) > model.influence(2) > model.influence(1)

    def test_forward_weighting(self):
        """A forward endorses more than a reply under the default config."""
        network = SocialNetwork()
        # User 1 interacts with 2 (reply) and 3 (forward), equally often.
        network.add_interaction(1, 2, 10, EdgeKind.REPLY)
        network.add_interaction(1, 3, 11, EdgeKind.FORWARD)
        model = InfluenceModel(network)
        assert model.influence(3) > model.influence(2)

    def test_interaction_count_matters(self):
        network = SocialNetwork()
        for sid in range(5):
            network.add_interaction(1, 2, sid, EdgeKind.REPLY)
        network.add_interaction(1, 3, 99, EdgeKind.REPLY)
        model = InfluenceModel(network)
        assert model.influence(2) > model.influence(3)

    def test_scores_in_unit_interval(self, dataset):
        model = InfluenceModel.from_dataset(dataset)
        for _uid, value in model.top(50):
            assert 0.0 <= value <= 1.0
        assert model.top(1)[0][1] == 1.0

    def test_convergence_on_real_dataset(self, dataset):
        tight = InfluenceModel.from_dataset(
            dataset, InfluenceConfig(max_iterations=200, tolerance=1e-12))
        loose = InfluenceModel.from_dataset(
            dataset, InfluenceConfig(max_iterations=200, tolerance=1e-6))
        for uid, value in tight.top(20):
            assert loose.influence(uid) == pytest.approx(value, abs=1e-3)

    def test_viral_thread_roots_are_influential(self, corpus, dataset):
        """Users whose tweets spawned the largest cascades should rank
        high on influence."""
        model = InfluenceModel.from_dataset(dataset)
        reply_counts = {}
        by_sid = {p.sid: p for p in corpus.posts}
        for post in corpus.posts:
            if post.rsid is not None:
                root_author = by_sid[post.rsid].uid
                reply_counts[root_author] = reply_counts.get(root_author, 0) + 1
        most_replied = max(reply_counts, key=reply_counts.get)
        influential = {uid for uid, _v in model.top(len(model) // 5)}
        assert most_replied in influential


class TestBlend:
    def test_beta_zero_is_identity_order(self):
        ranked = [(1, 0.9), (2, 0.5), (3, 0.1)]
        model = InfluenceModel(star_network())
        assert blend_influence(ranked, model, beta=0.0) == ranked

    def test_beta_one_is_pure_influence(self):
        ranked = [(2, 0.9), (1, 0.1)]  # spoke ranked above center
        model = InfluenceModel(star_network())
        blended = blend_influence(ranked, model, beta=1.0)
        assert blended[0][0] == 1  # the star centre wins

    def test_invalid_beta(self):
        model = InfluenceModel(star_network())
        with pytest.raises(ValueError):
            blend_influence([], model, beta=1.5)

    def test_blend_with_engine_results(self, engine, workload, dataset):
        model = InfluenceModel.from_dataset(dataset)
        query = workload.bind(workload.specs(1)[0], radius_km=20.0, k=10)
        result = engine.search_max(query)
        blended = blend_influence(result.users, model, beta=0.3)
        assert len(blended) == len(result.users)
        assert {uid for uid, _s in blended} == {uid for uid, _s in result.users}
        scores = [score for _uid, score in blended]
        assert scores == sorted(scores, reverse=True)
