"""Tests for Z-order (Morton) utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.geo import zorder as z

BITS = 8
cells = st.integers(min_value=0, max_value=(1 << BITS) - 1)


class TestInterleave:
    @given(cells, cells)
    def test_roundtrip(self, x, y):
        code = z.interleave(x, y, BITS)
        assert z.deinterleave(code, BITS) == (x, y)

    def test_known_values(self):
        assert z.interleave(0, 0, 4) == 0
        assert z.interleave(1, 0, 4) == 1
        assert z.interleave(0, 1, 4) == 2
        assert z.interleave(1, 1, 4) == 3
        assert z.interleave(2, 0, 4) == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            z.interleave(-1, 0, 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            z.interleave(16, 0, 4)

    @given(cells, cells, cells, cells)
    def test_order_preserved_within_quadrant(self, x1, y1, x2, y2):
        """Within the same quadrant prefix, Morton order refines point
        order consistently (monotone in the high bits)."""
        c1 = z.interleave(x1, y1, BITS)
        c2 = z.interleave(x2, y2, BITS)
        if (x1 >> 4, y1 >> 4) == (x2 >> 4, y2 >> 4):
            # Same 16x16 quadrant: high bits of codes agree.
            assert (c1 >> 8) == (c2 >> 8)


class TestLatLonQuantisation:
    def test_corner_cells(self):
        assert z.lat_lon_to_cell(-90.0, -180.0, 4) == (0, 0)
        assert z.lat_lon_to_cell(90.0, 180.0, 4) == (15, 15)

    def test_center(self):
        x, y = z.lat_lon_to_cell(0.0, 0.0, 4)
        assert (x, y) == (8, 8)

    @given(st.floats(min_value=-90, max_value=90, allow_nan=False),
           st.floats(min_value=-180, max_value=180, allow_nan=False))
    def test_in_range(self, lat, lon):
        x, y = z.lat_lon_to_cell(lat, lon, 6)
        assert 0 <= x < 64 and 0 <= y < 64


class TestRanges:
    def test_full_rectangle_is_one_range(self):
        n = 1 << 4
        ranges = z.zorder_ranges(0, 0, n - 1, n - 1, bits=4)
        assert ranges == [(0, n * n - 1)]

    def test_single_cell(self):
        ranges = z.zorder_ranges(3, 5, 3, 5, bits=4)
        code = z.interleave(3, 5, 4)
        assert ranges == [(code, code)]

    def test_empty_rectangle(self):
        assert z.zorder_ranges(5, 5, 4, 4, bits=4) == []

    @given(st.integers(0, 15), st.integers(0, 15),
           st.integers(0, 15), st.integers(0, 15))
    def test_cover_complete_and_ordered(self, x1, y1, x2, y2):
        min_x, max_x = sorted((x1, x2))
        min_y, max_y = sorted((y1, y2))
        ranges = z.zorder_ranges(min_x, min_y, max_x, max_y, bits=4,
                                 max_ranges=1000)
        covered = set()
        for lo, hi in ranges:
            assert lo <= hi
            covered.update(range(lo, hi + 1))
        wanted = {z.interleave(x, y, 4)
                  for x in range(min_x, max_x + 1)
                  for y in range(min_y, max_y + 1)}
        assert wanted <= covered
        # With an unconstrained budget the cover is exact.
        assert covered == wanted
        # Ranges are sorted and disjoint.
        for (_lo1, hi1), (lo2, _hi2) in zip(ranges, ranges[1:]):
            assert hi1 < lo2

    def test_budget_merges_ranges(self):
        ranges = z.zorder_ranges(1, 1, 14, 14, bits=4, max_ranges=4)
        assert len(ranges) <= 4
        # Still complete.
        covered = set()
        for lo, hi in ranges:
            covered.update(range(lo, hi + 1))
        wanted = {z.interleave(x, y, 4)
                  for x in range(1, 15) for y in range(1, 15)}
        assert wanted <= covered


class TestMergeRanges:
    def test_adjacent_merge(self):
        assert z.merge_ranges([(0, 3), (4, 7)]) == [(0, 7)]

    def test_gap_preserved(self):
        assert z.merge_ranges([(0, 3), (5, 7)]) == [(0, 3), (5, 7)]

    def test_overlap_merge(self):
        assert z.merge_ranges([(0, 5), (3, 7)]) == [(0, 7)]


class TestIterCodes:
    def test_iterates_all(self):
        assert list(z.iter_codes([(0, 2), (5, 6)])) == [0, 1, 2, 5, 6]
