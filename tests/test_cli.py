"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.jsonl"
    exit_code = main(["generate", "-o", str(path),
                      "--users", "80", "--roots", "300", "--seed", "5"])
    assert exit_code == 0
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_query_requires_target(self):
        with pytest.raises(SystemExit):
            main(["query", "--lat", "0", "--lon", "0",
                  "--radius", "5", "--keywords", "x"])


class TestGenerate(object):
    def test_generates_jsonl(self, corpus_file):
        assert os.path.getsize(corpus_file) > 0
        with open(corpus_file) as handle:
            first = handle.readline()
        assert first.startswith("{")

    def test_deterministic(self, tmp_path, corpus_file):
        other = tmp_path / "again.jsonl"
        main(["generate", "-o", str(other),
              "--users", "80", "--roots", "300", "--seed", "5"])
        assert open(corpus_file).read() == open(str(other)).read()


class TestStats:
    def test_prints_summary(self, corpus_file, capsys):
        assert main(["stats", corpus_file, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "posts:" in out and "top keywords:" in out
        assert "restaur" in out  # rank-1 keyword


class TestBuildAndQuery:
    def test_build_then_query(self, corpus_file, tmp_path, capsys):
        deployment = str(tmp_path / "deployment")
        assert main(["build", corpus_file, "-o", deployment]) == 0
        capsys.readouterr()
        assert main(["query", deployment,
                     "--lat", "43.65", "--lon", "-79.38",
                     "--radius", "25", "--keywords", "restaurant",
                     "--k", "3", "--method", "sum"]) == 0
        out = capsys.readouterr().out
        assert "#1" in out and "user" in out

    def test_query_from_corpus_directly(self, corpus_file, capsys):
        assert main(["query", "--corpus", corpus_file,
                     "--lat", "40.71", "--lon", "-74.00",
                     "--radius", "25", "--keywords", "game",
                     "--semantics", "or"]) == 0
        out = capsys.readouterr().out
        assert "user" in out or "no local users" in out

    def test_and_semantics_flag(self, corpus_file, capsys):
        assert main(["query", "--corpus", corpus_file,
                     "--lat", "40.71", "--lon", "-74.00",
                     "--radius", "30", "--keywords", "game", "night",
                     "--semantics", "and"]) == 0

    def test_empty_corpus_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["stats", str(empty)])


class TestExplain:
    def test_all_paths_print_plans(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        # One plan block per execution path.
        assert out.count("plan[") >= 6  # incl. the nested server sub-plan
        for token in ("flavour=indexed", "flavour=scan",
                      "flavour=distributed", "federated",
                      "Cover(", "DatasetScan(", "ScatterGather(",
                      "PlatformSearch("):
            assert token in out

    def test_single_path_with_flags(self, capsys):
        assert main(["explain", "--method", "max", "--semantics", "and",
                     "--no-pruning", "--temporal"]) == 0
        out = capsys.readouterr().out
        assert "pruning=off" in out
        assert "BoundsPrune" not in out
        assert "TemporalClip" in out
        assert "semantics=and" in out

    def test_pruned_max_shows_bound_stage(self, capsys):
        assert main(["explain", "--method", "max"]) == 0
        out = capsys.readouterr().out
        assert "BoundsPrune" in out
        assert "Def 11" in out


class TestIngestCommands:
    def test_ingest_synthetic_then_status(self, tmp_path, capsys):
        directory = str(tmp_path / "stream")
        assert main(["ingest", directory, "--users", "40", "--roots", "200",
                     "--flush-posts", "80"]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out and "wal:" in out

        assert main(["ingest-status", directory]) == 0
        out = capsys.readouterr().out
        assert "generations:" in out
        assert "unflushed WAL records" in out

    def test_ingest_from_corpus_file_and_reopen(self, corpus_file,
                                                tmp_path, capsys):
        # Two disjoint halves of one corpus: the second run must recover
        # the first half's state before appending the rest.
        with open(corpus_file) as handle:
            lines = handle.readlines()
        first, second = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        with open(first, "w") as handle:
            handle.writelines(lines[:len(lines) // 2])
        with open(second, "w") as handle:
            handle.writelines(lines[len(lines) // 2:])

        directory = str(tmp_path / "fromfile")
        assert main(["ingest", directory, "--corpus", first,
                     "--flush-posts", "100", "--flush"]) == 0
        capsys.readouterr()
        assert main(["ingest", directory, "--corpus", second,
                     "--flush-posts", "100"]) == 0
        out = capsys.readouterr().out
        assert "recovered on open" in out

    def test_ingest_status_json_and_missing(self, tmp_path, capsys):
        import json as json_mod
        directory = str(tmp_path / "jsonly")
        assert main(["ingest", directory, "--users", "20", "--roots", "60",
                     "--json"]) == 0
        status = json_mod.loads(capsys.readouterr().out)
        assert status["wal"]["appends"] > 0

        assert main(["ingest-status", str(tmp_path / "missing")]) == 2


class TestTopCommand:
    def test_renders_requested_frames(self, capsys):
        assert main(["top", "--users", "40", "--roots", "160",
                     "--frames", "2", "--interval", "0.05",
                     "--flush-posts", "50", "--no-clear"]) == 0
        out = capsys.readouterr().out
        assert out.count("repro top") == 2
        assert "SLO" in out and "queries" in out and "health" in out
        # --no-clear means no ANSI clear-screen escapes in the stream.
        assert "\x1b[2J" not in out


class TestPerfContractCommand:
    @pytest.fixture()
    def reports(self, tmp_path):
        import json as json_mod
        from tests.test_eval_contract import (make_ingest_payload,
                                              make_query_payload)
        query = tmp_path / "q.json"
        ingest = tmp_path / "i.json"
        query.write_text(json_mod.dumps(make_query_payload()))
        ingest.write_text(json_mod.dumps(make_ingest_payload()))
        return query, ingest, tmp_path / "baseline.json"

    def test_write_then_check_holds(self, reports, capsys):
        query, ingest, baseline = reports
        argv = ["perf-contract", "--query-report", str(query),
                "--ingest-report", str(ingest), "--baseline", str(baseline)]
        assert main(argv + ["--write-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "perf contract holds" in err

    def test_regression_fails_with_violation(self, reports, capsys):
        import json as json_mod
        from tests.test_eval_contract import make_ingest_payload
        query, ingest, baseline = reports
        argv = ["perf-contract", "--query-report", str(query),
                "--ingest-report", str(ingest), "--baseline", str(baseline)]
        assert main(argv + ["--write-baseline"]) == 0
        ingest.write_text(json_mod.dumps(make_ingest_payload(aps=1000.0)))
        capsys.readouterr()
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "contract violation" in err
        assert "appends_per_second" in err

    def test_json_output(self, reports, capsys):
        import json as json_mod
        query, ingest, baseline = reports
        argv = ["perf-contract", "--query-report", str(query),
                "--ingest-report", str(ingest), "--baseline", str(baseline)]
        assert main(argv + ["--write-baseline"]) == 0
        capsys.readouterr()
        assert main(argv + ["--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["problems"] == []
        assert "query.telemetry.overhead_ratio" in payload["headlines"]

    def test_missing_baseline_is_exit_2(self, reports, capsys):
        query, ingest, baseline = reports
        assert main(["perf-contract", "--query-report", str(query),
                     "--ingest-report", str(ingest),
                     "--baseline", str(baseline)]) == 2
        assert "--write-baseline" in capsys.readouterr().err

    def test_missing_reports_is_exit_2(self, tmp_path, capsys):
        assert main(["perf-contract",
                     "--query-report", str(tmp_path / "none.json"),
                     "--ingest-report", str(tmp_path / "none2.json"),
                     "--baseline", str(tmp_path / "b.json")]) == 2
