"""Tests for AND/OR candidate formation."""

from repro.core.model import Semantics
from repro.query.semantics import Candidate, candidates_from_postings


def per_cell(**cells):
    """Helper: cells maps cell name -> {term: postings}."""
    return dict(cells)


class TestORSemantics:
    def test_union_within_cell(self):
        cells = {"aaaa": {"hotel": [(1, 1), (2, 2)], "cafe": [(2, 1), (3, 1)]}}
        got = candidates_from_postings(cells, ["cafe", "hotel"], Semantics.OR)
        by_tid = {c.tid: c for c in got}
        assert set(by_tid) == {1, 2, 3}
        assert by_tid[2].match_count == 3  # 2 hotel + 1 cafe
        assert by_tid[2].terms_matched == 2
        assert by_tid[1].terms_matched == 1

    def test_across_cells_concatenated(self):
        cells = {
            "aaaa": {"hotel": [(1, 1)]},
            "bbbb": {"hotel": [(9, 1)]},
        }
        got = candidates_from_postings(cells, ["hotel"], Semantics.OR)
        assert [c.tid for c in got] == [1, 9]

    def test_missing_term_in_cell_ok(self):
        cells = {"aaaa": {"hotel": [(1, 1)]}}
        got = candidates_from_postings(cells, ["hotel", "cafe"], Semantics.OR)
        assert len(got) == 1


class TestANDSemantics:
    def test_intersection_within_cell(self):
        cells = {"aaaa": {"hotel": [(1, 1), (2, 2)], "cafe": [(2, 1), (3, 1)]}}
        got = candidates_from_postings(cells, ["cafe", "hotel"], Semantics.AND)
        assert len(got) == 1
        assert got[0].tid == 2
        assert got[0].match_count == 3
        assert got[0].terms_matched == 2

    def test_cell_missing_a_term_excluded(self):
        cells = {
            "aaaa": {"hotel": [(1, 1)]},  # no cafe postings at all
            "bbbb": {"hotel": [(5, 1)], "cafe": [(5, 2)]},
        }
        got = candidates_from_postings(cells, ["cafe", "hotel"], Semantics.AND)
        assert [c.tid for c in got] == [5]

    def test_and_returns_subset_of_or(self):
        cells = {
            "aaaa": {"hotel": [(1, 1), (2, 1)], "cafe": [(2, 1), (4, 3)]},
            "bbbb": {"hotel": [(7, 2)], "cafe": [(8, 1)]},
        }
        and_tids = {c.tid for c in candidates_from_postings(
            cells, ["cafe", "hotel"], Semantics.AND)}
        or_tids = {c.tid for c in candidates_from_postings(
            cells, ["cafe", "hotel"], Semantics.OR)}
        assert and_tids <= or_tids
        assert and_tids == {2}
        assert or_tids == {1, 2, 4, 7, 8}


class TestOrdering:
    def test_cells_visited_in_zorder(self):
        cells = {"zzzz": {"hotel": [(1, 1)]}, "aaaa": {"hotel": [(2, 1)]}}
        got = candidates_from_postings(cells, ["hotel"], Semantics.OR)
        assert [c.tid for c in got] == [2, 1]  # aaaa first

    def test_empty_input(self):
        assert candidates_from_postings({}, ["hotel"], Semantics.OR) == []
        assert candidates_from_postings({}, ["hotel"], Semantics.AND) == []


class TestCandidate:
    def test_frozen_value_object(self):
        candidate = Candidate(1, 2, 1)
        assert candidate.tid == 1 and candidate.match_count == 2
