"""Additional edge-case tests for postings operations and the hybrid
index under adversarial inputs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.postings import (
    _gallop,
    intersect_many,
    intersect_two,
    union_many,
)


class TestGallop:
    def test_finds_first_geq(self):
        postings = [(2, 1), (4, 1), (8, 1), (16, 1)]
        assert _gallop(postings, 1, 0) == 0
        assert _gallop(postings, 2, 0) == 0
        assert _gallop(postings, 3, 0) == 1
        assert _gallop(postings, 16, 0) == 3
        assert _gallop(postings, 17, 0) == 4

    def test_start_beyond_end(self):
        assert _gallop([(1, 1)], 0, 5) == 5

    def test_respects_start(self):
        postings = [(1, 1), (3, 1), (5, 1)]
        assert _gallop(postings, 1, 2) == 2

    @given(st.lists(st.integers(0, 1000), unique=True, max_size=80),
           st.integers(0, 1000),
           st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_matches_linear_scan(self, tids, target, start):
        postings = [(tid, 1) for tid in sorted(tids)]
        start = min(start, len(postings))
        got = _gallop(postings, target, start)
        expected = start
        while expected < len(postings) and postings[expected][0] < target:
            expected += 1
        assert got == expected


class TestIntersectionAlgebra:
    lists3 = st.lists(
        st.lists(st.tuples(st.integers(0, 200), st.integers(1, 3)),
                 max_size=40).map(lambda p: sorted(dict(p).items())),
        min_size=2, max_size=3)

    @given(lists3)
    @settings(max_examples=40, deadline=None)
    def test_intersect_commutative_on_tids(self, lists):
        forward = {tid for tid, _tfs in intersect_many(lists)}
        backward = {tid for tid, _tfs in intersect_many(lists[::-1])}
        assert forward == backward

    @given(lists3)
    @settings(max_examples=40, deadline=None)
    def test_intersection_subset_of_union(self, lists):
        inter = {tid for tid, _tfs in intersect_many(lists)}
        union = {tid for tid, _tfs in union_many(lists)}
        assert inter <= union

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 3)),
                    max_size=40).map(lambda p: sorted(dict(p).items())))
    @settings(max_examples=40, deadline=None)
    def test_self_intersection_identity(self, postings):
        got = intersect_two(postings, postings)
        assert [(tid, tf) for tid, tf, _tf2 in got] == postings

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 3)),
                    max_size=40).map(lambda p: sorted(dict(p).items())))
    @settings(max_examples=40, deadline=None)
    def test_union_with_empty_is_identity(self, postings):
        got = union_many([postings, []])
        assert [(tid, tfs[0]) for tid, tfs in got] == postings
