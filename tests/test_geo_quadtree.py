"""Tests for the point quadtree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.distance import haversine_km
from repro.geo.quadtree import QuadTree, Rect, WORLD

points = st.lists(
    st.tuples(st.floats(min_value=-89, max_value=89, allow_nan=False),
              st.floats(min_value=-179, max_value=179, allow_nan=False)),
    min_size=0, max_size=200)


class TestRect:
    def test_contains_boundary(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.contains(0, 0)
        assert rect.contains(10, 10)
        assert not rect.contains(10.001, 5)

    def test_intersects(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersects(Rect(5, 5, 15, 15))
        assert a.intersects(Rect(10, 10, 20, 20))  # touching counts
        assert not a.intersects(Rect(11, 11, 20, 20))

    def test_quadrants_partition(self):
        rect = Rect(0, 0, 10, 10)
        quadrants = rect.quadrants()
        assert len(quadrants) == 4
        # Union of quadrant areas equals parent area.
        area = sum((q.max_lat - q.min_lat) * (q.max_lon - q.min_lon)
                   for q in quadrants)
        assert abs(area - 100.0) < 1e-9


class TestQuadTree:
    def test_insert_and_len(self):
        tree = QuadTree(capacity=4)
        for i in range(20):
            tree.insert(i * 1.0, i * 1.0, i)
        assert len(tree) == 20

    def test_out_of_bounds_rejected(self):
        tree = QuadTree()
        with pytest.raises(ValueError):
            tree.insert(95.0, 0.0, "x")

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            QuadTree(capacity=0)
        with pytest.raises(ValueError):
            QuadTree(max_depth=0)

    def test_splits_on_overflow(self):
        tree = QuadTree(capacity=2)
        for i in range(50):
            tree.insert(i * 0.1, i * 0.1, i)
        assert tree.depth() > 0

    def test_duplicate_points_allowed(self):
        tree = QuadTree(capacity=2, max_depth=3)
        for i in range(10):
            tree.insert(5.0, 5.0, i)
        assert len(tree) == 10
        got = list(tree.query_rect(Rect(4, 4, 6, 6)))
        assert len(got) == 10

    @given(points)
    @settings(max_examples=30, deadline=None)
    def test_rect_query_matches_scan(self, pts):
        tree = QuadTree(capacity=8)
        for index, (lat, lon) in enumerate(pts):
            tree.insert(lat, lon, index)
        rect = Rect(-30, -60, 40, 70)
        got = sorted(v for _lat, _lon, v in tree.query_rect(rect))
        expected = sorted(i for i, (lat, lon) in enumerate(pts)
                          if rect.contains(lat, lon))
        assert got == expected

    @given(points)
    @settings(max_examples=30, deadline=None)
    def test_circle_query_matches_scan(self, pts):
        tree = QuadTree(capacity=8)
        for index, (lat, lon) in enumerate(pts):
            tree.insert(lat, lon, index)
        center = (10.0, 10.0)
        radius = 800.0
        got = sorted(v for _lat, _lon, v in tree.query_circle(center, radius))
        expected = sorted(i for i, p in enumerate(pts)
                          if haversine_km(center, p) <= radius)
        assert got == expected

    def test_iteration_yields_all(self):
        tree = QuadTree(capacity=3)
        rng = random.Random(5)
        inserted = set()
        for i in range(100):
            lat, lon = rng.uniform(-80, 80), rng.uniform(-170, 170)
            tree.insert(lat, lon, i)
            inserted.add(i)
        assert {v for _a, _b, v in tree} == inserted

    def test_max_depth_respected(self):
        tree = QuadTree(capacity=1, max_depth=3)
        for i in range(100):
            tree.insert(1.0 + i * 1e-9, 1.0, i)  # nearly identical points
        assert tree.depth() <= 3
        assert len(tree) == 100
