"""Tests for the bounded admission queue: shedding, lanes, lifecycle."""

import threading

import pytest

from repro.core.model import TkLUSQuery
from repro.serve import AdmissionConfig, AdmissionQueue, ShedError


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_query(keywords=("hotel",), radius_km=5.0):
    return TkLUSQuery(location=(40.0, -74.0), radius_km=radius_km,
                      keywords=frozenset(keywords), k=5)


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionConfig(queue_delay_budget_ms=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(normal_lane_every=1)

    def test_fast_lane_classification(self):
        config = AdmissionConfig(fast_lane_max_keywords=1,
                                 fast_lane_max_radius_km=10.0)
        assert config.is_fast(make_query(("hotel",), 5.0))
        assert not config.is_fast(make_query(("hotel", "beach"), 5.0))
        assert not config.is_fast(make_query(("hotel",), 50.0))


class TestAdmissionQueue:
    def test_fifo_within_a_lane(self):
        queue = AdmissionQueue()
        queue.offer("a", fast=False)
        queue.offer("b", fast=False)
        assert queue.take(timeout=0) == "a"
        assert queue.take(timeout=0) == "b"

    def test_fast_lane_preferred(self):
        queue = AdmissionQueue()
        queue.offer("slow", fast=False)
        queue.offer("quick", fast=True)
        assert queue.take(timeout=0) == "quick"
        assert queue.take(timeout=0) == "slow"

    def test_anti_starvation_rotation(self):
        # Every ``normal_lane_every``-th take prefers the normal lane,
        # so a saturated fast lane cannot starve it.
        queue = AdmissionQueue(AdmissionConfig(normal_lane_every=4))
        for index in range(8):
            queue.offer(f"fast-{index}", fast=True)
        queue.offer("normal-0", fast=False)
        taken = [queue.take(timeout=0) for _ in range(5)]
        assert taken[3] == "normal-0"
        assert all(item.startswith("fast-") for item in taken[:3])

    def test_depth_bound_sheds(self):
        queue = AdmissionQueue(AdmissionConfig(max_queue_depth=2))
        queue.offer("a", fast=False)
        queue.offer("b", fast=False)
        with pytest.raises(ShedError):
            queue.offer("c", fast=False)
        assert queue.stats()["shed"] == 1
        assert queue.depth() == 2

    def test_delay_budget_sheds_with_retry_after(self):
        clock = FakeClock()
        queue = AdmissionQueue(
            AdmissionConfig(max_queue_depth=100,
                            queue_delay_budget_ms=500.0),
            workers=1, clock=clock)
        queue.observe_service_time(1.0)   # EWMA: 1s per query
        queue.offer("a", fast=False)      # depth 0 at admission: fine
        # Next arrival sees an estimated 1s wait > 500ms budget.
        with pytest.raises(ShedError) as info:
            queue.offer("b", fast=False)
        assert info.value.retry_after_seconds == pytest.approx(0.5)

    def test_shedding_off_is_unbounded(self):
        queue = AdmissionQueue(AdmissionConfig(max_queue_depth=2,
                                               shedding=False))
        queue.observe_service_time(10.0)
        for index in range(50):
            queue.offer(index, fast=False)
        assert queue.depth() == 50
        assert queue.stats()["shed"] == 0

    def test_service_time_ewma_converges(self):
        queue = AdmissionQueue()
        queue.observe_service_time(1.0)
        for _ in range(50):
            queue.observe_service_time(0.1)
        ewma = queue.stats()["service_time_ewma_ms"]
        assert 100.0 <= ewma < 110.0

    def test_take_times_out_empty(self):
        queue = AdmissionQueue()
        assert queue.take(timeout=0.01) is None

    def test_close_refuses_offers_and_drains(self):
        queue = AdmissionQueue()
        queue.offer("a", fast=False)
        queue.close()
        with pytest.raises(ShedError):
            queue.offer("b", fast=False)
        assert queue.take(timeout=0) == "a"
        # Closed and drained: take returns None immediately, no timeout.
        assert queue.take() is None

    def test_close_wakes_blocked_taker(self):
        queue = AdmissionQueue()
        results = []

        def taker():
            results.append(queue.take())

        thread = threading.Thread(target=taker)
        thread.start()
        queue.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_concurrent_offer_take_loses_nothing(self):
        queue = AdmissionQueue(AdmissionConfig(max_queue_depth=10_000))
        produced, consumed = 500, []
        lock = threading.Lock()

        def producer(base):
            for index in range(produced // 2):
                queue.offer(base + index, fast=index % 2 == 0)

        def consumer():
            while True:
                item = queue.take(timeout=0.2)
                if item is None:
                    return
                with lock:
                    consumed.append(item)

        threads = [threading.Thread(target=producer, args=(0,)),
                   threading.Thread(target=producer, args=(10_000,)),
                   threading.Thread(target=consumer),
                   threading.Thread(target=consumer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
        assert len(consumed) == produced
        assert len(set(consumed)) == produced
