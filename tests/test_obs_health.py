"""Tests for the health/SLO component model and the ingest probes."""

import pytest

from repro.data.generator import generate_corpus
from repro.ingest import IngestConfig, IngestService
from repro.obs.health import (
    ComponentHealth,
    HealthMonitor,
    HealthReport,
    HealthStatus,
    HealthThresholds,
    grade,
)


class TestGrade:
    def test_higher_is_worse(self):
        assert grade(1.0, warn=5.0, critical=30.0) is HealthStatus.OK
        assert grade(5.0, warn=5.0, critical=30.0) is HealthStatus.DEGRADED
        assert grade(30.0, warn=5.0, critical=30.0) is HealthStatus.CRITICAL

    def test_lower_is_worse(self):
        kwargs = dict(warn=0.5, critical=0.1, higher_is_worse=False)
        assert grade(0.9, **kwargs) is HealthStatus.OK
        assert grade(0.3, **kwargs) is HealthStatus.DEGRADED
        assert grade(0.05, **kwargs) is HealthStatus.CRITICAL


class TestHealthStatus:
    def test_worst_picks_highest_severity(self):
        assert HealthStatus.worst(
            [HealthStatus.OK, HealthStatus.CRITICAL,
             HealthStatus.DEGRADED]) is HealthStatus.CRITICAL
        assert HealthStatus.worst([]) is HealthStatus.OK


class TestHealthReport:
    def _report(self):
        return HealthReport(components=[
            ComponentHealth("wal", HealthStatus.OK),
            ComponentHealth("memtable", HealthStatus.DEGRADED,
                            message="large", metrics={"bytes": 1}),
        ])

    def test_verdict_and_lookup(self):
        report = self._report()
        assert report.verdict is HealthStatus.DEGRADED
        assert not report.healthy
        assert report.component("wal").status is HealthStatus.OK
        assert report.component("absent") is None

    def test_as_dict_and_render(self):
        report = self._report()
        data = report.as_dict()
        assert data["verdict"] == "degraded"
        assert data["components"][1]["metrics"] == {"bytes": 1}
        text = report.render_text()
        assert "DEGRADED" in text and "memtable" in text


class TestHealthMonitor:
    def test_probe_exception_reports_critical(self):
        monitor = HealthMonitor()
        monitor.register("ok", lambda: ComponentHealth(
            "ok", HealthStatus.OK))

        def broken():
            raise RuntimeError("probe exploded")

        monitor.register("broken", broken)
        report = monitor.run()
        assert report.verdict is HealthStatus.CRITICAL
        failed = report.component("broken")
        assert failed.status is HealthStatus.CRITICAL
        assert "probe exploded" in failed.message

    def test_duplicate_registration_rejected(self):
        monitor = HealthMonitor()
        monitor.register("x", lambda: ComponentHealth("x", HealthStatus.OK))
        with pytest.raises(ValueError):
            monitor.register("x", lambda: ComponentHealth(
                "x", HealthStatus.OK))


class TestIngestServiceHealth:
    @pytest.fixture()
    def service(self, tmp_path):
        service = IngestService(
            str(tmp_path / "ingest"),
            ingest_config=IngestConfig(flush_posts=10_000))
        yield service
        service.close()

    def test_fresh_service_is_healthy(self, service):
        corpus = generate_corpus(num_users=20, num_root_tweets=80, seed=3)
        for post in corpus.posts[:50]:
            service.append(post)
        report = service.health()
        assert report.verdict is HealthStatus.OK
        names = {component.name for component in report.components}
        assert names == {"wal", "memtable", "generations", "block_cache",
                         "recovery"}

    def test_memtable_threshold_degrades(self, service):
        corpus = generate_corpus(num_users=20, num_root_tweets=80, seed=3)
        for post in corpus.posts[:50]:
            service.append(post)
        tight = HealthThresholds(memtable_bytes_warn=1,
                                 memtable_bytes_critical=1 << 40)
        report = service.health(tight)
        assert report.component("memtable").status is HealthStatus.DEGRADED
        assert report.verdict is HealthStatus.DEGRADED

    def test_unsynced_records_graded(self, tmp_path):
        service = IngestService(
            str(tmp_path / "lazy"),
            ingest_config=IngestConfig(flush_posts=10_000, sync_every=1000))
        try:
            corpus = generate_corpus(num_users=20, num_root_tweets=80,
                                     seed=3)
            for post in corpus.posts[:50]:
                service.append(post)
            tight = HealthThresholds(unsynced_records_warn=1,
                                     unsynced_records_critical=1 << 30)
            report = service.health(tight)
            assert report.component("wal").status is HealthStatus.DEGRADED
        finally:
            service.close()
