"""Tests for the R-tree baseline."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.rtree import MBR, RTree
from repro.geo.distance import haversine_km

points = st.lists(
    st.tuples(st.floats(min_value=-80, max_value=80, allow_nan=False),
              st.floats(min_value=-170, max_value=170, allow_nan=False)),
    min_size=0, max_size=150)


class TestMBR:
    def test_point_mbr(self):
        box = MBR.of_point(10.0, 20.0)
        assert box.area() == 0.0
        assert box.contains_point(10.0, 20.0)

    def test_union(self):
        box = MBR(0, 0, 1, 1).union(MBR(2, 2, 3, 3))
        assert box == MBR(0, 0, 3, 3)

    def test_enlargement(self):
        base = MBR(0, 0, 1, 1)
        assert base.enlargement(MBR(0, 0, 1, 1)) == 0.0
        assert base.enlargement(MBR(0, 0, 2, 1)) == pytest.approx(1.0)

    def test_intersects(self):
        assert MBR(0, 0, 2, 2).intersects(MBR(1, 1, 3, 3))
        assert MBR(0, 0, 1, 1).intersects(MBR(1, 1, 2, 2))  # touching
        assert not MBR(0, 0, 1, 1).intersects(MBR(2, 2, 3, 3))

    def test_min_distance_inside_zero(self):
        box = MBR(0, 0, 10, 10)
        assert box.min_distance_km((5.0, 5.0)) == 0.0

    def test_min_distance_outside(self):
        box = MBR(0, 0, 1, 1)
        direct = haversine_km((3.0, 0.5), (1.0, 0.5))
        assert box.min_distance_km((3.0, 0.5)) == pytest.approx(direct)


class TestRTreeStructure:
    def test_min_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    def test_insert_many_invariants(self):
        tree = RTree(max_entries=8)
        rng = random.Random(1)
        for i in range(500):
            tree.insert(rng.uniform(-80, 80), rng.uniform(-170, 170), i)
        assert len(tree) == 500
        tree.check_invariants()

    def test_duplicate_points(self):
        tree = RTree(max_entries=4)
        for i in range(30):
            tree.insert(5.0, 5.0, i)
        tree.check_invariants()
        got = {v for _p, v in tree.query_rect(MBR(4, 4, 6, 6))}
        assert got == set(range(30))

    @given(points)
    @settings(max_examples=25, deadline=None)
    def test_invariants_random(self, pts):
        tree = RTree(max_entries=6)
        for index, (lat, lon) in enumerate(pts):
            tree.insert(lat, lon, index)
        tree.check_invariants()


class TestQueries:
    @given(points)
    @settings(max_examples=25, deadline=None)
    def test_rect_query_matches_scan(self, pts):
        tree = RTree(max_entries=6)
        for index, (lat, lon) in enumerate(pts):
            tree.insert(lat, lon, index)
        rect = MBR(-20, -50, 45, 60)
        got = sorted(v for _p, v in tree.query_rect(rect))
        expected = sorted(i for i, (lat, lon) in enumerate(pts)
                          if rect.contains_point(lat, lon))
        assert got == expected

    @given(points)
    @settings(max_examples=25, deadline=None)
    def test_circle_query_matches_scan(self, pts):
        tree = RTree(max_entries=6)
        for index, (lat, lon) in enumerate(pts):
            tree.insert(lat, lon, index)
        center = (20.0, 30.0)
        radius = 1500.0
        got = sorted(v for _p, v in tree.query_circle(center, radius))
        expected = sorted(i for i, p in enumerate(pts)
                          if haversine_km(center, p) <= radius)
        assert got == expected

    @given(points)
    @settings(max_examples=20, deadline=None)
    def test_nearest_first_order(self, pts):
        tree = RTree(max_entries=6)
        for index, (lat, lon) in enumerate(pts):
            tree.insert(lat, lon, index)
        center = (0.0, 0.0)
        distances = [d for d, _p, _v in tree.nearest_first(center)]
        assert distances == sorted(distances)
        assert len(distances) == len(pts)

    def test_nearest_first_yields_closest_first(self):
        tree = RTree(max_entries=4)
        tree.insert(0.0, 0.0, "origin")
        tree.insert(10.0, 10.0, "far")
        tree.insert(1.0, 1.0, "near")
        order = [v for _d, _p, v in tree.nearest_first((0.0, 0.0))]
        assert order == ["origin", "near", "far"]

    def test_empty_tree_queries(self):
        tree = RTree()
        assert list(tree.query_rect(MBR(-90, -180, 90, 180))) == []
        assert list(tree.query_circle((0, 0), 100)) == []
        assert list(tree.nearest_first((0, 0))) == []
