"""Tests for the JSON-lines ETL boundary."""

import io
import json

from repro.core.model import EdgeKind, Post
from repro.data.etl import (
    dump_posts,
    iter_posts,
    load_posts,
    parse_post,
    post_to_json,
)


def make_post(sid=1, rsid=None):
    return Post(sid=sid, uid=7, location=(43.65, -79.38),
                words=("hotel", "toronto"), text="hotel toronto",
                rsid=rsid, ruid=3 if rsid else None,
                kind=EdgeKind.FORWARD if rsid else None)


class TestSerialise:
    def test_roundtrip_root_post(self):
        post = make_post()
        back = parse_post(post_to_json(post))
        assert back.sid == post.sid
        assert back.uid == post.uid
        assert back.location == post.location
        assert back.words == post.words
        assert back.rsid is None and back.kind is None

    def test_roundtrip_reply_post(self):
        post = make_post(sid=2, rsid=1)
        back = parse_post(post_to_json(post))
        assert back.rsid == 1 and back.ruid == 3
        assert back.kind is EdgeKind.FORWARD

    def test_json_field_names_tweet_like(self):
        obj = json.loads(post_to_json(make_post(sid=2, rsid=1)))
        assert {"id", "user_id", "coordinates", "text",
                "in_reply_to_status_id"} <= set(obj)


class TestParse:
    def test_non_geotagged_dropped(self):
        line = json.dumps({"id": 5, "user_id": 1, "text": "no geo",
                           "coordinates": None})
        assert parse_post(line) is None

    def test_words_recomputed_when_missing(self):
        line = json.dumps({"id": 5, "user_id": 1,
                           "coordinates": [43.0, -79.0],
                           "text": "Great Hotels!"})
        post = parse_post(line)
        assert post.words == ("great", "hotel")

    def test_reply_defaults_to_reply_kind_when_unlabelled(self):
        line = json.dumps({"id": 5, "user_id": 1,
                           "coordinates": [43.0, -79.0], "text": "x",
                           "in_reply_to_status_id": 2,
                           "in_reply_to_user_id": 9})
        post = parse_post(line)
        assert post.rsid == 2
        assert post.kind is None  # kind only set when labelled


class TestStreams:
    def test_dump_load_roundtrip(self):
        posts = [make_post(sid=1), make_post(sid=2, rsid=1),
                 make_post(sid=3)]
        buffer = io.StringIO()
        assert dump_posts(posts, buffer) == 3
        buffer.seek(0)
        loaded = load_posts(buffer)
        assert [p.sid for p in loaded] == [1, 2, 3]
        assert loaded[1].rsid == 1

    def test_load_skips_blank_lines_and_non_geo(self):
        lines = [
            post_to_json(make_post(sid=1)),
            "",
            json.dumps({"id": 9, "user_id": 2, "text": "no geo",
                        "coordinates": None}),
            post_to_json(make_post(sid=2)),
        ]
        loaded = load_posts(io.StringIO("\n".join(lines)))
        assert [p.sid for p in loaded] == [1, 2]

    def test_iter_posts_streaming(self):
        buffer = io.StringIO()
        dump_posts([make_post(sid=i) for i in range(1, 6)], buffer)
        buffer.seek(0)
        sids = [post.sid for post in iter_posts(buffer)]
        assert sids == [1, 2, 3, 4, 5]

    def test_corpus_roundtrip(self, corpus):
        buffer = io.StringIO()
        dump_posts(corpus.posts[:200], buffer)
        buffer.seek(0)
        loaded = load_posts(buffer)
        assert len(loaded) == 200
        for original, back in zip(corpus.posts[:200], loaded):
            assert back.sid == original.sid
            assert back.words == original.words
            assert back.location == original.location
