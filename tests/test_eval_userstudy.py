"""Tests for the simulated user study (Fig 13's protocol)."""

import pytest

from repro.core.model import Dataset, Post, TkLUSQuery
from repro.eval.userstudy import (
    RATERS_PER_LINE,
    SimulatedUserStudy,
    StudyConfig,
    VOTES_REQUIRED,
)


def build_dataset():
    """Users at increasing distances from the query point, all with one
    'hotel' tweet; one user with no matching tweets."""
    dataset = Dataset()
    query_location = (43.65, -79.38)
    offsets_km = {1: 0.2, 2: 3.0, 3: 9.0, 4: 18.0}
    sid = 1
    for uid, offset in offsets_km.items():
        lat = query_location[0] + offset / 111.0
        dataset.add_post(Post(sid, uid, (lat, query_location[1]),
                              ("hotel",), "hotel here"))
        sid += 1
    dataset.add_post(Post(sid, 99, query_location, ("cafe",), "just cafe"))
    return dataset, query_location


@pytest.fixture()
def study_setup():
    dataset, location = build_dataset()
    study = SimulatedUserStudy(dataset, StudyConfig(seed=11, noise=0.0))
    query = TkLUSQuery(location=location, radius_km=20.0,
                       keywords=frozenset({"hotel"}), k=10)
    return study, query


class TestRelevanceOracle:
    def test_protocol_constants_match_paper(self):
        assert RATERS_PER_LINE == 4
        assert VOTES_REQUIRED == 2

    def test_probability_decays_with_distance(self, study_setup):
        study, query = study_setup
        probabilities = [study._relevance_probability(uid, query)
                         for uid in (1, 2, 3, 4)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_no_matching_tweets_low_probability(self, study_setup):
        study, query = study_setup
        assert study._relevance_probability(99, query) < 0.1

    def test_probability_bounded(self, study_setup):
        study, query = study_setup
        for uid in (1, 2, 3, 4, 99):
            assert 0.0 <= study._relevance_probability(uid, query) <= 0.97

    def test_topical_fraction_matters(self):
        dataset, location = build_dataset()
        study = SimulatedUserStudy(dataset, StudyConfig(seed=11))
        single = TkLUSQuery(location=location, radius_km=20.0,
                            keywords=frozenset({"hotel"}), k=10)
        double = TkLUSQuery(location=location, radius_km=20.0,
                            keywords=frozenset({"hotel", "pool"}), k=10)
        # User 1 matches 1 of 2 keywords of `double`: lower probability.
        assert (study._relevance_probability(1, double)
                < study._relevance_probability(1, single))


class TestJudgements:
    def test_near_user_usually_relevant(self, study_setup):
        study, query = study_setup
        votes = sum(study.judge_user(1, query) for _ in range(50))
        assert votes > 35

    def test_far_nonmatching_user_usually_irrelevant(self, study_setup):
        study, query = study_setup
        votes = sum(study.judge_user(99, query) for _ in range(50))
        assert votes < 15

    def test_precision_range(self, study_setup):
        study, query = study_setup
        precision = study.precision([1, 2, 3, 4, 99], query)
        assert 0.0 <= precision <= 1.0

    def test_precision_empty_ranking(self, study_setup):
        study, query = study_setup
        assert study.precision([], query) == 0.0

    def test_precision_at_cutoffs(self, study_setup):
        study, query = study_setup
        at = study.precision_at([1, 2, 3, 4, 99] * 2, query, cutoffs=(5, 10))
        assert set(at) == {5, 10}
        assert 0.0 <= at[5] <= 1.0 and 0.0 <= at[10] <= 1.0


class TestEndToEndTrend:
    def test_precision_decays_with_radius(self, corpus, engine, workload):
        """The Fig 13 macro-trend on the real pipeline: precision at 5 km
        is at least that at 20 km (averaged over queries)."""
        study = SimulatedUserStudy(corpus.to_dataset(), StudyConfig(seed=5))
        small_values, large_values = [], []
        for spec in workload.specs(1)[:8]:
            for radius, sink in ((5.0, small_values), (20.0, large_values)):
                query = workload.bind(spec, radius_km=radius, k=10)
                ranking = engine.search_max(query).ranking()
                if ranking:
                    sink.append(study.precision(ranking, query))
        if small_values and large_values:
            mean_small = sum(small_values) / len(small_values)
            mean_large = sum(large_values) / len(large_values)
            assert mean_small >= mean_large - 0.15  # allow rater noise
