"""Hypothesis stateful tests for the storage engine: random operation
interleavings against model oracles, with invariant checks."""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.storage.bptree import BPlusTree, DuplicateKeyError
from repro.storage.pager import BufferPool, MemoryPager

KEYS = st.integers(min_value=-1000, max_value=1000)


class BPlusTreeMachine(RuleBasedStateMachine):
    """The tree must behave exactly like a dict under any interleaving
    of inserts, deletes and lookups, and keep its structure valid."""

    @initialize(capacity=st.integers(min_value=2, max_value=48))
    def setup(self, capacity):
        self.tree = BPlusTree(BufferPool(MemoryPager(), capacity=capacity))
        self.model = {}

    @rule(key=KEYS, value=st.integers(min_value=0, max_value=10**9))
    def insert(self, key, value):
        composite = (key, 0)
        if composite in self.model:
            with pytest.raises(DuplicateKeyError):
                self.tree.insert(composite, value)
        else:
            self.tree.insert(composite, value)
            self.model[composite] = value

    @rule(key=KEYS)
    def delete(self, key):
        composite = (key, 0)
        assert self.tree.delete(composite) == (composite in self.model)
        self.model.pop(composite, None)

    @rule(key=KEYS)
    def lookup(self, key):
        composite = (key, 0)
        assert self.tree.get(composite) == self.model.get(composite)

    @rule(lo=KEYS, hi=KEYS)
    def range_scan(self, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        got = [k for k, _v in self.tree.range((lo, 0), (hi, 0))]
        expected = sorted(k for k in self.model if lo <= k[0] <= hi)
        assert got == expected

    @invariant()
    def size_matches(self):
        if hasattr(self, "tree"):
            assert len(self.tree) == len(self.model)

    @precondition(lambda self: hasattr(self, "tree") and len(self.model) % 7 == 0)
    @rule()
    def check_structure(self):
        self.tree.check_invariants()


class BufferPoolMachine(RuleBasedStateMachine):
    """The buffer pool must preserve page contents across arbitrary
    allocate/write/read/evict sequences."""

    @initialize(capacity=st.integers(min_value=1, max_value=6))
    def setup(self, capacity):
        self.pool = BufferPool(MemoryPager(), capacity=capacity)
        self.contents = {}

    @rule(payload=st.binary(min_size=1, max_size=16))
    def allocate_and_write(self, payload):
        page = self.pool.allocate_page()
        page.data[:len(payload)] = payload
        page.mark_dirty()
        self.pool.unpin(page)
        self.contents[page.page_no] = payload

    @rule(data=st.data())
    def read_back(self, data):
        if not self.contents:
            return
        page_no = data.draw(st.sampled_from(sorted(self.contents)))
        with self.pool.pinned(page_no) as page:
            payload = self.contents[page_no]
            assert bytes(page.data[:len(payload)]) == payload

    @rule(payload=st.binary(min_size=1, max_size=16), data=st.data())
    def overwrite(self, payload, data):
        if not self.contents:
            return
        page_no = data.draw(st.sampled_from(sorted(self.contents)))
        with self.pool.pinned(page_no) as page:
            page.data[:16] = bytes(16)
            page.data[:len(payload)] = payload
            page.mark_dirty()
        self.contents[page_no] = payload

    @rule()
    def flush(self):
        self.pool.flush_all()

    @rule(data=st.data())
    def free(self, data):
        if not self.contents:
            return
        page_no = data.draw(st.sampled_from(sorted(self.contents)))
        self.pool.free_page(page_no)
        del self.contents[page_no]


TestBPlusTreeStateful = BPlusTreeMachine.TestCase
TestBPlusTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=60, deadline=None)

TestBufferPoolStateful = BufferPoolMachine.TestCase
TestBufferPoolStateful.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None)
