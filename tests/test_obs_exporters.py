"""Tests for span/metrics exporters (tree, JSONL, Prometheus text)."""

import io
import json

from repro.obs.exporters import (
    render_metrics,
    render_span_tree,
    spans_to_dicts,
    to_prometheus_text,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _sample_trace(children=2):
    tracer = Tracer()
    with tracer.span("query.search", method="max") as root:
        with tracer.span("query.cover"):
            pass
        for i in range(children):
            with tracer.span("query.thread_build", root=i) as span:
                span.set(size=i + 1)
    return tracer.roots(), root


class TestSpanTree:
    def test_renders_nesting_and_attributes(self):
        roots, _ = _sample_trace(children=2)
        text = render_span_tree(roots)
        lines = text.splitlines()
        assert lines[0].startswith("query.search")
        assert "{method=max}" in lines[0]
        assert lines[1].startswith("  query.cover")
        # Two same-name children stay below the aggregation threshold.
        assert sum("query.thread_build" in line for line in lines) == 2

    def test_aggregates_repeated_children(self):
        roots, _ = _sample_trace(children=10)
        text = render_span_tree(roots)
        assert "query.thread_build ×10" in text
        assert "total" in text and "mean" in text
        # Aggregation can be switched off.
        full = render_span_tree(roots, aggregate=False)
        assert full.count("query.thread_build") == 10

    def test_empty_input(self):
        assert render_span_tree([]) == ""


class TestJsonl:
    def test_flat_records_with_parent_links(self):
        roots, _ = _sample_trace(children=3)
        records = spans_to_dicts(roots)
        assert len(records) == 5  # search + cover + 3 builds
        by_id = {r["span_id"]: r for r in records}
        assert len(by_id) == 5  # ids unique
        root_record = records[0]
        assert root_record["parent_id"] is None
        assert root_record["name"] == "query.search"
        for record in records[1:]:
            assert record["parent_id"] == root_record["span_id"]
        build = [r for r in records if r["name"] == "query.thread_build"][0]
        assert build["attributes"] == {"root": 0, "size": 1}

    def test_write_spans_jsonl_round_trips(self):
        roots, _ = _sample_trace(children=2)
        handle = io.StringIO()
        count = write_spans_jsonl(roots, handle)
        lines = handle.getvalue().strip().splitlines()
        assert count == len(lines) == 4
        for line in lines:
            record = json.loads(line)
            assert record["duration_seconds"] >= 0.0
            assert "wall_start" in record


class TestPrometheusText:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("storage.page_reads").inc(7)
        registry.gauge("pool.pages").set(128)
        registry.histogram("query.latency_seconds").observe(0.02)
        text = to_prometheus_text(registry)
        assert "# TYPE repro_storage_page_reads counter" in text
        assert "repro_storage_page_reads 7" in text
        assert "# TYPE repro_pool_pages gauge" in text
        assert "# TYPE repro_query_latency_seconds summary" in text
        assert 'repro_query_latency_seconds{quantile="0.95"}' in text
        assert "repro_query_latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_namespace_optional(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        text = to_prometheus_text(registry, namespace=None)
        assert "\nhits 1" in "\n" + text

    def test_empty_registry(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestRenderMetrics:
    def test_sections_present(self):
        registry = MetricsRegistry()
        registry.counter("c.n").inc(2)
        registry.gauge("g.n").set(0.5)
        registry.histogram("h.n").observe(1.0)
        text = render_metrics(registry)
        assert "counters:" in text and "c.n = 2" in text
        assert "gauges:" in text and "g.n = 0.5" in text
        assert "histograms:" in text and "h.n:" in text

    def test_empty_registry(self):
        assert render_metrics(MetricsRegistry()) == ""
