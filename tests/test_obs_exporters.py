"""Tests for span/metrics exporters (tree, JSONL, Prometheus text)."""

import io
import json

import pytest

from repro.obs.exporters import (
    parse_spans_jsonl,
    render_metrics,
    render_span_tree,
    spans_to_dicts,
    to_prometheus_text,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    MetricsRegistry,
    escape_label_value,
    format_sample,
)
from repro.obs.tracer import Tracer


def _sample_trace(children=2):
    tracer = Tracer()
    with tracer.span("query.search", method="max") as root:
        with tracer.span("query.cover"):
            pass
        for i in range(children):
            with tracer.span("query.thread_build", root=i) as span:
                span.set(size=i + 1)
    return tracer.roots(), root


class TestSpanTree:
    def test_renders_nesting_and_attributes(self):
        roots, _ = _sample_trace(children=2)
        text = render_span_tree(roots)
        lines = text.splitlines()
        assert lines[0].startswith("query.search")
        assert "{method=max}" in lines[0]
        assert lines[1].startswith("  query.cover")
        # Two same-name children stay below the aggregation threshold.
        assert sum("query.thread_build" in line for line in lines) == 2

    def test_aggregates_repeated_children(self):
        roots, _ = _sample_trace(children=10)
        text = render_span_tree(roots)
        assert "query.thread_build ×10" in text
        assert "total" in text and "mean" in text
        # Aggregation can be switched off.
        full = render_span_tree(roots, aggregate=False)
        assert full.count("query.thread_build") == 10

    def test_empty_input(self):
        assert render_span_tree([]) == ""


class TestJsonl:
    def test_flat_records_with_parent_links(self):
        roots, _ = _sample_trace(children=3)
        records = spans_to_dicts(roots)
        assert len(records) == 5  # search + cover + 3 builds
        by_id = {r["span_id"]: r for r in records}
        assert len(by_id) == 5  # ids unique
        root_record = records[0]
        assert root_record["parent_id"] is None
        assert root_record["name"] == "query.search"
        for record in records[1:]:
            assert record["parent_id"] == root_record["span_id"]
        build = [r for r in records if r["name"] == "query.thread_build"][0]
        assert build["attributes"] == {"root": 0, "size": 1}

    def test_write_spans_jsonl_round_trips(self):
        roots, _ = _sample_trace(children=2)
        handle = io.StringIO()
        count = write_spans_jsonl(roots, handle)
        lines = handle.getvalue().strip().splitlines()
        assert count == len(lines) == 4
        for line in lines:
            record = json.loads(line)
            assert record["duration_seconds"] >= 0.0
            assert "wall_start" in record


class TestPrometheusText:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("storage.page_reads").inc(7)
        registry.gauge("pool.pages").set(128)
        registry.histogram("query.latency_seconds").observe(0.02)
        text = to_prometheus_text(registry)
        assert "# TYPE repro_storage_page_reads counter" in text
        assert "repro_storage_page_reads 7" in text
        assert "# TYPE repro_pool_pages gauge" in text
        assert "# TYPE repro_query_latency_seconds summary" in text
        assert 'repro_query_latency_seconds{quantile="0.95"}' in text
        assert "repro_query_latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_namespace_optional(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        text = to_prometheus_text(registry, namespace=None)
        assert "\nhits 1" in "\n" + text

    def test_empty_registry(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestLabelEscaping:
    """Prometheus text exposition conformance for label values."""

    @pytest.mark.parametrize("raw,expected", [
        ("plain", "plain"),
        ('say "hi"', 'say \\"hi\\"'),
        ("back\\slash", "back\\\\slash"),
        ("multi\nline", "multi\\nline"),
        # Backslash must be escaped FIRST: a pre-escaped quote keeps a
        # single backslash-escape per character, never a double hit.
        ('\\"', '\\\\\\"'),
        ("\\n", "\\\\n"),
    ])
    def test_escape_label_value(self, raw, expected):
        assert escape_label_value(raw) == expected

    def test_format_sample_escapes_and_sanitizes(self):
        line = format_sample("m", {"path": 'a\\b"c', "bad-key": 1}, 3)
        assert line == 'm{path="a\\\\b\\"c",bad_key="1"} 3'

    def test_format_sample_without_labels(self):
        assert format_sample("m", None, 2) == "m 2"


class TestPrometheusHistogramMode:
    """Real histogram exposition: buckets must be cumulative and end in
    ``+Inf`` == ``_count``."""

    def _bucket_lines(self, text, metric):
        out = []
        for line in text.splitlines():
            if line.startswith(f"{metric}_bucket"):
                le = line.split('le="')[1].split('"')[0]
                out.append((le, float(line.rsplit(" ", 1)[1])))
        return out

    def test_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (0.0, 0.001, 0.002, 0.004, 0.5, 0.5, 3.0):
            histogram.observe(value)
        text = to_prometheus_text(registry, histogram_mode="histogram")
        assert "# TYPE repro_latency histogram" in text
        buckets = self._bucket_lines(text, "repro_latency")
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)          # non-decreasing
        assert buckets[0] == ("0", 1.0)          # the zero observation
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 7.0
        assert "repro_latency_count 7" in text
        # Upper bounds (excluding the zero/+Inf rails) strictly increase.
        uppers = [float(le) for le, _ in buckets[1:-1]]
        assert uppers == sorted(uppers) and len(set(uppers)) == len(uppers)

    def test_every_observation_within_its_bucket(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.123)
        text = to_prometheus_text(registry, histogram_mode="histogram")
        buckets = self._bucket_lines(text, "repro_h")
        first_le = float(buckets[0][0])
        assert first_le >= 0.123                 # le is an upper bound
        assert buckets[0][1] == 1.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            to_prometheus_text(MetricsRegistry(), histogram_mode="wat")


class TestJsonlRoundTrip:
    def test_parse_rebuilds_identical_records(self):
        roots, _ = _sample_trace(children=3)
        handle = io.StringIO()
        write_spans_jsonl(roots, handle)
        handle.seek(0)
        rebuilt = parse_spans_jsonl(handle)
        assert spans_to_dicts(rebuilt) == spans_to_dicts(roots)

    def test_parse_preserves_tree_shape_and_durations(self):
        roots, root = _sample_trace(children=2)
        handle = io.StringIO()
        write_spans_jsonl(roots, handle)
        handle.seek(0)
        rebuilt = parse_spans_jsonl(handle)
        assert len(rebuilt) == 1
        clone = rebuilt[0]
        assert clone.name == root.name
        assert clone.attributes == root.attributes
        assert [c.name for c in clone.children] == [
            c.name for c in root.children]
        assert clone.duration == pytest.approx(root.duration)
        assert clone.wall_start == root.wall_start

    def test_parse_skips_blank_lines(self):
        roots, _ = _sample_trace(children=1)
        handle = io.StringIO()
        write_spans_jsonl(roots, handle)
        handle.write("\n\n")
        handle.seek(0)
        assert len(parse_spans_jsonl(handle)) == 1


class TestRenderMetrics:
    def test_sections_present(self):
        registry = MetricsRegistry()
        registry.counter("c.n").inc(2)
        registry.gauge("g.n").set(0.5)
        registry.histogram("h.n").observe(1.0)
        text = render_metrics(registry)
        assert "counters:" in text and "c.n = 2" in text
        assert "gauges:" in text and "g.n = 0.5" in text
        assert "histograms:" in text and "h.n:" in text

    def test_empty_registry(self):
        assert render_metrics(MetricsRegistry()) == ""
