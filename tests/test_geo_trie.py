"""Tests for the geohash trie."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.geohash import BASE32
from repro.geo.trie import GeohashTrie

geohash_keys = st.text(alphabet=BASE32, min_size=1, max_size=8)


class TestBasicOperations:
    def test_put_get(self):
        trie = GeohashTrie()
        trie.put("6gxp", 1)
        assert trie.get("6gxp") == 1
        assert trie.get("6gx") is None
        assert trie.get("zzzz", default=-1) == -1

    def test_put_overwrites(self):
        trie = GeohashTrie()
        trie.put("6g", "a")
        trie.put("6g", "b")
        assert trie.get("6g") == "b"
        assert len(trie) == 1

    def test_empty_key_rejected(self):
        trie = GeohashTrie()
        with pytest.raises(ValueError):
            trie.put("", 1)

    def test_contains(self):
        trie = GeohashTrie()
        trie.put("dpz8", 5)
        assert "dpz8" in trie
        assert "dpz" not in trie  # prefix of a key is not itself a key

    def test_remove(self):
        trie = GeohashTrie()
        trie.put("6gxp", 1)
        trie.put("6gxq", 2)
        assert trie.remove("6gxp")
        assert not trie.remove("6gxp")
        assert len(trie) == 1
        assert trie.get("6gxq") == 2

    def test_remove_prunes_branches(self):
        trie = GeohashTrie()
        trie.put("abcdef".replace("a", "b"), 1)  # "bbcdef"
        assert trie.remove("bbcdef")
        assert len(trie) == 0
        # Root must have no children left.
        assert not trie._root.children

    def test_remove_keeps_shared_prefix(self):
        trie = GeohashTrie()
        trie.put("6g", 1)
        trie.put("6gxp", 2)
        assert trie.remove("6gxp")
        assert trie.get("6g") == 1


class TestPrefixQueries:
    def test_items_under_prefix_sorted(self):
        trie = GeohashTrie()
        for key in ["6gxp", "6gxq", "6gy0", "7abc", "6g"]:
            trie.put(key, key)
        got = list(trie.keys_under_prefix("6g"))
        assert got == sorted(["6g", "6gxp", "6gxq", "6gy0"])

    def test_empty_prefix_returns_all(self):
        trie = GeohashTrie()
        keys = ["dpz8", "dr5r", "6gxp"]
        for key in keys:
            trie.put(key, 1)
        assert sorted(trie.keys_under_prefix("")) == sorted(keys)
        assert sorted(trie) == sorted(keys)

    def test_missing_prefix(self):
        trie = GeohashTrie()
        trie.put("6gxp", 1)
        assert list(trie.keys_under_prefix("zz")) == []

    def test_longest_prefix_value(self):
        trie = GeohashTrie()
        trie.put("6", "continent")
        trie.put("6gx", "city")
        assert trie.longest_prefix_value("6gxp") == "city"
        assert trie.longest_prefix_value("6abc") == "continent"
        assert trie.longest_prefix_value("zabc") is None

    @given(st.dictionaries(geohash_keys, st.integers(), max_size=50),
           geohash_keys)
    @settings(max_examples=50, deadline=None)
    def test_prefix_query_matches_filter(self, mapping, prefix):
        trie = GeohashTrie()
        for key, value in mapping.items():
            trie.put(key, value)
        got = dict(trie.items_under_prefix(prefix))
        expected = {key: value for key, value in mapping.items()
                    if key.startswith(prefix)}
        assert got == expected

    @given(st.dictionaries(geohash_keys, st.integers(), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_size_and_roundtrip(self, mapping):
        trie = GeohashTrie()
        for key, value in mapping.items():
            trie.put(key, value)
        assert len(trie) == len(mapping)
        for key, value in mapping.items():
            assert trie.get(key) == value
