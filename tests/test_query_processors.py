"""End-to-end tests of the query processors (Algorithms 4 and 5)
against the exhaustive brute-force oracle, plus pruning soundness."""

import pytest

from repro.core.model import Semantics
from repro.query.bounds import BoundsManager
from repro.query.max_ranking import MaxScoreProcessor


def rankings_equivalent(a, b, tolerance=1e-9):
    """Two rankings agree when scores match pairwise and uids match
    except possibly inside tied-score groups."""
    if len(a) != len(b):
        return False
    for (uid_a, score_a), (uid_b, score_b) in zip(a, b):
        if abs(score_a - score_b) > tolerance:
            return False
        if uid_a != uid_b and abs(score_a - score_b) > tolerance:
            return False
    return True


def make_queries(workload, radius, k=10, semantics=Semantics.OR,
                 num_keywords=1, limit=6):
    return [workload.bind(spec, radius_km=radius, k=k, semantics=semantics)
            for spec in workload.specs(num_keywords)[:limit]]


class TestSumMatchesOracle:
    @pytest.mark.parametrize("radius", [5.0, 15.0, 40.0])
    def test_single_keyword(self, engine, workload, oracle, radius):
        for query in make_queries(workload, radius):
            indexed = engine.search_sum(query)
            exact = oracle.search_sum(query)
            assert rankings_equivalent(indexed.users, exact.users), \
                f"query {query.keywords} radius {radius}"

    @pytest.mark.parametrize("semantics", [Semantics.AND, Semantics.OR])
    def test_multi_keyword(self, engine, workload, oracle, semantics):
        for num_keywords in (2, 3):
            for query in make_queries(workload, 20.0, semantics=semantics,
                                      num_keywords=num_keywords, limit=4):
                indexed = engine.search_sum(query)
                exact = oracle.search_sum(query)
                assert rankings_equivalent(indexed.users, exact.users)


class TestMaxMatchesOracle:
    @pytest.mark.parametrize("radius", [5.0, 15.0, 40.0])
    def test_single_keyword(self, engine, workload, oracle, radius):
        for query in make_queries(workload, radius):
            indexed = engine.search_max(query)
            exact = oracle.search_max(query)
            assert rankings_equivalent(indexed.users, exact.users)

    @pytest.mark.parametrize("semantics", [Semantics.AND, Semantics.OR])
    def test_multi_keyword(self, engine, workload, oracle, semantics):
        for num_keywords in (2, 3):
            for query in make_queries(workload, 20.0, semantics=semantics,
                                      num_keywords=num_keywords, limit=4):
                indexed = engine.search_max(query)
                exact = oracle.search_max(query)
                assert rankings_equivalent(indexed.users, exact.users)


class TestPruningSoundness:
    """Pruned and unpruned max ranking must agree exactly."""

    def test_pruning_preserves_results(self, engine, workload):
        unpruned = engine.processor("max", use_pruning=False)
        pruned = engine.processor("max", use_pruning=True)
        for radius in (10.0, 30.0):
            for query in make_queries(workload, radius, limit=6):
                engine.threads.clear_cache()
                with_pruning = pruned.search(query)
                engine.threads.clear_cache()
                without = unpruned.search(query)
                assert rankings_equivalent(with_pruning.users, without.users)

    def test_pruning_reduces_thread_builds(self, engine):
        """Across hot-keyword queries at city centres (where candidates
        are dense), pruning must skip at least some thread constructions.

        Uses fixed locations rather than the shared workload RNG so the
        outcome is independent of test execution order."""
        from repro.data.generator import DEFAULT_CITIES
        from repro.data.vocabulary import TABLE2_KEYWORDS
        pruned = engine.processor("max", use_pruning=True)
        total_pruned = 0
        for city in DEFAULT_CITIES[:4]:
            for keyword in TABLE2_KEYWORDS[:5]:
                query = engine.make_query((city.lat, city.lon), 40.0,
                                          [keyword], k=5)
                engine.threads.clear_cache()
                result = pruned.search(query)
                total_pruned += result.stats.threads_pruned
        assert total_pruned > 0

    def test_unpruned_builds_every_candidate_thread(self, engine, workload):
        unpruned = engine.processor("max", use_pruning=False)
        query = make_queries(workload, 20.0, limit=1)[0]
        engine.threads.clear_cache()
        result = unpruned.search(query)
        assert result.stats.threads_pruned == 0
        assert result.stats.threads_built == result.stats.candidates_in_radius


class TestSemanticsRelationships:
    def test_and_results_subset_of_or_candidates(self, engine, workload):
        for spec in workload.specs(2)[:5]:
            query_and = workload.bind(spec, radius_km=25.0, k=10,
                                      semantics=Semantics.AND)
            query_or = workload.bind(spec, radius_km=25.0, k=10,
                                     semantics=Semantics.OR,
                                     location=query_and.location)
            result_and = engine.search_sum(query_and)
            result_or = engine.search_sum(query_or)
            assert (result_and.stats.candidates
                    <= result_or.stats.candidates)


class TestResultShape:
    def test_at_most_k_users(self, engine, workload):
        for k in (1, 3, 10):
            query = workload.bind(workload.specs(1)[0], radius_km=15.0, k=k)
            assert len(engine.search_sum(query)) <= k
            assert len(engine.search_max(query)) <= k

    def test_scores_descending(self, engine, workload):
        query = workload.bind(workload.specs(1)[1], radius_km=20.0, k=10)
        for method in ("sum", "max"):
            users = engine.search(query, method=method).users
            scores = [score for _uid, score in users]
            assert scores == sorted(scores, reverse=True)

    def test_every_result_user_has_matching_tweet_in_radius(
            self, engine, workload, dataset):
        from repro.geo.distance import haversine_km
        query = workload.bind(workload.specs(1)[2], radius_km=20.0, k=10)
        result = engine.search_sum(query)
        for uid, _score in result.users:
            satisfied = any(
                query.keywords.intersection(post.words)
                and haversine_km(query.location, post.location) <= query.radius_km
                for post in dataset.posts_of(uid))
            assert satisfied, f"user {uid} violates problem condition 1"

    def test_stats_populated(self, engine, workload):
        query = workload.bind(workload.specs(1)[0], radius_km=15.0)
        result = engine.search_sum(query)
        assert result.stats.cells_covered > 0
        assert result.stats.elapsed_seconds > 0
        assert result.stats.candidates >= result.stats.candidates_in_radius

    def test_unknown_method_rejected(self, engine, workload):
        query = workload.bind(workload.specs(1)[0], radius_km=15.0)
        with pytest.raises(ValueError):
            engine.search(query, method="median")
        with pytest.raises(ValueError):
            engine.processor("median")


class TestSumVsMaxRelationship:
    def test_sum_scores_dominate_max_scores(self, engine, workload):
        """For every user, sum keyword score >= max keyword score, so the
        sum-based user score dominates pointwise (same distance part)."""
        query = workload.bind(workload.specs(1)[0], radius_km=20.0, k=10)
        sum_scores = dict(engine.search_sum(query).users)
        max_scores = dict(engine.search_max(query).users)
        for uid in set(sum_scores) & set(max_scores):
            assert sum_scores[uid] >= max_scores[uid] - 1e-9
