"""Tests for the TkLUSEngine facade."""

import pytest

from repro.core.model import Semantics
from repro.data.generator import generate_corpus
from repro.index.builder import IndexConfig
from repro.query.engine import EngineConfig, TkLUSEngine


@pytest.fixture(scope="module")
def tiny_corpus():
    return generate_corpus(num_users=80, num_root_tweets=300, seed=21)


class TestConstruction:
    def test_from_posts_builds_everything(self, tiny_corpus):
        engine = TkLUSEngine.from_posts(tiny_corpus.posts)
        assert len(engine.database) == len(tiny_corpus.posts)
        assert len(engine.index.forward) > 0
        assert engine.bounds.global_bound > 0
        assert engine.bounds.keyword_bounds  # hot keywords precomputed

    def test_without_bound_precomputation(self, tiny_corpus):
        engine = TkLUSEngine.from_posts(tiny_corpus.posts,
                                        precompute_bounds=False)
        assert engine.bounds.keyword_bounds == {}

    def test_custom_geohash_length(self, tiny_corpus):
        config = EngineConfig(index=IndexConfig(geohash_length=3))
        engine = TkLUSEngine.from_posts(tiny_corpus.posts, config=config)
        assert engine.index.geohash_length == 3


class TestSearchApi:
    def test_methods_agree_with_dedicated_entry_points(self, tiny_corpus):
        engine = TkLUSEngine.from_posts(tiny_corpus.posts)
        query = engine.make_query((43.65, -79.38), 15.0, ["restaurant"], k=5)
        engine.threads.clear_cache()
        by_name = engine.search(query, method="sum")
        engine.threads.clear_cache()
        direct = engine.search_sum(query)
        assert by_name.users == direct.users

    def test_make_query_normalises(self, tiny_corpus):
        engine = TkLUSEngine.from_posts(tiny_corpus.posts)
        query = engine.make_query((43.65, -79.38), 5.0, ["Restaurants"],
                                  semantics=Semantics.AND)
        assert query.keywords == frozenset({"restaur"})
        assert query.semantics is Semantics.AND

    def test_index_report_keys(self, tiny_corpus):
        engine = TkLUSEngine.from_posts(tiny_corpus.posts)
        report = engine.index_report()
        assert report["tweets"] == len(tiny_corpus.posts)
        assert report["inverted_bytes"] > 0
        assert report["forward_bytes"] > 0
        assert report["geohash_length"] == 4

    def test_results_stable_across_repeats(self, tiny_corpus):
        engine = TkLUSEngine.from_posts(tiny_corpus.posts)
        query = engine.make_query((43.65, -79.38), 20.0, ["hotel"], k=5)
        first = engine.search_max(query).users
        second = engine.search_max(query).users
        assert first == second
