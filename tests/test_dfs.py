"""Tests for the simulated distributed file system."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dfs.block import BlockId, DEFAULT_REPLICATION
from repro.dfs.cluster import DFSCluster, paper_cluster
from repro.dfs.datanode import DataNode, DataNodeError
from repro.dfs.namenode import DFSError


class TestDataNode:
    def test_store_read(self):
        node = DataNode("dn0")
        node.store(BlockId(1), b"payload")
        assert node.read(BlockId(1)) == b"payload"
        assert node.block_count == 1
        assert node.bytes_stored == 7

    def test_missing_block(self):
        node = DataNode("dn0")
        with pytest.raises(DataNodeError):
            node.read(BlockId(9))

    def test_read_range(self):
        node = DataNode("dn0")
        node.store(BlockId(1), b"0123456789")
        assert node.read_range(BlockId(1), 3, 4) == b"3456"
        assert node.read_range(BlockId(1), 8, 100) == b"89"

    def test_dead_node_rejects(self):
        node = DataNode("dn0")
        node.store(BlockId(1), b"x")
        node.kill()
        with pytest.raises(DataNodeError):
            node.read(BlockId(1))
        node.revive()
        assert node.read(BlockId(1)) == b"x"

    def test_stats(self):
        node = DataNode("dn0")
        node.store(BlockId(1), b"abcd")
        node.read(BlockId(1))
        node.read_range(BlockId(1), 0, 2)
        snap = node.stats.snapshot()
        assert snap["blocks_written"] == 1
        assert snap["blocks_read"] == 1
        assert snap["partial_reads"] == 1


class TestClusterBasics:
    def test_create_write_read(self):
        cluster = DFSCluster(num_datanodes=3, block_size=64)
        with cluster.create("/f") as writer:
            writer.write(b"a" * 200)
        reader = cluster.open("/f")
        assert reader.size == 200
        assert reader.pread(0, 200) == b"a" * 200

    def test_multi_block_layout(self):
        cluster = DFSCluster(num_datanodes=3, block_size=64)
        payload = bytes(range(256)) * 2
        with cluster.create("/blocks") as writer:
            writer.write(payload)
        entry = cluster.namenode.get_file("/blocks")
        assert len(entry.blocks) == len(payload) // 64
        reader = cluster.open("/blocks")
        assert reader.pread(0, len(payload)) == payload

    def test_cross_block_pread(self):
        cluster = DFSCluster(num_datanodes=2, block_size=32)
        payload = bytes(i % 251 for i in range(300))
        with cluster.create("/x") as writer:
            writer.write(payload)
        reader = cluster.open("/x")
        assert reader.pread(25, 50) == payload[25:75]

    def test_sequential_read_and_seek(self):
        cluster = DFSCluster(num_datanodes=2, block_size=16)
        with cluster.create("/seq") as writer:
            writer.write(b"0123456789" * 10)
        reader = cluster.open("/seq")
        assert reader.read(10) == b"0123456789"
        assert reader.tell() == 10
        reader.seek(95)
        assert reader.read() == b"56789"

    def test_write_offsets_reported(self):
        cluster = DFSCluster(num_datanodes=2, block_size=1024)
        with cluster.create("/off") as writer:
            assert writer.write(b"abc") == 0
            assert writer.write(b"defg") == 3

    def test_duplicate_create_rejected(self):
        cluster = DFSCluster()
        cluster.create("/dup").close()
        with pytest.raises(DFSError):
            cluster.create("/dup")

    def test_open_missing(self):
        with pytest.raises(DFSError):
            DFSCluster().open("/nope")

    def test_closed_writer_rejects(self):
        cluster = DFSCluster()
        writer = cluster.create("/w")
        writer.close()
        with pytest.raises(RuntimeError):
            writer.write(b"late")

    def test_list_and_delete(self):
        cluster = DFSCluster(block_size=32)
        for name in ("/idx/p0", "/idx/p1", "/other"):
            with cluster.create(name) as writer:
                writer.write(b"z" * 100)
        assert cluster.list_files("/idx") == ["/idx/p0", "/idx/p1"]
        cluster.delete("/idx/p0")
        assert not cluster.exists("/idx/p0")
        # Replicas reclaimed.
        assert all(not node.has_block(BlockId(0)) or True
                   for node in cluster.datanodes)


class TestReplication:
    def test_replica_count(self):
        cluster = DFSCluster(num_datanodes=3, block_size=64,
                             replication=3)
        with cluster.create("/r") as writer:
            writer.write(b"q" * 64)
        block = cluster.namenode.get_file("/r").blocks[0]
        assert len(block.replicas) == 3

    def test_replication_capped_by_cluster_size(self):
        cluster = DFSCluster(num_datanodes=2, replication=5)
        assert cluster.namenode.replication == 2

    def test_stored_bytes_include_replication(self):
        cluster = DFSCluster(num_datanodes=3, block_size=64, replication=3)
        with cluster.create("/s") as writer:
            writer.write(b"m" * 128)
        assert cluster.total_bytes() == 128
        assert cluster.total_stored_bytes() == 128 * 3

    def test_failover_to_replica(self):
        cluster = DFSCluster(num_datanodes=3, block_size=64, replication=2)
        with cluster.create("/ha") as writer:
            writer.write(b"n" * 64)
        block = cluster.namenode.get_file("/ha").blocks[0]
        cluster.datanode(block.replicas[0]).kill()
        reader = cluster.open("/ha")
        assert reader.pread(0, 64) == b"n" * 64

    def test_all_replicas_dead_raises(self):
        cluster = DFSCluster(num_datanodes=2, block_size=64, replication=2)
        with cluster.create("/dead") as writer:
            writer.write(b"n" * 64)
        for node in cluster.datanodes:
            node.kill()
        with pytest.raises(DataNodeError):
            cluster.open("/dead").pread(0, 10)

    def test_placement_spreads_blocks(self):
        cluster = DFSCluster(num_datanodes=3, block_size=16, replication=1)
        with cluster.create("/spread") as writer:
            writer.write(b"s" * 160)  # 10 blocks
        counts = [node.block_count for node in cluster.datanodes]
        assert max(counts) - min(counts) <= 2  # round-robin balance


class TestPaperCluster:
    def test_topology(self):
        cluster = paper_cluster()
        assert len(cluster.datanodes) == 3

    def test_io_report_keys(self):
        cluster = paper_cluster(block_size=64)
        with cluster.create("/f") as writer:
            writer.write(b"x" * 64)
        report = cluster.io_report()
        assert set(report) == {"dn0", "dn1", "dn2"}


@given(st.binary(min_size=0, max_size=3000),
       st.integers(min_value=1, max_value=257))
@settings(max_examples=30, deadline=None)
def test_roundtrip_any_payload_any_blocksize(payload, block_size):
    cluster = DFSCluster(num_datanodes=3, block_size=block_size)
    with cluster.create("/p") as writer:
        writer.write(payload)
    reader = cluster.open("/p")
    assert reader.pread(0, len(payload)) == payload
    assert reader.size == len(payload)
