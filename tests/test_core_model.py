"""Tests for the data model (Definitions 1-2, the TkLUS query)."""

import pytest

from repro.core.errors import DatasetError, QueryError
from repro.core.model import (
    Dataset,
    EdgeKind,
    Post,
    Semantics,
    SocialNetwork,
    TkLUSQuery,
)


def post(sid, uid, words=("hotel",), rsid=None, ruid=None,
         kind=None, location=(43.65, -79.38)):
    return Post(sid=sid, uid=uid, location=location, words=tuple(words),
                text=" ".join(words), rsid=rsid, ruid=ruid, kind=kind)


class TestPost:
    def test_timestamp_is_sid(self):
        assert post(42, 1).timestamp == 42

    def test_is_response(self):
        assert not post(1, 1).is_response
        assert post(2, 2, rsid=1, ruid=1).is_response

    def test_word_bag(self):
        bag = post(1, 1, words=("pizza", "pizza", "place")).word_bag()
        assert bag == {"pizza": 2, "place": 1}

    def test_frozen(self):
        with pytest.raises(AttributeError):
            post(1, 1).sid = 2  # type: ignore[misc]


class TestSocialNetwork:
    def test_reply_edges_and_labels(self):
        network = SocialNetwork()
        network.add_interaction(2, 1, post_sid=10, kind=EdgeKind.REPLY)
        network.add_interaction(2, 1, post_sid=11, kind=EdgeKind.REPLY)
        assert network.l_reply(2, 1) == [10, 11]
        assert network.l_reply(1, 2) == []
        assert network.users == {1, 2}

    def test_forward_edges_separate(self):
        network = SocialNetwork()
        network.add_interaction(3, 1, post_sid=20, kind=EdgeKind.FORWARD)
        assert network.l_forward(3, 1) == [20]
        assert network.l_reply(3, 1) == []

    def test_degrees(self):
        network = SocialNetwork()
        network.add_interaction(2, 1, 10, EdgeKind.REPLY)
        network.add_interaction(3, 1, 11, EdgeKind.FORWARD)
        network.add_interaction(2, 3, 12, EdgeKind.REPLY)
        assert network.in_degree(1) == 2
        assert network.out_degree(2) == 2
        assert network.out_degree(1) == 0


class TestDataset:
    def test_add_and_lookup(self):
        dataset = Dataset()
        dataset.add_post(post(1, 7))
        assert dataset.get(1).uid == 7
        assert len(dataset) == 1
        assert 7 in dataset.users

    def test_duplicate_sid_rejected(self):
        dataset = Dataset()
        dataset.add_post(post(1, 7))
        with pytest.raises(DatasetError):
            dataset.add_post(post(1, 8))

    def test_dangling_reply_rejected(self):
        dataset = Dataset()
        with pytest.raises(DatasetError):
            dataset.add_post(post(2, 8, rsid=1, ruid=7))

    def test_reply_builds_network_edge(self):
        dataset = Dataset()
        dataset.add_post(post(1, 7))
        dataset.add_post(post(2, 8, rsid=1, ruid=7, kind=EdgeKind.REPLY))
        assert dataset.network.l_reply(8, 7) == [2]

    def test_forward_kind_routes_to_forward_edges(self):
        dataset = Dataset()
        dataset.add_post(post(1, 7))
        dataset.add_post(post(2, 8, rsid=1, ruid=7, kind=EdgeKind.FORWARD))
        assert dataset.network.l_forward(8, 7) == [2]
        assert dataset.network.l_reply(8, 7) == []

    def test_posts_of(self):
        dataset = Dataset()
        dataset.extend([post(1, 7), post(2, 7), post(3, 8)])
        assert [p.sid for p in dataset.posts_of(7)] == [1, 2]
        assert dataset.post_count_of(7) == 2
        assert dataset.posts_of(99) == []


class TestTkLUSQuery:
    def test_valid_query(self):
        query = TkLUSQuery(location=(43.65, -79.38), radius_km=10.0,
                           keywords=frozenset({"hotel"}), k=5)
        assert query.k == 5
        assert query.semantics is Semantics.OR

    @pytest.mark.parametrize("kwargs", [
        dict(location=(43.65, -79.38), radius_km=0.0,
             keywords=frozenset({"a"})),
        dict(location=(43.65, -79.38), radius_km=-1.0,
             keywords=frozenset({"a"})),
        dict(location=(43.65, -79.38), radius_km=1.0, keywords=frozenset()),
        dict(location=(43.65, -79.38), radius_km=1.0,
             keywords=frozenset({"a"}), k=0),
        dict(location=(95.0, 0.0), radius_km=1.0, keywords=frozenset({"a"})),
    ])
    def test_invalid_queries(self, kwargs):
        with pytest.raises(QueryError):
            TkLUSQuery(**kwargs)

    def test_create_normalises_keywords(self):
        query = TkLUSQuery.create((43.65, -79.38), 10.0,
                                  ["Hotels", "restaurants"])
        assert query.keywords == frozenset({"hotel", "restaur"})

    def test_create_accepts_single_string(self):
        query = TkLUSQuery.create((43.65, -79.38), 10.0, "hotel")
        assert query.keywords == frozenset({"hotel"})

    def test_create_multiword_string_splits(self):
        query = TkLUSQuery.create((43.65, -79.38), 10.0, ["spicy restaurant"])
        assert query.keywords == frozenset({"spici", "restaur"})
