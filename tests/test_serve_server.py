"""End-to-end tests for :class:`repro.serve.server.QueryServer`."""

import threading

import pytest

from repro.core.model import Semantics
from repro.data.generator import generate_corpus
from repro.data.queries import QueryWorkload
from repro.ingest import IngestConfig, IngestService
from repro.query.engine import TkLUSEngine
from repro.serve import (
    AdmissionConfig,
    QueryServer,
    QueryTimeout,
    ServeConfig,
    ShedError,
)

JOIN_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(num_users=60, num_root_tweets=300, seed=7)


@pytest.fixture(scope="module")
def engine(corpus):
    return TkLUSEngine.from_posts(corpus.posts)


@pytest.fixture(scope="module")
def queries(corpus):
    workload = QueryWorkload(corpus, seed=3)
    return workload.make_queries(2, 20.0, k=5, semantics=Semantics.OR,
                                 limit=8)


class TestStaticServing:
    def test_execute_matches_direct_engine(self, engine, queries):
        with QueryServer(engine, config=ServeConfig(workers=2)) as server:
            for query in queries:
                served = server.execute(query)
                direct = engine.search(query, "max").users
                assert served == direct

    def test_sum_method(self, engine, queries):
        with QueryServer(engine, config=ServeConfig(workers=1)) as server:
            query = queries[0]
            assert server.execute(query, "sum") == \
                engine.search(query, "sum").users

    def test_cache_hit_on_repeat(self, engine, queries):
        with QueryServer(engine, config=ServeConfig(workers=1)) as server:
            query = queries[0]
            first = server.submit(query)
            first.wait(JOIN_TIMEOUT)
            second = server.submit(query)
            second.wait(JOIN_TIMEOUT)
            assert not first.cached
            assert second.cached
            assert second.users == first.users
            assert server.stats()["cache"]["hits"] == 1

    def test_cache_disabled(self, engine, queries):
        config = ServeConfig(workers=1, cache_enabled=False)
        with QueryServer(engine, config=config) as server:
            query = queries[0]
            server.execute(query)
            ticket = server.submit(query)
            ticket.wait(JOIN_TIMEOUT)
            assert not ticket.cached
            assert server.stats()["cache"] is None

    def test_queue_spent_deadline_times_out_without_executing(
            self, engine, queries):
        with QueryServer(engine, config=ServeConfig(workers=1)) as server:
            # A deadline already in the past must fail as a timeout at
            # the worker, before any execution or snapshot pin.
            ticket = server.submit(queries[0], timeout_seconds=-1.0)
            ticket.wait(JOIN_TIMEOUT)
            assert ticket.outcome == "timeout"
            with pytest.raises(QueryTimeout):
                ticket.result(JOIN_TIMEOUT)
            assert server.stats()["timeouts"] == 1

    def test_cancelled_before_pickup(self, engine, queries):
        server = QueryServer(engine, config=ServeConfig(workers=1))
        ticket = server.submit(queries[0])   # workers not started yet
        ticket.cancel()
        with server:
            ticket.wait(JOIN_TIMEOUT)
        assert ticket.outcome == "cancelled"
        assert server.stats()["cancelled"] == 1

    def test_shed_when_queue_full(self, engine, queries):
        config = ServeConfig(
            workers=1,
            admission=AdmissionConfig(max_queue_depth=2))
        server = QueryServer(engine, config=config)   # never started
        server.submit(queries[0])
        server.submit(queries[1])
        with pytest.raises(ShedError):
            server.submit(queries[2])

    def test_error_ticket_carries_exception(self, engine, queries):
        with QueryServer(engine, config=ServeConfig(workers=1)) as server:
            ticket = server.submit(queries[0], method="nope")
            ticket.wait(JOIN_TIMEOUT)
            assert ticket.outcome == "error"
            with pytest.raises(Exception):
                ticket.result(JOIN_TIMEOUT)
            assert server.stats()["errors"] == 1

    def test_stop_drains_queued_work(self, engine, queries):
        server = QueryServer(engine, config=ServeConfig(workers=2))
        tickets = [server.submit(query) for query in queries]
        with server:
            pass   # __exit__ stops with drain=True
        assert all(ticket.done() for ticket in tickets)
        assert all(ticket.outcome == "ok" for ticket in tickets)

    def test_stop_without_drain_cancels_queued_work(self, engine, queries):
        server = QueryServer(engine, config=ServeConfig(workers=1))
        tickets = [server.submit(query) for query in queries]
        server.stop(drain=False)
        assert all(ticket.done() for ticket in tickets)
        assert all(ticket.outcome == "cancelled" for ticket in tickets)

    def test_stats_shape(self, engine, queries):
        with QueryServer(engine, config=ServeConfig(workers=2)) as server:
            server.execute(queries[0])
            stats = server.stats()
        assert stats["workers"] == 2
        assert stats["completed"] == 1
        assert stats["uptime_seconds"] > 0
        assert 0.0 <= stats["worker_utilization"] <= 1.0
        assert set(stats["queue"]) >= {"depth", "offered", "shed"}
        assert set(stats["cache"]) >= {"hits", "misses", "hit_rate"}

    def test_concurrent_clients(self, engine, queries):
        with QueryServer(engine, config=ServeConfig(workers=4)) as server:
            expected = {id(q): engine.search(q, "max").users
                        for q in queries}
            errors = []

            def client():
                try:
                    for query in queries:
                        assert server.execute(query) == expected[id(query)]
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(JOIN_TIMEOUT)
            assert not any(thread.is_alive() for thread in threads)
            assert errors == []


class TestLiveServing:
    def test_ingest_invalidates_cache(self, corpus, tmp_path):
        posts = corpus.posts
        service = IngestService(
            str(tmp_path / "svc"),
            ingest_config=IngestConfig(flush_posts=100))
        for post in posts[:200]:
            service.append(post)
        service.flush()
        engine = service.build_query_engine()
        workload = QueryWorkload(corpus, seed=3)
        query = workload.make_queries(1, 30.0, k=5,
                                      semantics=Semantics.OR, limit=1)[0]
        with QueryServer(engine, live=service.live,
                         config=ServeConfig(workers=1)) as server:
            server.execute(query)
            hit = server.submit(query)
            hit.wait(JOIN_TIMEOUT)
            assert hit.cached
            token_before = service.live.version_token()
            for post in posts[200:220]:
                service.append(post)
            assert service.live.version_token() != token_before
            miss = server.submit(query)
            miss.wait(JOIN_TIMEOUT)
            assert not miss.cached
            # Served result equals a fresh uncached execution now.
            assert miss.users == engine.search(query, "max").users
        service.close()

    def test_flush_changes_token_but_not_results(self, corpus, tmp_path):
        posts = corpus.posts
        service = IngestService(
            str(tmp_path / "svc2"),
            ingest_config=IngestConfig(flush_posts=10_000))
        for post in posts[:200]:
            service.append(post)
        engine = service.build_query_engine()
        workload = QueryWorkload(corpus, seed=3)
        query = workload.make_queries(1, 30.0, k=5,
                                      semantics=Semantics.OR, limit=1)[0]
        with QueryServer(engine, live=service.live,
                         config=ServeConfig(workers=1)) as server:
            before = server.execute(query)
            token_before = service.live.version_token()
            service.flush()   # watermark may regress; epoch must move
            token_after = service.live.version_token()
            assert token_after != token_before
            after = server.execute(query)
            assert after == before
            assert after == engine.search(query, "max").users
        service.close()
