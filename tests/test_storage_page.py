"""Tests for slotted pages and record-id packing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.page import (
    INVALID_PAGE,
    PAGE_SIZE,
    Page,
    PageError,
    SlottedPage,
    pack_record_id,
    unpack_record_id,
)


class TestPage:
    def test_fresh_page_zeroed(self):
        page = Page(0)
        assert len(page.data) == PAGE_SIZE
        assert not page.dirty

    def test_wrong_size_rejected(self):
        with pytest.raises(PageError):
            Page(0, b"short")

    def test_mark_dirty(self):
        page = Page(3)
        page.mark_dirty()
        assert page.dirty


class TestSlottedPage:
    def test_insert_read(self):
        slotted = SlottedPage(Page(0))
        slot = slotted.insert(b"hello")
        assert slotted.read(slot) == b"hello"
        assert slotted.slot_count == 1

    def test_multiple_records(self):
        slotted = SlottedPage(Page(0))
        slots = [slotted.insert(f"record-{i}".encode()) for i in range(10)]
        for i, slot in enumerate(slots):
            assert slotted.read(slot) == f"record-{i}".encode()

    def test_empty_record_rejected(self):
        slotted = SlottedPage(Page(0))
        with pytest.raises(PageError):
            slotted.insert(b"")

    def test_overflow_raises(self):
        slotted = SlottedPage(Page(0))
        big = b"x" * 1000
        with pytest.raises(PageError):
            for _ in range(10):
                slotted.insert(big)

    def test_delete_tombstones(self):
        slotted = SlottedPage(Page(0))
        slot = slotted.insert(b"doomed")
        keep = slotted.insert(b"keeper")
        slotted.delete(slot)
        with pytest.raises(KeyError):
            slotted.read(slot)
        assert slotted.read(keep) == b"keeper"
        assert slotted.live_count() == 1
        assert slotted.slot_count == 2  # slot directory keeps the tombstone

    def test_double_delete_raises(self):
        slotted = SlottedPage(Page(0))
        slot = slotted.insert(b"x")
        slotted.delete(slot)
        with pytest.raises(KeyError):
            slotted.delete(slot)

    def test_out_of_range_slot(self):
        slotted = SlottedPage(Page(0))
        with pytest.raises(KeyError):
            slotted.read(0)
        with pytest.raises(KeyError):
            slotted.delete(5)

    def test_records_iteration_skips_deleted(self):
        slotted = SlottedPage(Page(0))
        slots = [slotted.insert(bytes([65 + i]) * 3) for i in range(5)]
        slotted.delete(slots[2])
        live = dict(slotted.records())
        assert set(live) == {0, 1, 3, 4}

    def test_free_space_decreases(self):
        slotted = SlottedPage(Page(0))
        before = slotted.free_space()
        slotted.insert(b"abcdef")
        assert slotted.free_space() < before

    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                    max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_many(self, records):
        slotted = SlottedPage(Page(0))
        stored = []
        for record in records:
            try:
                stored.append((slotted.insert(record), record))
            except PageError:
                break
        for slot, record in stored:
            assert slotted.read(slot) == record


class TestRecordId:
    @given(st.integers(min_value=0, max_value=2**30),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_pack_roundtrip(self, page_no, slot):
        assert unpack_record_id(pack_record_id(page_no, slot)) == (page_no, slot)

    def test_bad_components(self):
        with pytest.raises(ValueError):
            pack_record_id(-1, 0)
        with pytest.raises(ValueError):
            pack_record_id(0, 0x10000)

    def test_invalid_page_sentinel_distinct(self):
        assert INVALID_PAGE == 0xFFFFFFFF
