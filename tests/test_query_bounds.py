"""Tests for upper-bound management (Definition 11, Section V-B)."""

import pytest

from repro.core.model import Dataset, Post, Semantics
from repro.core.scoring import upper_bound_popularity
from repro.core.thread import DatasetThreadBuilder
from repro.query.bounds import (
    BoundsManager,
    make_bounds_manager,
    precompute_keyword_bounds,
)
from repro.storage.metadata import MetadataDatabase
from repro.storage.records import make_record


def tiny_dataset():
    """Two threads: a 'hotel' root with 3 replies, a 'cafe' singleton."""
    dataset = Dataset()
    dataset.add_post(Post(1, 1, (0.0, 0.0), ("hotel",), "hotel"))
    for sid in (2, 3, 4):
        dataset.add_post(Post(sid, sid, (0.0, 0.0), ("reply",), "reply",
                              ruid=1, rsid=1))
    dataset.add_post(Post(5, 5, (0.0, 0.0), ("cafe",), "cafe"))
    return dataset


class TestBoundsManager:
    def test_global_fallback(self):
        manager = BoundsManager(global_bound=100.0)
        assert manager.bound_for_keyword("anything") == 100.0

    def test_keyword_bound_preferred(self):
        manager = BoundsManager(100.0, {"hotel": 5.0})
        assert manager.bound_for_keyword("hotel") == 5.0
        assert manager.bound_for_keyword("cafe") == 100.0

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            BoundsManager(-1.0)
        manager = BoundsManager(1.0)
        with pytest.raises(ValueError):
            manager.add_keyword_bound("x", -0.5)

    def test_and_takes_min_or_takes_max(self):
        """Section VI-B5's 'Mexican restaurant' rule."""
        manager = BoundsManager(100.0, {"restaur": 20.0, "mexican": 5.0})
        keywords = frozenset({"restaur", "mexican"})
        assert manager.bound_for_query(keywords, Semantics.AND) == 5.0
        assert manager.bound_for_query(keywords, Semantics.OR) == 20.0

    def test_query_with_non_hot_keyword(self):
        manager = BoundsManager(100.0, {"restaur": 20.0})
        keywords = frozenset({"restaur", "quiet"})
        # "quiet" falls back to the global bound.
        assert manager.bound_for_query(keywords, Semantics.AND) == 20.0
        assert manager.bound_for_query(keywords, Semantics.OR) == 100.0

    def test_empty_keywords(self):
        manager = BoundsManager(7.0)
        assert manager.bound_for_query(frozenset(), Semantics.OR) == 7.0


class TestPrecomputeKeywordBounds:
    def test_bound_is_max_thread_popularity(self):
        dataset = tiny_dataset()
        bounds = precompute_keyword_bounds(dataset, ["hotel", "cafe"],
                                           depth=6, epsilon=0.1)
        builder = DatasetThreadBuilder(dataset, depth=6, epsilon=0.1)
        assert bounds["hotel"] == pytest.approx(builder.popularity(1))
        assert bounds["cafe"] == pytest.approx(0.1)  # singleton -> epsilon

    def test_absent_keyword_zero(self):
        bounds = precompute_keyword_bounds(tiny_dataset(), ["pizza"])
        assert bounds["pizza"] == 0.0

    def test_bounds_dominate_every_thread(self, corpus, dataset):
        """Property: the precomputed bound for a keyword is >= the
        popularity of every thread rooted at a tweet containing it."""
        keywords = ["restaur", "hotel"]
        bounds = precompute_keyword_bounds(dataset, keywords)
        builder = DatasetThreadBuilder(dataset)
        checked = 0
        for post in list(dataset.posts.values())[:500]:
            for keyword in keywords:
                if keyword in post.words:
                    assert builder.popularity(post.sid) <= bounds[keyword] + 1e-9
                    checked += 1
        assert checked > 0


class TestFromDatabase:
    def test_global_bound_uses_fanout(self):
        db = MetadataDatabase.in_memory()
        db.insert(make_record(1, 1, 0.0, 0.0))
        for sid in (2, 3, 4):
            db.insert(make_record(sid, sid, 0.0, 0.0, ruid=1, rsid=1))
        manager = BoundsManager.from_database(db, depth=4)
        assert manager.global_bound == pytest.approx(
            upper_bound_popularity(3, 4))

    def test_make_bounds_manager_combines(self):
        db = MetadataDatabase.in_memory()
        db.insert(make_record(1, 1, 0.0, 0.0))
        for sid in (2, 3):
            db.insert(make_record(sid, sid, 0.0, 0.0, ruid=1, rsid=1))
        manager = make_bounds_manager(db, tiny_dataset(), ["hotel"])
        assert "hotel" in manager.keyword_bounds
        assert manager.keyword_bounds["hotel"] < manager.global_bound
