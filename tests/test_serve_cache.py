"""Unit tests for the serving layer's cache and deadline primitives."""

import pytest

from repro.serve import (
    CancelToken,
    QueryCancelled,
    QueryTimeout,
    ResultCache,
    ShedError,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCancelToken:
    def test_no_deadline_never_expires(self):
        token = CancelToken.after(None, FakeClock())
        assert not token.expired()
        assert token.remaining() is None
        token.check()   # no raise

    def test_deadline_expiry_raises_timeout(self):
        clock = FakeClock()
        token = CancelToken.after(2.0, clock)
        token.check()
        assert token.remaining() == pytest.approx(2.0)
        clock.advance(2.5)
        assert token.expired()
        with pytest.raises(QueryTimeout):
            token.check()

    def test_cancel_wins_over_deadline(self):
        clock = FakeClock()
        token = CancelToken.after(2.0, clock)
        clock.advance(5.0)
        token.cancel()
        # Cancellation is reported even though the deadline also passed.
        with pytest.raises(QueryCancelled):
            token.check()

    def test_cancel_without_deadline(self):
        token = CancelToken.after(None, FakeClock())
        token.cancel()
        with pytest.raises(QueryCancelled):
            token.check()


class TestShedError:
    def test_carries_retry_after(self):
        error = ShedError("queue full", retry_after_seconds=1.5)
        assert error.retry_after_seconds == 1.5
        assert "queue full" in str(error)


SPEC_A = ("max", "or")
SPEC_B = ("sum", "or")
Q1 = "q1"
Q2 = "q2"
TOKEN_1 = (10, 1)
TOKEN_2 = (0, 2)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.lookup(SPEC_A, Q1, TOKEN_1) is None
        cache.store(SPEC_A, Q1, TOKEN_1, [(1, 0.5)])
        assert cache.lookup(SPEC_A, Q1, TOKEN_1) == [(1, 0.5)]

    def test_key_is_the_full_triple(self):
        cache = ResultCache()
        cache.store(SPEC_A, Q1, TOKEN_1, [(1, 0.5)])
        assert cache.lookup(SPEC_B, Q1, TOKEN_1) is None
        assert cache.lookup(SPEC_A, Q2, TOKEN_1) is None
        assert cache.lookup(SPEC_A, Q1, TOKEN_2) is None

    def test_stale_token_never_hits(self):
        # The invalidation guarantee: a lookup at the current token can
        # never see an entry stored under a superseded one.
        cache = ResultCache()
        cache.store(SPEC_A, Q1, TOKEN_1, [(1, 0.5)])
        assert cache.lookup(SPEC_A, Q1, TOKEN_2) is None

    def test_purge_stale_drops_superseded_entries(self):
        cache = ResultCache()
        cache.store(SPEC_A, Q1, TOKEN_1, [(1, 0.5)])
        cache.store(SPEC_A, Q2, TOKEN_2, [(2, 0.4)])
        dropped = cache.purge_stale(TOKEN_2)
        assert dropped == 1
        assert len(cache) == 1
        assert cache.lookup(SPEC_A, Q2, TOKEN_2) == [(2, 0.4)]
        assert cache.stats()["invalidated"] == 1

    def test_lru_eviction_at_capacity(self):
        cache = ResultCache(capacity=2)
        cache.store(SPEC_A, "a", TOKEN_1, [(1, 1.0)])
        cache.store(SPEC_A, "b", TOKEN_1, [(2, 1.0)])
        # Touch "a" so "b" is the LRU victim.
        assert cache.lookup(SPEC_A, "a", TOKEN_1) is not None
        cache.store(SPEC_A, "c", TOKEN_1, [(3, 1.0)])
        assert cache.lookup(SPEC_A, "b", TOKEN_1) is None
        assert cache.lookup(SPEC_A, "a", TOKEN_1) is not None
        assert cache.stats()["evicted"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_clear_counts_as_invalidation(self):
        cache = ResultCache()
        cache.store(SPEC_A, Q1, TOKEN_1, [(1, 0.5)])
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["invalidated"] == 1

    def test_stats_hit_rate(self):
        cache = ResultCache()
        cache.store(SPEC_A, Q1, TOKEN_1, [(1, 0.5)])
        cache.lookup(SPEC_A, Q1, TOKEN_1)
        cache.lookup(SPEC_A, Q2, TOKEN_1)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
