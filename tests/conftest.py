"""Shared fixtures: a small deterministic corpus and a fully wired engine.

Session-scoped because engine construction (MapReduce index build +
metadata load + bound pre-computation) is the expensive part; tests that
mutate state build their own instances.
"""

from __future__ import annotations

import pytest

from repro.data.generator import generate_corpus
from repro.data.queries import QueryWorkload
from repro.query.baseline import BruteForceProcessor
from repro.query.engine import TkLUSEngine


@pytest.fixture(scope="session")
def corpus():
    return generate_corpus(num_users=300, num_root_tweets=1500, seed=1234)


@pytest.fixture(scope="session")
def dataset(corpus):
    return corpus.to_dataset()


@pytest.fixture(scope="session")
def engine(corpus):
    return TkLUSEngine.from_posts(corpus.posts)


@pytest.fixture(scope="session")
def workload(corpus):
    return QueryWorkload(corpus, seed=99)


@pytest.fixture(scope="session")
def oracle(dataset):
    return BruteForceProcessor(dataset)
