"""Tests for table formatting (number rendering, alignment)."""

from repro.eval.report import format_table, print_table


class TestValueFormatting:
    def test_large_float_one_decimal(self):
        text = format_table([{"x": 1234.5678}])
        assert "1234.6" in text

    def test_mid_float_four_decimals(self):
        text = format_table([{"x": 0.123456}])
        assert "0.1235" in text

    def test_tiny_float_six_decimals(self):
        text = format_table([{"x": 0.0000123}])
        assert "0.000012" in text

    def test_integral_float(self):
        text = format_table([{"x": 5.0}])
        assert "5.0" in text

    def test_int_and_str_passthrough(self):
        text = format_table([{"a": 7, "b": "label"}])
        assert "7" in text and "label" in text


class TestLayout:
    def test_column_order_from_first_row(self):
        rows = [{"beta": 1, "alpha": 2}]
        header = format_table(rows).splitlines()[0]
        assert header.index("beta") < header.index("alpha")

    def test_missing_key_renders_empty(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        lines = format_table(rows).splitlines()
        assert len(lines) == 4  # header, rule, two rows

    def test_alignment(self):
        rows = [{"name": "x", "value": 1}, {"name": "longer", "value": 22}]
        lines = format_table(rows).splitlines()
        # All rows share the same separator column position.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_print_table_smoke(self, capsys):
        print_table([{"a": 1}], title="T")
        out = capsys.readouterr().out
        assert out.startswith("T\n")
        assert out.endswith("\n\n")
