"""Smoke and shape tests for the experiment harness (one per figure)."""

import pytest

from repro.eval.experiments import (
    ExperimentContext,
    fig5_index_construction_time,
    fig6_index_size,
    fig7_geohash_length,
    fig8_single_keyword,
    fig9_kendall_single,
    fig10_multi_keyword,
    fig11_kendall_multi,
    fig12_specific_bounds,
    fig13_user_study,
    table2_keyword_frequencies,
    table4_geohash_lengths,
)
from repro.eval.report import format_table


@pytest.fixture(scope="module")
def context():
    return ExperimentContext.create(num_users=200, num_root_tweets=900,
                                    seed=77, queries_per_point=3)


class TestTables:
    def test_table2_rows(self, context):
        rows = table2_keyword_frequencies(context.corpus)
        assert len(rows) == 10
        counts = [row["frequency"] for row in rows]
        assert counts == sorted(counts, reverse=True)
        assert rows[0]["rank"] == 1

    def test_table4_matches_paper(self):
        rows = table4_geohash_lengths()
        assert [row["geohash"] for row in rows] == ["6", "6g", "6gx", "6gxp"]


class TestIndexFigures:
    def test_fig5_rows(self, context):
        rows = fig5_index_construction_time(context.corpus, lengths=(2, 4))
        assert len(rows) == 2
        assert all(row["construction_seconds"] > 0 for row in rows)

    def test_fig6_size_flat_in_length(self, context):
        rows = fig6_index_size(context.corpus, lengths=(1, 2, 3, 4))
        sizes = [row["inverted_bytes"] for row in rows]
        assert all(size > 0 for size in sizes)
        # The paper's shape: size steady across geohash configurations
        # (identical postings, only key fragmentation differs).
        assert max(sizes) <= 1.2 * min(sizes)

    def test_fig6_replication_overhead(self, context):
        rows = fig6_index_size(context.corpus, lengths=(4,))
        row = rows[0]
        assert row["stored_bytes_with_replication"] >= row["inverted_bytes"]


class TestQueryFigures:
    def test_fig7_rows(self, context):
        rows = fig7_geohash_length(context, lengths=(2, 4), radii=(5.0, 10.0))
        assert len(rows) == 4
        assert all(row["mean_seconds"] > 0 for row in rows)

    def test_fig8_rows(self, context):
        rows = fig8_single_keyword(context, radii=(5.0, 20.0))
        assert {row["radius_km"] for row in rows} == {5.0, 20.0}
        assert all(row["sum_seconds"] > 0 and row["max_seconds"] > 0
                   for row in rows)

    def test_fig9_tau_in_range(self, context):
        rows = fig9_kendall_single(context, radii=(10.0,), ks=(5, 10))
        for row in rows:
            assert -1.0 <= row["mean_tau"] <= 1.0

    def test_fig10_covers_configurations(self, context):
        rows = fig10_multi_keyword(context, radii=(10.0,))
        configurations = {(row["keywords"], row["semantics"]) for row in rows}
        assert (1, "or") in configurations
        assert (2, "and") in configurations and (2, "or") in configurations
        assert (3, "and") in configurations and (3, "or") in configurations

    def test_fig11_tau_rows(self, context):
        rows = fig11_kendall_multi(context, radii=(10.0,))
        assert len(rows) == 5  # 1xOR + 2x(AND,OR)
        for row in rows:
            assert -1.0 <= row["mean_tau"] <= 1.0

    def test_fig12_bounds_comparison(self, context):
        rows = fig12_specific_bounds(context, radii=(20.0,))
        assert {row["semantics"] for row in rows} == {"and", "or"}
        for row in rows:
            # Hot bounds can only prune at least as much as the global
            # bound (which is looser).
            assert row["hot_bound_pruned"] >= row["global_bound_pruned"]

    def test_fig13_precisions(self, context):
        rows = fig13_user_study(context, radii=(5.0, 20.0), num_queries=8)
        for row in rows:
            assert 0.0 <= row["precision_top5"] <= 1.0
            assert 0.0 <= row["precision_top10"] <= 1.0


class TestContext:
    def test_engine_cached_per_length(self, context):
        assert context.engine(4) is context.engine(4)
        assert context.engine(4) is not context.engine(3)

    def test_timed_search_positive(self, context):
        query = context.workload.bind(context.workload.specs(1)[0],
                                      radius_km=10.0)
        assert context.timed_search(context.engine(4), query, "sum") > 0


class TestReport:
    def test_format_table(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 22, "b": 0.25}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="x")
