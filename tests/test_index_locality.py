"""Tests for geohash range partitioning and the data-locality claim."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dfs.cluster import paper_cluster
from repro.geo.geohash import BASE32
from repro.index.builder import IndexConfig
from repro.index.hybrid import HybridIndex
from repro.index.locality import (
    GeohashRangePartitioner,
    measure_query_locality,
)
from repro.text import Analyzer

geohashes = st.text(alphabet=BASE32, min_size=1, max_size=6)


class TestRangePartitioner:
    @given(geohashes, st.integers(min_value=1, max_value=64))
    def test_in_range(self, geohash, partitions):
        partitioner = GeohashRangePartitioner()
        assert 0 <= partitioner.partition((geohash, "term"), partitions) \
            < partitions

    @given(geohashes, geohashes, st.integers(min_value=2, max_value=16))
    @settings(max_examples=80, deadline=None)
    def test_order_preserving(self, a, b, partitions):
        """Lexicographically ordered geohashes map to ordered (or equal)
        partitions — the property that keeps regions contiguous."""
        partitioner = GeohashRangePartitioner()
        pa = partitioner.partition((a, "x"), partitions)
        pb = partitioner.partition((b, "x"), partitions)
        if a <= b:
            assert pa <= pb
        else:
            assert pa >= pb

    def test_term_ignored(self):
        partitioner = GeohashRangePartitioner()
        assert (partitioner.partition(("6gxp", "hotel"), 8)
                == partitioner.partition(("6gxp", "pizza"), 8))

    def test_prefix_neighbours_share_partition(self):
        partitioner = GeohashRangePartitioner()
        base = partitioner.partition(("dpz8", "x"), 4)
        assert partitioner.partition(("dpz9", "x"), 4) == base

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError):
            GeohashRangePartitioner().partition(("aXcd", "x"), 4)


class TestIndexConfigPartitioning:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            IndexConfig(partitioning="zorder")

    def test_range_build_answers_match_hash_build(self, corpus):
        hash_index = HybridIndex.build(
            corpus.posts, paper_cluster(),
            config=IndexConfig(partitioning="hash"))
        range_index = HybridIndex.build(
            corpus.posts, paper_cluster(),
            config=IndexConfig(partitioning="range"))
        for (cell, term), _ref in list(hash_index.forward.items())[:200]:
            assert (range_index.postings(cell, term)
                    == hash_index.postings(cell, term))


class TestLocalityMeasurement:
    @pytest.fixture(scope="class")
    def queries(self, corpus, workload):
        analyzer = Analyzer()
        rng = random.Random(3)
        result = []
        for spec in workload.specs(1)[:10]:
            terms = analyzer.analyze_query_keywords(spec.keywords)
            result.append((corpus.sample_location(rng), 15.0, terms))
        return result

    def test_range_beats_hash(self, corpus, queries):
        hash_index = HybridIndex.build(
            corpus.posts, paper_cluster(),
            config=IndexConfig(partitioning="hash", num_reduce_tasks=8))
        range_index = HybridIndex.build(
            corpus.posts, paper_cluster(),
            config=IndexConfig(partitioning="range", num_reduce_tasks=8))
        hash_report = measure_query_locality(hash_index, queries)
        range_report = measure_query_locality(range_index, queries)
        # The paper's claim: geohash layout keeps a query region's data
        # together.
        assert range_report.mean_part_files < hash_report.mean_part_files
        assert range_report.mean_part_files <= 1.5

    def test_empty_workload(self, corpus):
        index = HybridIndex.build(corpus.posts[:100], paper_cluster())
        report = measure_query_locality(index, [])
        assert report.queries == 0
        assert report.mean_part_files == 0.0

    def test_report_row_shape(self, corpus, queries):
        index = HybridIndex.build(
            corpus.posts, paper_cluster(),
            config=IndexConfig(partitioning="range"))
        row = measure_query_locality(index, queries).as_row()
        assert set(row) == {"queries", "mean_part_files", "mean_datanodes",
                            "max_part_files", "max_datanodes"}
