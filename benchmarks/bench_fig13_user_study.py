"""Fig 13: (simulated) user-study precision of both ranking methods.

Paper shapes: precision 60-80 % for query ranges up to 10 km, roughly
decreasing with the query range; top-5 precision above top-10.
"""

from repro.eval.experiments import fig13_user_study


def test_fig13_table(benchmark, context, save_rows):
    rows = benchmark.pedantic(fig13_user_study, args=(context,),
                              rounds=1, iterations=1)
    save_rows("fig13_user_study", rows,
              "Fig 13 — (simulated) user study precision")

    def rows_for(method):
        return sorted((row for row in rows if row["method"] == method),
                      key=lambda row: row["radius_km"])

    for method in ("sum", "max"):
        method_rows = rows_for(method)
        # Shape 1: small-radius precision in the paper's 60-80+% band.
        assert method_rows[0]["precision_top5"] >= 0.55
        # Shape 2: precision decays from 5 km to 20 km.
        assert (method_rows[-1]["precision_top10"]
                <= method_rows[0]["precision_top10"] + 0.05)
        # Shape 3: top-5 >= top-10 on average.
        mean5 = sum(r["precision_top5"] for r in method_rows) / len(method_rows)
        mean10 = sum(r["precision_top10"] for r in method_rows) / len(method_rows)
        assert mean5 >= mean10 - 0.05


def test_fig13_judgement_benchmark(benchmark, context):
    """Benchmarked unit: a full top-10 judgement round for one query."""
    from repro.eval.userstudy import SimulatedUserStudy, StudyConfig
    engine = context.engine(4)
    study = SimulatedUserStudy(context.corpus.to_dataset(), StudyConfig())
    query = context.workload.bind(context.workload.specs(1)[0],
                                  radius_km=10.0, k=10)
    ranking = engine.search_max(query).ranking()

    result = benchmark(study.precision_at, ranking, query)
    assert set(result) == {5, 10}
