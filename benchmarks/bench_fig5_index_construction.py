"""Fig 5: index construction time vs geohash encoding length.

Paper shape: construction time is insensitive to the geohash
configuration (~850 min for 514M tweets on their 3-node cluster; our
absolute numbers are laptop-scale over the synthetic corpus).
"""

from repro.dfs.cluster import paper_cluster
from repro.eval.experiments import fig5_index_construction_time
from repro.index.builder import IndexConfig
from repro.index.hybrid import HybridIndex


def test_fig5_construction_time_table(benchmark, context, save_rows):
    rows = benchmark.pedantic(fig5_index_construction_time,
                              args=(context.corpus,), rounds=1, iterations=1)
    save_rows("fig5_index_construction", rows,
              "Fig 5 — index construction time vs geohash length")
    times = [row["construction_seconds"] for row in rows]
    # Paper shape: steady across lengths (allow 2x wobble at small scale).
    assert max(times) <= 2.0 * min(times)


def test_fig5_build_benchmark(benchmark, context):
    """The benchmarked unit: one full MapReduce index build at the
    paper's chosen 4-length configuration."""

    def build():
        return HybridIndex.build(context.corpus.posts, paper_cluster(),
                                 config=IndexConfig(geohash_length=4,
                                                    workers=2))

    index = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(index.forward) > 0
