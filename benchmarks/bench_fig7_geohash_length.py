"""Fig 7: effect of geohash encoding length on query time.

Paper shape: for the practical 5-20 km radii, longer encodings benefit
TkLUS query processing (coarser grids force each query to scan many
non-candidate points per cell); the paper settles on 4-length encoding.
"""

from repro.eval.experiments import fig7_geohash_length


def test_fig7_geohash_length_table(benchmark, context, save_rows):
    rows = benchmark.pedantic(fig7_geohash_length, args=(context,),
                              rounds=1, iterations=1)
    save_rows("fig7_geohash_length", rows,
              "Fig 7 — query time vs geohash length (radii 5-20 km)")
    # Shape: averaged over the evaluated radii, length 4 beats length 1.
    mean = {}
    for row in rows:
        mean.setdefault(row["geohash_length"], []).append(row["mean_seconds"])
    mean_1 = sum(mean[1]) / len(mean[1])
    mean_4 = sum(mean[4]) / len(mean[4])
    assert mean_4 <= mean_1 * 1.1  # length 4 at least competitive


def test_fig7_query_benchmark_length4(benchmark, context):
    """Benchmarked unit: one 10 km query on the 4-length index."""
    engine = context.engine(4)
    query = context.workload.bind(context.workload.specs(1)[0],
                                  radius_km=10.0)

    def run():
        engine.threads.clear_cache()
        return engine.search_max(query)

    result = benchmark(run)
    assert result.stats.cells_covered > 0


def test_fig7_query_benchmark_length1(benchmark, context):
    """Same query against the coarsest (1-length) index for contrast."""
    engine = context.engine(1)
    query = context.workload.bind(context.workload.specs(1)[0],
                                  radius_km=10.0)

    def run():
        engine.threads.clear_cache()
        return engine.search_max(query)

    result = benchmark(run)
    assert result.stats.cells_covered >= 1
