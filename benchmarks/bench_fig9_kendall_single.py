"""Fig 9: Kendall tau between sum- and max-ranked results, single
keyword, top-5 and top-10.

Paper shape: "In all tested settings, the Kendall tau coefficient is
higher than 0.863" — the two rankings are highly consistent.
"""

from repro.eval.experiments import fig9_kendall_single
from repro.eval.kendall import kendall_tau


def test_fig9_table(benchmark, context, save_rows):
    rows = benchmark.pedantic(fig9_kendall_single, args=(context,),
                              rounds=1, iterations=1)
    save_rows("fig9_kendall_single", rows,
              "Fig 9 — Kendall tau, single keyword")
    taus = [row["mean_tau"] for row in rows
            if row["queries_with_results"] > 0]
    assert taus, "no queries produced results"
    # Paper shape: high consistency (laptop-scale tolerance: >= 0.6 on
    # every point, mean >= 0.8).
    assert min(taus) >= 0.6
    assert sum(taus) / len(taus) >= 0.8


def test_fig9_tau_computation_benchmark(benchmark, context):
    """Benchmarked unit: one sum-vs-max tau for a top-10 query."""
    engine = context.engine(4)
    query = context.workload.bind(context.workload.specs(1)[2],
                                  radius_km=10.0, k=10)
    rho_b = engine.search_sum(query).ranking()
    rho_d = engine.search_max(query).ranking()

    tau = benchmark(kendall_tau, rho_b, rho_d)
    assert -1.0 <= tau <= 1.0
