"""Fig 12: effect of hot-keyword-specific popularity bounds on the
max-score ranking algorithm.

Paper shape: "using such specific popularity bound of hot keywords
fastens the query processing for both semantics. As the query range
increases, the performance gain becomes more visible."
"""

from repro.eval.experiments import fig12_specific_bounds


def test_fig12_table(benchmark, context, save_rows):
    rows = benchmark.pedantic(fig12_specific_bounds, args=(context,),
                              rounds=1, iterations=1)
    save_rows("fig12_specific_bounds", rows,
              "Fig 12 — hot-keyword-specific popularity bounds")
    # Shape 1: the specific bounds prune strictly more thread builds
    # than the (far looser) global bound, for both semantics.
    for semantics in ("and", "or"):
        semantic_rows = [row for row in rows if row["semantics"] == semantics]
        hot = sum(row["hot_bound_pruned"] for row in semantic_rows)
        global_ = sum(row["global_bound_pruned"] for row in semantic_rows)
        assert hot > global_
    # Shape 2: pruning grows with radius (compare smallest vs largest).
    for semantics in ("and", "or"):
        semantic_rows = sorted(
            (row for row in rows if row["semantics"] == semantics),
            key=lambda row: row["radius_km"])
        assert (semantic_rows[-1]["hot_bound_pruned"]
                >= semantic_rows[0]["hot_bound_pruned"])
    # Shape 3: total time with specific bounds is no worse than global.
    hot_time = sum(row["hot_bound_seconds"] for row in rows)
    global_time = sum(row["global_bound_seconds"] for row in rows)
    assert hot_time <= global_time * 1.1


def test_fig12_hot_bound_query_benchmark(benchmark, context):
    """Benchmarked unit: one hot-keyword query with specific bounds."""
    engine = context.engine(4)
    query = engine.make_query(context.workload.sample_location(),
                              radius_km=20.0, keywords=["restaurant"], k=5)

    def run():
        engine.threads.clear_cache()
        return engine.search_max(query)

    result = benchmark(run)
    assert result.stats.candidates >= 0
