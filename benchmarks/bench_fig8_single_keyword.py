"""Fig 8: single-keyword query efficiency, sum vs max ranking.

Paper shape: the two methods perform closely up to 20 km; for larger
radii the max-score method wins thanks to its upper-bound pruning
("the pruning power ... works more visibly when there are more
candidates involved in large query ranges").
"""

from repro.eval.experiments import fig8_single_keyword


def test_fig8_table(benchmark, context, save_rows):
    rows = benchmark.pedantic(fig8_single_keyword, args=(context,),
                              rounds=1, iterations=1)
    save_rows("fig8_single_keyword", rows,
              "Fig 8 — single-keyword efficiency (sum vs max)")
    # Shape: summed over the large radii (>= 50 km), max <= sum.
    large = [row for row in rows if row["radius_km"] >= 50.0]
    sum_large = sum(row["sum_seconds"] for row in large)
    max_large = sum(row["max_seconds"] for row in large)
    assert max_large <= sum_large * 1.15  # max at least competitive


def test_fig8_sum_query_benchmark(benchmark, context):
    engine = context.engine(4)
    query = context.workload.bind(context.workload.specs(1)[1],
                                  radius_km=50.0)

    def run():
        engine.threads.clear_cache()
        return engine.search_sum(query)

    benchmark(run)


def test_fig8_max_query_benchmark(benchmark, context):
    engine = context.engine(4)
    query = context.workload.bind(context.workload.specs(1)[1],
                                  radius_km=50.0)

    def run():
        engine.threads.clear_cache()
        return engine.search_max(query)

    benchmark(run)
