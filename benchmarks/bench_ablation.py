"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the library's own design
decisions:

* upper-bound pruning on vs off for the max-score algorithm;
* sorted-postings (galloping) intersection vs a hash-set oracle;
* thread-depth bound d ∈ {1, 2, 4, 8} (Algorithm 1's cost knob);
* buffer-pool size effect on metadata-DB cache behaviour;
* index-backed query processing vs the brute-force full scan and the
  IR-tree baseline (the index family the paper's related work targets);
* sound compounding global bound vs the paper's literal Definition 11.
"""

import pytest

from repro.core.scoring import (
    upper_bound_popularity,
    upper_bound_popularity_literal,
)
from repro.core.thread import ThreadBuilder
from repro.index.postings import intersect_many
from repro.query.baseline import BruteForceProcessor


class TestPruningAblation:
    def test_pruning_on(self, benchmark, context):
        engine = context.engine(4)
        query = engine.make_query(context.workload.sample_location(),
                                  radius_km=50.0, keywords=["restaurant"],
                                  k=5)
        processor = engine.processor("max", use_pruning=True)

        def run():
            engine.threads.clear_cache()
            return processor.search(query)

        result = benchmark(run)
        assert result.stats.threads_pruned >= 0

    def test_pruning_off(self, benchmark, context):
        engine = context.engine(4)
        query = engine.make_query(context.workload.sample_location(),
                                  radius_km=50.0, keywords=["restaurant"],
                                  k=5)
        processor = engine.processor("max", use_pruning=False)

        def run():
            engine.threads.clear_cache()
            return processor.search(query)

        result = benchmark(run)
        assert result.stats.threads_pruned == 0


class TestIntersectionAblation:
    @pytest.fixture(scope="class")
    def lists(self):
        dense = [(tid, 1) for tid in range(0, 60000, 3)]
        sparse = [(tid, 1) for tid in range(0, 60000, 131)]
        return [dense, sparse]

    def test_galloping_intersection(self, benchmark, lists):
        result = benchmark(intersect_many, lists)
        assert result

    def test_hash_set_intersection(self, benchmark, lists):
        def hash_intersect(lists):
            sets = [dict(lst) for lst in lists]
            common = set(sets[0])
            for mapping in sets[1:]:
                common &= set(mapping)
            return sorted((tid, [m[tid] for m in sets]) for tid in common)

        result = benchmark(hash_intersect, lists)
        assert result


class TestThreadDepthAblation:
    @pytest.mark.parametrize("depth", [1, 2, 4, 8])
    def test_depth(self, benchmark, context, depth):
        engine = context.engine(4)
        builder = ThreadBuilder(engine.database, depth=depth, cache=False)
        # A fixed sample of root tweets.
        roots = [post.sid for post in context.corpus.posts[:300]
                 if post.rsid is None][:100]

        def run():
            return sum(builder.popularity(sid) for sid in roots)

        total = benchmark(run)
        assert total >= 0.0


class TestBufferPoolAblation:
    @pytest.mark.parametrize("pool_size", [4, 32, 512])
    def test_pool_size(self, benchmark, context, pool_size):
        """Thread-construction cost as the metadata DB's buffer pool
        shrinks below the working set."""
        from repro.query.engine import EngineConfig, TkLUSEngine
        posts = context.corpus.posts[:1500]
        engine = TkLUSEngine.from_posts(
            posts, config=EngineConfig(pool_size=pool_size),
            precompute_bounds=False)
        builder = ThreadBuilder(engine.database, depth=6, cache=False)
        roots = [post.sid for post in posts if post.rsid is None][:80]

        def run():
            return sum(builder.popularity(sid) for sid in roots)

        benchmark(run)
        misses = engine.database.stats.get("rsid_index").cache_misses
        assert misses >= 0


class TestIndexVsFullScan:
    def test_indexed_query(self, benchmark, context):
        engine = context.engine(4)
        query = engine.make_query(context.workload.sample_location(),
                                  radius_km=20.0, keywords=["hotel"], k=10)

        def run():
            engine.threads.clear_cache()
            return engine.search_sum(query)

        benchmark(run)

    def test_brute_force_scan(self, benchmark, context):
        processor = BruteForceProcessor(context.corpus.to_dataset())
        engine = context.engine(4)
        query = engine.make_query(context.workload.sample_location(),
                                  radius_km=20.0, keywords=["hotel"], k=10)

        benchmark(processor.search_sum, query)


class TestIRTreeBaseline:
    @pytest.fixture(scope="class")
    def irtree_processor(self, context):
        from repro.baselines.irtree import IRTreeProcessor
        return IRTreeProcessor(context.corpus.to_dataset())

    def test_irtree_query(self, benchmark, context, irtree_processor):
        engine = context.engine(4)
        query = engine.make_query(context.workload.sample_location(),
                                  radius_km=20.0, keywords=["hotel"], k=10)
        benchmark(irtree_processor.search_sum, query)

    def test_irtree_build(self, benchmark, context):
        from repro.baselines.irtree import IRTree
        posts = list(context.corpus.posts)

        def build():
            return IRTree(max_entries=16).build(posts)

        tree = benchmark.pedantic(build, rounds=3, iterations=1)
        assert len(tree) == len(posts)


class TestGlobalBoundVariants:
    def test_bound_tightness_report(self, benchmark, context, save_rows):
        """Not a timing: records how loose each Definition 11 reading is
        relative to the tightest hot-keyword bound."""
        engine = context.engine(4)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        fanout = engine.database.max_reply_fanout
        depth = engine.threads.depth
        rows = [{
            "t_m": fanout,
            "depth": depth,
            "compounding_bound": upper_bound_popularity(fanout, depth),
            "literal_bound": upper_bound_popularity_literal(fanout, depth),
            "max_hot_keyword_bound": max(
                engine.bounds.keyword_bounds.values()),
        }]
        save_rows("ablation_bounds", rows,
                  "Ablation — Definition 11 readings vs hot-keyword bounds")
        assert rows[0]["compounding_bound"] >= rows[0]["literal_bound"]

    def test_compounding_bound_cost(self, benchmark):
        benchmark(upper_bound_popularity, 50, 6)
