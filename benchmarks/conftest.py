"""Shared benchmark fixtures.

One moderate-scale corpus + engine set is built per session and shared
by every figure benchmark; each benchmark file also writes its figure's
row table to ``benchmarks/results/`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves the reproduced tables on disk.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.experiments import ExperimentContext
from repro.eval.report import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmark corpus scale.  Large enough for every figure's effect to
#: show, small enough that the full suite runs in a few minutes.
NUM_USERS = 600
NUM_ROOT_TWEETS = 3000
QUERIES_PER_POINT = 6


@pytest.fixture(scope="session")
def context():
    return ExperimentContext.create(num_users=NUM_USERS,
                                    num_root_tweets=NUM_ROOT_TWEETS,
                                    seed=42,
                                    queries_per_point=QUERIES_PER_POINT)


@pytest.fixture(scope="session")
def save_rows():
    """Callable fixture: persist and echo a figure's row table."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, rows, title: str) -> None:
        text = format_table(rows, title)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
