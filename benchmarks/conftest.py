"""Shared benchmark fixtures.

One moderate-scale corpus + engine set is built per session and shared
by every figure benchmark; each benchmark file also writes its figure's
row table to ``benchmarks/results/`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves the reproduced tables on disk.

Every benchmark additionally runs with the metrics half of
``repro.obs`` enabled (spans off — they would accumulate memory over
benchmark rounds) and its counter/histogram snapshot is written to
``benchmarks/results/metrics_<test>.json``, so the perf trajectory
carries I/O and pruning columns alongside wall-clock numbers.
"""

from __future__ import annotations

import json
import os
import re

import pytest

from repro import obs
from repro.eval.experiments import ExperimentContext
from repro.eval.report import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmark corpus scale.  Large enough for every figure's effect to
#: show, small enough that the full suite runs in a few minutes.
NUM_USERS = 600
NUM_ROOT_TWEETS = 3000
QUERIES_PER_POINT = 6


@pytest.fixture(scope="session")
def context():
    return ExperimentContext.create(num_users=NUM_USERS,
                                    num_root_tweets=NUM_ROOT_TWEETS,
                                    seed=42,
                                    queries_per_point=QUERIES_PER_POINT)


def _slug(nodeid: str) -> str:
    name = nodeid.split("::", 1)[-1]
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")


@pytest.fixture(autouse=True)
def emit_metrics(request):
    """Run each benchmark under the obs metrics registry.

    Spans are disabled (``capture_spans=False``) because benchmark
    rounds would otherwise accumulate thousands of span objects; the
    counter/histogram snapshot alone is written to
    ``results/metrics_<test>.json`` after the test.
    """
    with obs.observed(capture_spans=False) as (_tracer, registry):
        yield
    snapshot = registry.snapshot()
    if not any(snapshot.values()):
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"metrics_{_slug(request.node.nodeid)}.json")
    with open(path, "w") as handle:
        json.dump({"test": request.node.nodeid, "metrics": snapshot},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def save_rows():
    """Callable fixture: persist and echo a figure's row table."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, rows, title: str) -> None:
        text = format_table(rows, title)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
