"""Table II: top-10 frequent keywords of the corpus.

The benchmarked unit is the corpus-wide keyword-frequency aggregation
(the statistic the paper's Table II reports); the reproduced table is
written to benchmarks/results/.
"""

from repro.eval.experiments import table2_keyword_frequencies


def test_table2_keyword_frequencies(benchmark, context, save_rows):
    rows = benchmark(table2_keyword_frequencies, context.corpus)
    save_rows("table2_keywords", rows, "Table II — top-10 frequent keywords")
    # Shape assertions: 10 rows, frequency-ranked.
    assert len(rows) == 10
    counts = [row["frequency"] for row in rows]
    assert counts == sorted(counts, reverse=True)
