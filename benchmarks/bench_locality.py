"""Data-locality benchmark: geohash range partitioning vs hash
partitioning (Section IV-B1's distributed-layout claim).

"In a distributed environment, data indexed by geohash will have all
points for a given rectangular area in one computer. Such advantage
could save I/O and communication cost in query evaluation."
"""

import random

from repro.dfs.cluster import paper_cluster
from repro.index.builder import IndexConfig
from repro.index.hybrid import HybridIndex
from repro.index.locality import measure_query_locality
from repro.text import Analyzer


def _queries(context, count=12, radius=15.0):
    analyzer = Analyzer()
    rng = random.Random(9)
    result = []
    for spec in context.workload.specs(1)[:count]:
        terms = analyzer.analyze_query_keywords(spec.keywords)
        result.append((context.corpus.sample_location(rng), radius, terms))
    return result


def test_locality_comparison_table(benchmark, context, save_rows):
    def run():
        queries = _queries(context)
        rows = []
        for mode in ("hash", "range"):
            index = HybridIndex.build(
                context.corpus.posts, paper_cluster(),
                config=IndexConfig(partitioning=mode, num_reduce_tasks=8))
            report = measure_query_locality(index, queries)
            row = {"partitioning": mode}
            row.update(report.as_row())
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_rows("locality_partitioning", rows,
              "Locality — part files / datanodes touched per query")
    by_mode = {row["partitioning"]: row for row in rows}
    assert (by_mode["range"]["mean_part_files"]
            <= by_mode["hash"]["mean_part_files"])


def test_range_partitioned_query_benchmark(benchmark, context):
    """Per-query latency on a range-partitioned index."""
    index = HybridIndex.build(
        context.corpus.posts, paper_cluster(),
        config=IndexConfig(partitioning="range", num_reduce_tasks=8))
    queries = _queries(context, count=4)

    def run():
        for location, radius, terms in queries:
            cells = index.cover(location, radius)
            index.postings_for_query(cells, terms)

    benchmark(run)
