"""Benchmarks for the scatter-gather distributed executor and the DFS
content store (the serving-path pieces of Figure 3)."""

import pytest

from repro.dfs.contentstore import ContentStore
from repro.query.distributed import DistributedExecutor


@pytest.fixture(scope="module")
def executor(context):
    engine = context.engine(4)
    return DistributedExecutor(engine.index, engine.database,
                               engine.threads, engine.config.scoring,
                               engine.metric, max_workers=4)


def test_distributed_query_benchmark(benchmark, context, executor):
    query = context.workload.bind(context.workload.specs(1)[0],
                                  radius_km=25.0, k=10)

    def run():
        context.engine(4).threads.clear_cache()
        return executor.search(query, aggregate="sum")

    result = benchmark(run)
    assert result.stats.servers_involved >= 1


def test_single_node_query_benchmark(benchmark, context):
    """Same query, single-node path, for direct comparison."""
    engine = context.engine(4)
    query = context.workload.bind(context.workload.specs(1)[0],
                                  radius_km=25.0, k=10)

    def run():
        engine.threads.clear_cache()
        return engine.search_sum(query)

    benchmark(run)


def test_content_store_lookup_benchmark(benchmark, context):
    engine = context.engine(4)
    store = ContentStore(engine.index.cluster, prefix="/bench-contents")
    store.write_batch(context.corpus.posts)
    sids = [post.sid for post in context.corpus.posts[::251]][:20]

    result = benchmark(store.collect, sids)
    assert len(result) == len(sids)
