"""Fig 10: multi-keyword query efficiency under AND/OR semantics.

Paper shapes: "more keywords in the query incur longer query processing
time in OR semantic while the opposite in AND semantic" (AND filters
more candidates), and max-score ranking helps most under OR at 20-50 km.
"""

from repro.core.model import Semantics
from repro.eval.experiments import fig10_multi_keyword


def test_fig10_table(benchmark, context, save_rows):
    rows = benchmark.pedantic(fig10_multi_keyword, args=(context,),
                              rounds=1, iterations=1)
    save_rows("fig10_multi_keyword", rows,
              "Fig 10 — multi-keyword efficiency (AND/OR)")

    def mean_time(keywords, semantics):
        matching = [row["sum_seconds"] for row in rows
                    if row["keywords"] == keywords
                    and row["semantics"] == semantics]
        return sum(matching) / len(matching)

    # Shape: AND with 3 keywords is faster than OR with 3 keywords
    # (the intersection discards almost everything).
    assert mean_time(3, "and") < mean_time(3, "or")
    # Shape: AND time shrinks as keywords are added.
    assert mean_time(3, "and") <= mean_time(2, "and") * 1.2


def test_fig10_and_query_benchmark(benchmark, context):
    engine = context.engine(4)
    query = context.workload.bind(context.workload.specs(2)[0],
                                  radius_km=20.0, semantics=Semantics.AND)

    def run():
        engine.threads.clear_cache()
        return engine.search_max(query)

    benchmark(run)


def test_fig10_or_query_benchmark(benchmark, context):
    engine = context.engine(4)
    query = context.workload.bind(context.workload.specs(2)[0],
                                  radius_km=20.0, semantics=Semantics.OR)

    def run():
        engine.threads.clear_cache()
        return engine.search_max(query)

    benchmark(run)
