"""Fig 11: Kendall tau between the two rankings for multi-keyword
queries under AND/OR semantics.

Paper shapes: AND taus always above 0.95; OR taus lower (lowest
slightly below 0.8) but still consistent.
"""

from repro.eval.experiments import fig11_kendall_multi


def test_fig11_table(benchmark, context, save_rows):
    rows = benchmark.pedantic(fig11_kendall_multi, args=(context,),
                              rounds=1, iterations=1)
    save_rows("fig11_kendall_multi", rows,
              "Fig 11 — Kendall tau, multi-keyword (AND/OR)")
    and_rows = [row for row in rows if row["semantics"] == "and"
                and row["queries_with_results"] > 0]
    or_rows = [row for row in rows if row["semantics"] == "or"
               and row["queries_with_results"] > 0]
    if and_rows:
        and_mean = sum(r["mean_tau"] for r in and_rows) / len(and_rows)
        assert and_mean >= 0.9  # paper: AND always > 0.95
    assert or_rows
    or_mean = sum(r["mean_tau"] for r in or_rows) / len(or_rows)
    assert or_mean >= 0.7  # paper: OR lowest slightly below 0.8


def test_fig11_pipeline_benchmark(benchmark, context):
    """Benchmarked unit: one AND + one OR consistency comparison."""
    from repro.core.model import Semantics
    from repro.eval.kendall import kendall_tau
    engine = context.engine(4)
    spec = context.workload.specs(2)[1]

    def run():
        taus = []
        for semantics in (Semantics.AND, Semantics.OR):
            query = context.workload.bind(spec, radius_km=20.0,
                                          semantics=semantics)
            rho_b = engine.search_sum(query).ranking()
            rho_d = engine.search_max(query).ranking()
            taus.append(kendall_tau(rho_b, rho_d))
        return taus

    taus = benchmark(run)
    assert all(-1.0 <= tau <= 1.0 for tau in taus)
