"""Fig 6: index size vs geohash encoding length.

Paper shape: the hybrid index size is "very steady as the Geohash
configuration varies" (~3.5 GB for their corpus); every posting exists
at every length, so only key-space fragmentation differs.
"""

from repro.eval.experiments import fig6_index_size


def test_fig6_index_size_table(benchmark, context, save_rows):
    rows = benchmark.pedantic(fig6_index_size, args=(context.corpus,),
                              rounds=1, iterations=1)
    save_rows("fig6_index_size", rows, "Fig 6 — index size vs geohash length")
    sizes = [row["inverted_bytes"] for row in rows]
    assert max(sizes) <= 1.2 * min(sizes)  # steady, paper shape
    for row in rows:
        # Forward index stays small relative to the inverted index
        # (the paper keeps it under 12 MB in RAM).
        assert row["forward_bytes"] < row["stored_bytes_with_replication"]


def test_fig6_size_measurement_benchmark(benchmark, context):
    """Benchmarked unit: measuring the resident index sizes of the
    already-built default engine."""
    engine = context.engine(4)

    def measure():
        return (engine.index.inverted_size_bytes(),
                engine.index.forward_size_bytes())

    inverted, forward = benchmark(measure)
    assert inverted > 0 and forward > 0
