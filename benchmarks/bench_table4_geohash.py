"""Table IV: geohash encodings of the paper's example coordinate at
lengths 1-4, plus a raw geohash-encoding throughput benchmark."""

from repro.eval.experiments import table4_geohash_lengths
from repro.geo import geohash


def test_table4_geohash_lengths(benchmark, save_rows):
    rows = benchmark(table4_geohash_lengths)
    save_rows("table4_geohash", rows,
              "Table IV — geohash encoding length example")
    assert [row["geohash"] for row in rows] == ["6", "6g", "6gx", "6gxp"]


def test_geohash_encode_throughput(benchmark):
    """Raw cost of one length-4 encode (runs millions of times during
    index construction)."""
    result = benchmark(geohash.encode, -23.994140625, -46.23046875, 4)
    assert result == "6gxp"
