"""Comparison baselines: the R-tree / IR-tree family the paper's
related work positions itself against (Section VII-A)."""

from .irtree import IRTree, IRTreeProcessor
from .rtree import MBR, RTree

__all__ = ["IRTree", "IRTreeProcessor", "MBR", "RTree"]
