"""An in-memory R-tree over latitude/longitude points.

The paper's related work (Section VII-A) positions the hybrid geohash
index against the IR-tree family — R-trees whose nodes carry inverted
files [5], [14].  To compare against that family honestly we first need
an R-tree; this is a quadratic-split Guttman R-tree specialised to point
data, supporting rectangle and circle queries and a best-first nearest
traversal (the building block of IR-tree top-k search).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from ..geo.distance import (
    DEFAULT_METRIC,
    Metric,
    haversine_km,
    min_distance_to_rect_km,
)

T = TypeVar("T")

Coordinate = Tuple[float, float]


@dataclass(frozen=True)
class MBR:
    """Minimum bounding rectangle in (lat, lon) space."""

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    @classmethod
    def of_point(cls, lat: float, lon: float) -> "MBR":
        return cls(lat, lon, lat, lon)

    def area(self) -> float:
        return (self.max_lat - self.min_lat) * (self.max_lon - self.min_lon)

    def union(self, other: "MBR") -> "MBR":
        return MBR(min(self.min_lat, other.min_lat),
                   min(self.min_lon, other.min_lon),
                   max(self.max_lat, other.max_lat),
                   max(self.max_lon, other.max_lon))

    def enlargement(self, other: "MBR") -> float:
        """Area growth needed to absorb ``other``."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "MBR") -> bool:
        return not (other.max_lat < self.min_lat
                    or other.min_lat > self.max_lat
                    or other.max_lon < self.min_lon
                    or other.min_lon > self.max_lon)

    def contains_point(self, lat: float, lon: float) -> bool:
        return (self.min_lat <= lat <= self.max_lat
                and self.min_lon <= lon <= self.max_lon)

    def min_distance_km(self, point: Coordinate,
                        metric: Metric = DEFAULT_METRIC) -> float:
        """Distance from ``point`` to the nearest point of this MBR.

        Exact for the haversine metric (the nearest point of a meridian
        edge can lie poleward of the clamped latitude when the longitude
        gap exceeds 90 degrees); other metrics fall back to coordinate
        clamping, which is exact for them in planar/equirectangular
        geometry.
        """
        rect = (self.min_lat, self.min_lon, self.max_lat, self.max_lon)
        if metric is haversine_km:
            return min_distance_to_rect_km(point, rect)
        lat = min(max(point[0], self.min_lat), self.max_lat)
        lon = min(max(point[1], self.min_lon), self.max_lon)
        return metric(point, (lat, lon))


@dataclass
class _Entry(Generic[T]):
    mbr: MBR
    child: Optional["_Node[T]"] = None  # internal entries
    value: Optional[T] = None           # leaf entries


@dataclass
class _Node(Generic[T]):
    is_leaf: bool
    entries: List[_Entry[T]] = field(default_factory=list)

    def mbr(self) -> MBR:
        box = self.entries[0].mbr
        for entry in self.entries[1:]:
            box = box.union(entry.mbr)
        return box


class RTree(Generic[T]):
    """Guttman R-tree with quadratic split, specialised to points."""

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4: {max_entries}")
        self._max = max_entries
        self._min = max(2, max_entries // 2)
        self._root: _Node[T] = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- insertion ----------------------------------------------------------

    def insert(self, lat: float, lon: float, value: T) -> None:
        entry = _Entry(MBR.of_point(lat, lon), value=value)
        split = self._insert(self._root, entry)
        if split is not None:
            old_root = self._root
            self._root = _Node(is_leaf=False, entries=[
                _Entry(old_root.mbr(), child=old_root),
                _Entry(split.mbr(), child=split),
            ])
        self._size += 1

    def _insert(self, node: _Node[T], entry: _Entry[T]) -> Optional[_Node[T]]:
        if node.is_leaf:
            node.entries.append(entry)
        else:
            best = min(node.entries,
                       key=lambda e: (e.mbr.enlargement(entry.mbr),
                                      e.mbr.area()))
            split = self._insert(best.child, entry)  # type: ignore[arg-type]
            best.mbr = best.child.mbr()  # type: ignore[union-attr]
            if split is not None:
                node.entries.append(_Entry(split.mbr(), child=split))
        if len(node.entries) > self._max:
            return self._split(node)
        return None

    def _split(self, node: _Node[T]) -> _Node[T]:
        """Quadratic split: seed with the pair wasting the most area."""
        entries = node.entries
        worst = -1.0
        seeds = (0, 1)
        for i, j in itertools.combinations(range(len(entries)), 2):
            waste = (entries[i].mbr.union(entries[j].mbr).area()
                     - entries[i].mbr.area() - entries[j].mbr.area())
            if waste > worst:
                worst = waste
                seeds = (i, j)
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        rest = [entry for index, entry in enumerate(entries)
                if index not in seeds]
        box_a = group_a[0].mbr
        box_b = group_b[0].mbr
        for entry in rest:
            # Honour minimum fill.
            remaining = len(rest) - (len(group_a) + len(group_b) - 2)
            if len(group_a) + remaining <= self._min:
                group_a.append(entry)
                box_a = box_a.union(entry.mbr)
                continue
            if len(group_b) + remaining <= self._min:
                group_b.append(entry)
                box_b = box_b.union(entry.mbr)
                continue
            if box_a.enlargement(entry.mbr) <= box_b.enlargement(entry.mbr):
                group_a.append(entry)
                box_a = box_a.union(entry.mbr)
            else:
                group_b.append(entry)
                box_b = box_b.union(entry.mbr)
        node.entries = group_a
        return _Node(is_leaf=node.is_leaf, entries=group_b)

    # -- queries ----------------------------------------------------------

    def query_rect(self, rect: MBR) -> Iterator[Tuple[Coordinate, T]]:
        if self._size == 0:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if not rect.intersects(entry.mbr):
                    continue
                if node.is_leaf:
                    point = (entry.mbr.min_lat, entry.mbr.min_lon)
                    if rect.contains_point(*point):
                        yield (point, entry.value)  # type: ignore[misc]
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]

    def query_circle(self, center: Coordinate, radius_km: float,
                     metric: Metric = DEFAULT_METRIC
                     ) -> Iterator[Tuple[Coordinate, T]]:
        if self._size == 0:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if entry.mbr.min_distance_km(center, metric) > radius_km:
                    continue
                if node.is_leaf:
                    point = (entry.mbr.min_lat, entry.mbr.min_lon)
                    if metric(center, point) <= radius_km:
                        yield (point, entry.value)  # type: ignore[misc]
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]

    def nearest_first(self, center: Coordinate,
                      metric: Metric = DEFAULT_METRIC
                      ) -> Iterator[Tuple[float, Coordinate, T]]:
        """Best-first traversal yielding ``(distance_km, point, value)``
        in non-decreasing distance order — the backbone of IR-tree
        top-k search."""
        if self._size == 0:
            return
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = [
            (0.0, next(counter), self._root)]
        while heap:
            distance, _tie, item = heapq.heappop(heap)
            if isinstance(item, _Node):
                for entry in item.entries:
                    if item.is_leaf:
                        point = (entry.mbr.min_lat, entry.mbr.min_lon)
                        heapq.heappush(heap, (metric(center, point),
                                              next(counter),
                                              (point, entry.value)))
                    else:
                        heapq.heappush(
                            heap, (entry.mbr.min_distance_km(center, metric),
                                   next(counter), entry.child))
            else:
                point, value = item  # type: ignore[misc]
                yield (distance, point, value)

    # -- validation ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural validation used by property tests."""
        count = self._check(self._root, is_root=True)
        if count != self._size:
            raise AssertionError(f"size mismatch: {count} != {self._size}")

    def _check(self, node: _Node[T], is_root: bool) -> int:
        if not is_root and not (self._min <= len(node.entries) <= self._max):
            raise AssertionError(
                f"node fill {len(node.entries)} outside "
                f"[{self._min}, {self._max}]")
        if node.is_leaf:
            return len(node.entries)
        total = 0
        for entry in node.entries:
            child = entry.child
            assert child is not None
            if entry.mbr != child.mbr():
                raise AssertionError("stale parent MBR")
            total += self._check(child, is_root=False)
        return total
