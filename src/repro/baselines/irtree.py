"""An IR-tree baseline for TkLUS queries.

The IR-tree family [Cong et al. 2009; Li et al. 2011] augments each
R-tree node with an inverted file over the documents below it, letting
spatial-keyword queries prune subtrees that contain no query keyword.
The paper argues its hybrid geohash index scales where "IR-tree variants
are centralized and unable to process large scale data; neither can they
solve TkLUS queries" — this module makes that comparison concrete by
implementing an IR-tree and an adapter that *does* solve TkLUS queries
with it, so the ablation benchmark can measure both sides.

Design: a wrapper around :class:`~repro.baselines.rtree.RTree` where
every node additionally stores the set of terms appearing in its
subtree (the node-level inverted-file membership test; per-node postings
would only change constants at our scale).  Candidate retrieval walks
the tree, pruning nodes that are outside the query circle or—per the
query semantics—lack the required keywords.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Set, Tuple

from ..core.model import Dataset, Post, Semantics, TkLUSQuery
from ..core.scoring import ScoringConfig, user_distance_score, user_score
from ..core.thread import DatasetThreadBuilder
from ..geo.distance import DEFAULT_METRIC, Metric
from ..query.results import QueryResult, QueryStats
from .rtree import RTree, _Node


class IRTree:
    """R-tree with per-node term sets (an inverted-file membership
    summary), built bottom-up from posts."""

    def __init__(self, max_entries: int = 16) -> None:
        self._tree: RTree[Post] = RTree(max_entries=max_entries)
        self._terms: Dict[int, Set[str]] = {}  # id(node) -> term set
        self._built = False

    def __len__(self) -> int:
        return len(self._tree)

    def build(self, posts) -> "IRTree":
        for post in posts:
            lat, lon = post.location
            self._tree.insert(lat, lon, post)
        self._rebuild_term_summaries()
        return self

    def _rebuild_term_summaries(self) -> None:
        """Compute each node's subtree term set (the node inverted file)."""
        self._terms.clear()
        self._summarise(self._tree._root)
        self._built = True

    def _summarise(self, node: _Node) -> Set[str]:
        terms: Set[str] = set()
        if node.is_leaf:
            for entry in node.entries:
                terms.update(entry.value.words)  # type: ignore[union-attr]
        else:
            for entry in node.entries:
                terms |= self._summarise(entry.child)  # type: ignore[arg-type]
        self._terms[id(node)] = terms
        return terms

    def node_terms(self, node: _Node) -> Set[str]:
        return self._terms.get(id(node), set())

    def candidates(self, query: TkLUSQuery,
                   metric: Metric = DEFAULT_METRIC
                   ) -> Iterator[Tuple[Post, int]]:
        """Posts matching the query circle + keyword semantics, with
        their bag-model match counts.

        Subtrees are pruned when (a) their MBR lies outside the circle,
        or (b) their term summary cannot satisfy the semantics: for OR,
        no query keyword below; for AND, some query keyword absent below.
        """
        if not self._built:
            raise RuntimeError("IRTree.build() must run before queries")
        keywords = query.keywords
        stack = [self._tree._root]
        while stack:
            node = stack.pop()
            terms = self.node_terms(node)
            if query.semantics is Semantics.AND:
                if not keywords <= terms:
                    continue
            else:
                if not keywords & terms:
                    continue
            for entry in node.entries:
                if entry.mbr.min_distance_km(query.location, metric) \
                        > query.radius_km:
                    continue
                if node.is_leaf:
                    post: Post = entry.value  # type: ignore[assignment]
                    if metric(query.location, post.location) > query.radius_km:
                        continue
                    bag = post.word_bag()
                    present = [kw for kw in keywords if bag.get(kw)]
                    if not present:
                        continue
                    if (query.semantics is Semantics.AND
                            and len(present) != len(keywords)):
                        continue
                    yield (post, sum(bag[kw] for kw in present))
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]

    def stats(self) -> Dict[str, int]:
        nodes = 0
        leaves = 0
        stack = [self._tree._root]
        while stack:
            node = stack.pop()
            nodes += 1
            if node.is_leaf:
                leaves += 1
            else:
                stack.extend(entry.child for entry in node.entries)
        return {"nodes": nodes, "leaves": leaves, "points": len(self._tree),
                "distinct_terms_at_root":
                    len(self.node_terms(self._tree._root))}


class IRTreeProcessor:
    """TkLUS query processing over an IR-tree (the centralized baseline).

    Ranking semantics are identical to the hybrid-index processors
    (sum and max aggregation, Definitions 7-10); only candidate
    retrieval differs, so rankings must agree with the main engine —
    a fact the tests exploit.
    """

    def __init__(self, dataset: Dataset, max_entries: int = 16,
                 config: ScoringConfig = ScoringConfig(),
                 metric: Metric = DEFAULT_METRIC, depth: int = 6) -> None:
        self.dataset = dataset
        self.config = config
        self.metric = metric
        self.tree = IRTree(max_entries=max_entries).build(
            dataset.posts.values())
        self.threads = DatasetThreadBuilder(dataset, depth=depth,
                                            epsilon=config.epsilon)
        self._user_locations: Dict[int, List[Tuple[float, float]]] = {
            uid: [post.location for post in dataset.posts_of(uid)]
            for uid in dataset.users
        }

    def _search(self, query: TkLUSQuery, aggregate: str) -> QueryResult:
        start = time.perf_counter()
        stats = QueryStats()
        keyword_parts: Dict[int, float] = {}
        for post, match_count in self.tree.candidates(query, self.metric):
            stats.candidates += 1
            stats.candidates_in_radius += 1
            popularity = self.threads.popularity(post.sid)
            stats.threads_built += 1
            relevance = (match_count / self.config.keyword_normalizer
                         ) * popularity
            if aggregate == "sum":
                keyword_parts[post.uid] = (
                    keyword_parts.get(post.uid, 0.0) + relevance)
            else:
                keyword_parts[post.uid] = max(
                    keyword_parts.get(post.uid, 0.0), relevance)
        scored = []
        for uid, keyword_part in keyword_parts.items():
            distance_part = user_distance_score(
                self._user_locations[uid], query.location, query.radius_km,
                self.metric)
            scored.append((uid, user_score(keyword_part, distance_part,
                                           self.config)))
        scored.sort(key=lambda item: (-item[1], item[0]))
        stats.elapsed_seconds = time.perf_counter() - start
        return QueryResult(users=scored[:query.k], stats=stats)

    def search_sum(self, query: TkLUSQuery) -> QueryResult:
        return self._search(query, "sum")

    def search_max(self, query: TkLUSQuery) -> QueryResult:
        return self._search(query, "max")
