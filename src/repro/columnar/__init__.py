"""Numpy-optional columnar batch primitives.

The batched query kernels (``repro.geo.distance.haversine_km_batch``,
``BlockPostingsReader.decode_block_arrays``, the fused operators in
``repro.query.pipeline.batched``) all build on this module.  Two
backends exist:

``numpy``
    Columns are ``numpy.ndarray`` (``int64`` / ``float64``).  Selected
    automatically when numpy is importable.

``python``
    Columns are ``array('q')`` / ``array('d')`` from the stdlib.  Used
    when numpy is absent, when ``REPRO_COLUMNAR=python`` is set, or
    inside :func:`force_backend` (the test hook that lets one
    interpreter exercise both legs).

Backend contract: every batch kernel must return results *bitwise
identical* to its scalar counterpart.  Integer kernels are trivially
exact; float kernels must only use numpy element-wise operations that
are verified bitwise-equal to ``math.*`` on this host (see the
calibration probe in ``repro.geo.distance``) and must perform
reductions in the same left-to-right association order as the scalar
code (``sum(column_tolist(...))``, never ``ndarray.sum()``, which is
pairwise).
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy-less leg
    _numpy = None  # type: ignore[assignment]

#: test/CI override; ``force_backend`` swaps this temporarily
_FORCED: Optional[str] = None

#: process-wide override (lets the no-numpy CI leg run with numpy
#: installed, and lets operators be benchmarked on the fallback)
_ENV_BACKEND = os.environ.get("REPRO_COLUMNAR", "").strip().lower() or None


def have_numpy() -> bool:
    """Whether numpy imported at all (irrespective of overrides)."""
    return _numpy is not None


def active_backend() -> str:
    """The backend batch kernels should use right now."""
    if _FORCED is not None:
        return _FORCED
    if _ENV_BACKEND in ("python", "numpy"):
        if _ENV_BACKEND == "numpy" and _numpy is None:
            return "python"
        return _ENV_BACKEND
    return "numpy" if _numpy is not None else "python"


def numpy_module() -> Any:
    """The numpy module when the active backend is numpy, else None.

    Kernels branch on this once per batch, so a forced backend switch
    takes effect at the next call.
    """
    return _numpy if active_backend() == "numpy" else None


@contextmanager
def force_backend(name: str) -> Iterator[None]:
    """Pin the active backend for a ``with`` block (test hook).

    ``force_backend("python")`` proves the stdlib fallback on a host
    that has numpy; ``force_backend("numpy")`` raises if numpy is not
    importable.
    """
    global _FORCED
    if name not in ("python", "numpy"):
        raise ValueError(f"unknown columnar backend {name!r}")
    if name == "numpy" and _numpy is None:
        raise RuntimeError("numpy backend requested but numpy is not importable")
    previous = _FORCED
    _FORCED = name
    try:
        yield
    finally:
        _FORCED = previous


# ---------------------------------------------------------------------------
# column constructors


def int_column(values: Sequence[int]) -> Any:
    """An int64 column from ``values`` (ndarray or ``array('q')``)."""
    np = numpy_module()
    if np is not None:
        if isinstance(values, array) and values.typecode == "q":
            # array('q') exposes the buffer protocol: wrap it zero-copy
            # (read-only, which every consumer here respects).
            return np.frombuffer(values, dtype=np.int64)
        return np.asarray(values, dtype=np.int64)
    if isinstance(values, array) and values.typecode == "q":
        return values
    return array("q", values)


def float_column(values: Sequence[float]) -> Any:
    """A float64 column from ``values`` (ndarray or ``array('d')``)."""
    np = numpy_module()
    if np is not None:
        return np.asarray(values, dtype=np.float64)
    if isinstance(values, array) and values.typecode == "d":
        return values
    return array("d", values)


def column_tolist(column: Any) -> List[Any]:
    """Plain-list view of a column; python numbers, not numpy scalars."""
    tolist = getattr(column, "tolist", None)
    if tolist is not None:
        return tolist()
    return list(column)


# ---------------------------------------------------------------------------
# sorted-range narrowing (the TemporalClip kernel)


def sorted_range(column: Any, lo: Optional[int], hi: Optional[int]
                 ) -> Tuple[int, int]:
    """``(start, stop)`` slice bounds of values in ``[lo, hi]`` within a
    sorted int column — identical to ``bisect_left``/``bisect_right``.
    ``None`` bounds are open (0 / ``len(column)``).

    The numpy path answers both bounds with vectorized binary searches
    over the whole column; the fallback uses ``bisect`` directly.
    """
    np = numpy_module()
    if np is not None and isinstance(column, np.ndarray):
        start = 0 if lo is None else int(np.searchsorted(column, lo,
                                                         side="left"))
        stop = (len(column) if hi is None
                else int(np.searchsorted(column, hi, side="right")))
        return start, stop
    start = 0 if lo is None else bisect_left(column, lo)
    stop = len(column) if hi is None else bisect_right(column, hi)
    return start, stop


# ---------------------------------------------------------------------------
# batched top-k (partial select, then exact finalize)


def select_top_k(scored: Sequence[Tuple[int, float]], k: int
                 ) -> List[Tuple[int, int, float]]:
    """Top ``k`` of ``(uid, score)`` pairs ordered by ``(-score, uid)``.

    Returns ``(position, uid, score)`` triples so callers can recover
    the original objects; the ordering is exactly
    ``sorted(scored, key=lambda item: (-item[1], item[0]))[:k]``.

    The numpy path partial-selects the k-th largest score with
    ``np.partition`` and only sorts the boundary superset (all entries
    with ``score >= cut``, so ties are never dropped); the fallback is
    the plain heap-free sort the scalar ``RankOp`` performs.  Exact
    float comparisons throughout — no tolerance is involved, so the
    selection is bitwise-faithful to the scalar path.
    """
    if k <= 0 or not scored:
        return []
    np = numpy_module()
    indexed = None
    if np is not None and len(scored) > k:
        scores = np.fromiter((score for _uid, score in scored),
                             dtype=np.float64, count=len(scored))
        cut = np.partition(scores, len(scored) - k)[len(scored) - k]
        keep = np.nonzero(scores >= cut)[0].tolist()
        indexed = [(position, scored[position][0], scored[position][1])
                   for position in keep]
    if indexed is None:
        indexed = [(position, uid, score)
                   for position, (uid, score) in enumerate(scored)]
    indexed.sort(key=lambda item: (-item[2], item[1]))
    return indexed[:k]
