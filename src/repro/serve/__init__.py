"""``repro.serve`` — concurrent query serving over the TkLUS engine.

The subsystem that turns the paper's one-query-at-a-time engine into a
request/response service: a worker pool executing against pinned
:class:`~repro.ingest.live.LiveIndex` snapshots with per-query
deadlines and cooperative cancellation, a bounded admission queue with
load shedding and priority lanes, and a result cache keyed on
``(PlanSpec, query, version token)`` whose hits are byte-identical to
uncached execution.  See ``docs/SERVING.md``.
"""

from .admission import AdmissionConfig, AdmissionQueue
from .cache import CacheKey, CachedResult, ResultCache, VersionToken
from .deadline import (CancelToken, QueryCancelled, QueryTimeout, ServeError,
                       ShedError)
from .server import STATIC_TOKEN, QueryServer, ServeConfig, Ticket
from .traffic import TrafficResult, run_closed_loop, run_open_loop

__all__ = [
    "AdmissionConfig",
    "AdmissionQueue",
    "CacheKey",
    "CachedResult",
    "CancelToken",
    "QueryCancelled",
    "QueryServer",
    "QueryTimeout",
    "ResultCache",
    "STATIC_TOKEN",
    "ServeConfig",
    "ServeError",
    "ShedError",
    "Ticket",
    "TrafficResult",
    "VersionToken",
    "run_closed_loop",
    "run_open_loop",
]
