"""Deadlines and cooperative cancellation for served queries.

A served query carries a :class:`CancelToken`; the physical-plan
executor calls :meth:`CancelToken.check` at every operator boundary
(see :meth:`repro.query.pipeline.planner.PhysicalPlan.execute`), so a
query that blows its deadline — or is cancelled by the server during
shutdown — stops between operators instead of running to completion.
Operators themselves stay oblivious: cancellation is purely a property
of the execution shell, never of the relational logic, which is what
keeps cancelled and uncancelled executions byte-identical up to the
point of interruption.

The token is deliberately tiny: one clock read per check on the hot
path, no locks (the ``cancelled`` flag is a GIL-atomic bool write).
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class ServeError(RuntimeError):
    """Base class for serving-layer failures."""


class QueryTimeout(ServeError):
    """The query's deadline expired (in queue or mid-execution)."""


class QueryCancelled(ServeError):
    """The query was cancelled (server shutdown, client abandon)."""


class ShedError(ServeError):
    """Admission control rejected the query (overload backpressure).

    ``retry_after_seconds`` is the server's estimate of when the queue
    will have drained back under its delay budget — the value a real
    front end would surface as ``Retry-After``.
    """

    def __init__(self, message: str, retry_after_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class CancelToken:
    """Deadline plus an explicit cancel flag, checked cooperatively.

    ``deadline`` is an absolute clock value (``None`` = no deadline).
    ``check()`` raises :class:`QueryTimeout` past the deadline and
    :class:`QueryCancelled` once :meth:`cancel` was called; both
    propagate out of the operator loop to the worker, which owns the
    cleanup (snapshot pin release, ticket state).
    """

    __slots__ = ("deadline", "cancelled", "_clock")

    def __init__(self, deadline: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.deadline = deadline
        self.cancelled = False
        self._clock = clock if clock is not None else time.monotonic

    @classmethod
    def after(cls, timeout_seconds: Optional[float],
              clock: Optional[Callable[[], float]] = None) -> "CancelToken":
        """A token expiring ``timeout_seconds`` from now (``None`` =
        never)."""
        resolved = clock if clock is not None else time.monotonic
        deadline = (resolved() + timeout_seconds
                    if timeout_seconds is not None else None)
        return cls(deadline, clock)

    def cancel(self) -> None:
        self.cancelled = True

    def expired(self) -> bool:
        return self.deadline is not None and self._clock() > self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` = unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - self._clock()

    def check(self) -> None:
        """Raise if this execution should stop; called at operator
        boundaries."""
        if self.cancelled:
            raise QueryCancelled("query cancelled")
        if self.deadline is not None and self._clock() > self.deadline:
            raise QueryTimeout("query deadline exceeded")
