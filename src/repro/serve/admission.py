"""Bounded admission queue with load shedding and priority lanes.

The queue is where overload policy lives, deliberately separated from
both the workers (who just ``take``) and the clients (who just
``offer``):

* **bounded depth** — past ``max_queue_depth`` waiting queries the
  server is overloaded by definition and new arrivals are rejected
  immediately (fail fast beats queueing into a timeout);
* **delay-budget shedding** — even below the depth bound, an arrival
  whose *estimated* queue delay (depth x EWMA service time / workers)
  already exceeds ``queue_delay_budget_ms`` is shed with a
  ``Retry-After`` estimate: it would almost certainly miss its
  deadline anyway, and executing it anyway would push every query
  behind it over the edge too (the classic overload death spiral);
* **priority lanes** — cheap plans (few keywords, small radius: their
  cover is a handful of cells and their candidate sets are small) ride
  a fast lane that workers prefer, so one expensive analytical query
  cannot convoy a stream of interactive ones.  A 1-in-``every``
  anti-starvation rotation keeps the normal lane draining under a
  saturated fast lane.

With ``shedding=False`` the queue is effectively unbounded — the
configuration the serve bench uses as the overload control arm, where
tail latency is left to grow without limit.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional

from .deadline import ShedError

#: EWMA smoothing for the per-query service-time estimate.
_SERVICE_TIME_ALPHA = 0.2


@dataclass(frozen=True)
class AdmissionConfig:
    """Overload policy knobs."""

    max_queue_depth: int = 64
    queue_delay_budget_ms: float = 500.0
    shedding: bool = True
    #: plans at or under both bounds ride the fast lane
    fast_lane_max_keywords: int = 1
    fast_lane_max_radius_km: float = 10.0
    #: every Nth take drains the normal lane first (anti-starvation)
    normal_lane_every: int = 4

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1: {self.max_queue_depth}")
        if self.queue_delay_budget_ms <= 0:
            raise ValueError(f"queue_delay_budget_ms must be > 0: "
                             f"{self.queue_delay_budget_ms}")
        if self.normal_lane_every < 2:
            raise ValueError(
                f"normal_lane_every must be >= 2: {self.normal_lane_every}")

    def is_fast(self, query: Any) -> bool:
        """Lane classification from the query's plan-relevant shape."""
        return (len(query.keywords) <= self.fast_lane_max_keywords
                and query.radius_km <= self.fast_lane_max_radius_km)


class AdmissionQueue:
    """Two-lane bounded queue shared by clients and workers."""

    def __init__(self, config: Optional[AdmissionConfig] = None,
                 workers: int = 1,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.workers = max(1, workers)
        self._clock = clock if clock is not None else time.monotonic
        self._cond = threading.Condition()
        self._fast: Deque[Any] = deque()  # guarded-by: _cond
        self._normal: Deque[Any] = deque()  # guarded-by: _cond
        self._closed = False  # guarded-by: _cond
        self._takes = 0  # guarded-by: _cond
        self._offered = 0  # guarded-by: _cond
        self._shed = 0  # guarded-by: _cond
        #: EWMA of observed service time (seconds); seeded pessimistically
        #: low so a cold server does not shed its first burst.
        self._service_ewma = 0.0  # guarded-by: _cond

    # -- client side --------------------------------------------------------

    def estimated_delay_seconds(self) -> float:
        """Expected queue wait for an arrival right now."""
        with self._cond:
            return self._estimated_delay_locked()

    # holds-lock: _cond
    def _estimated_delay_locked(self) -> float:
        depth = len(self._fast) + len(self._normal)
        return depth * self._service_ewma / self.workers

    def offer(self, item: Any, fast: bool) -> None:
        """Admit ``item`` or raise :class:`ShedError` (overload)."""
        with self._cond:
            if self._closed:
                raise ShedError("server is shutting down")
            if self.config.shedding:
                depth = len(self._fast) + len(self._normal)
                if depth >= self.config.max_queue_depth:
                    self._shed += 1
                    raise ShedError(
                        f"admission queue full ({depth} waiting)",
                        retry_after_seconds=self._estimated_delay_locked())
                delay = self._estimated_delay_locked()
                budget = self.config.queue_delay_budget_ms / 1000.0
                if delay > budget:
                    self._shed += 1
                    raise ShedError(
                        f"estimated queue delay {delay * 1000:.0f}ms exceeds "
                        f"budget {self.config.queue_delay_budget_ms:.0f}ms",
                        retry_after_seconds=delay - budget)
            self._offered += 1
            (self._fast if fast else self._normal).append(item)
            self._cond.notify()

    # -- worker side --------------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Next queued item, fast lane first (with the anti-starvation
        rotation); ``None`` on timeout or once closed and drained."""
        deadline = (self._clock() + timeout) if timeout is not None else None
        with self._cond:
            while True:
                item = self._pop_locked()
                if item is not None:
                    return item
                if self._closed:
                    return None
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()

    # holds-lock: _cond
    def _pop_locked(self) -> Optional[Any]:
        self._takes += 1
        prefer_normal = (self._takes % self.config.normal_lane_every == 0)
        lanes = ((self._normal, self._fast) if prefer_normal
                 else (self._fast, self._normal))
        for lane in lanes:
            if lane:
                return lane.popleft()
        return None

    def observe_service_time(self, seconds: float) -> None:
        """Feed one completed query's execution time into the EWMA the
        shed estimator uses."""
        with self._cond:
            if self._service_ewma == 0.0:
                self._service_ewma = seconds
            else:
                self._service_ewma += _SERVICE_TIME_ALPHA * (
                    seconds - self._service_ewma)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Refuse new offers; wake blocked takers (they drain, then get
        ``None``)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def depth(self) -> int:
        with self._cond:
            return len(self._fast) + len(self._normal)

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "depth": len(self._fast) + len(self._normal),
                "fast_lane_depth": len(self._fast),
                "normal_lane_depth": len(self._normal),
                "offered": self._offered,
                "shed": self._shed,
                "service_time_ewma_ms": self._service_ewma * 1000.0,
                "estimated_delay_ms":
                    self._estimated_delay_locked() * 1000.0,
            }
