"""Closed- and open-loop traffic generators for the serving layer.

Two standard load models, both driving one :class:`~.server.QueryServer`:

* **closed loop** — ``clients`` threads each issue one query, wait for
  its completion, and immediately issue the next.  Offered load adapts
  to the server (a slow server sees fewer arrivals), so the closed loop
  measures peak sustainable throughput and in-service latency.
* **open loop** — a dispatcher submits at a scheduled arrival rate
  regardless of completions (the model of independent clients, which
  is what exposes overload: queue growth, deadline misses, shedding).
  A ``burst_factor`` > 1 modulates the rate with a square wave —
  ``burst_factor``× the base rate during bursts, compensatingly low
  between them — for the bursty-client arm of the bench.

Latency is measured enqueue→completion from the ticket's own
timestamps, so open-loop numbers include queueing (coordinated
omission is avoided: arrival times are scheduled, not gated on
completions).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .deadline import ShedError
from .server import QueryServer, Ticket

#: Reported latency quantiles (matching the bench report schema).
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


def _quantile(values: List[float], fraction: float) -> float:
    """Nearest-rank quantile over a sorted copy (no numpy dependency)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[index]


@dataclass
class TrafficResult:
    """Everything one traffic run observed, ready for the bench report."""

    mode: str
    duration_seconds: float = 0.0
    issued: int = 0
    completed: int = 0
    shed: int = 0
    timeouts: int = 0
    cancelled: int = 0
    errors: int = 0
    cache_hits: int = 0
    latencies_seconds: List[float] = field(default_factory=list)

    def throughput_qps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.completed / self.duration_seconds

    def shed_rate(self) -> float:
        if self.issued <= 0:
            return 0.0
        return self.shed / self.issued

    def cache_hit_rate(self) -> float:
        if self.completed <= 0:
            return 0.0
        return self.cache_hits / self.completed

    def latency_quantiles_ms(self) -> Dict[str, float]:
        return {name: round(_quantile(self.latencies_seconds, q) * 1000.0, 3)
                for name, q in QUANTILES}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "duration_seconds": self.duration_seconds,
            "issued": self.issued,
            "completed": self.completed,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "throughput_qps": self.throughput_qps(),
            "shed_rate": self.shed_rate(),
            "cache_hit_rate": self.cache_hit_rate(),
            "latency_ms": self.latency_quantiles_ms(),
        }

    def _absorb(self, ticket: Ticket) -> None:
        if ticket.outcome == "ok":
            self.completed += 1
            if ticket.cached:
                self.cache_hits += 1
            latency = ticket.latency_seconds()
            if latency is not None:
                self.latencies_seconds.append(latency)
        elif ticket.outcome == "timeout":
            self.timeouts += 1
        elif ticket.outcome == "cancelled":
            self.cancelled += 1
        else:
            self.errors += 1


def run_closed_loop(server: QueryServer,
                    make_query: Callable[[int], Any], *,
                    clients: int,
                    duration_seconds: float,
                    method: str = "max",
                    timeout_seconds: Optional[float] = None) -> TrafficResult:
    """Drive ``clients`` back-to-back issue loops for the duration."""
    result = TrafficResult(mode="closed")
    lock = threading.Lock()
    stop_at = time.monotonic() + duration_seconds

    def client_loop(client_id: int) -> None:
        sequence = client_id
        while time.monotonic() < stop_at:
            query = make_query(sequence)
            sequence += clients
            try:
                ticket = server.submit(query, method, timeout_seconds)
            except ShedError:
                with lock:
                    result.issued += 1
                    result.shed += 1
                continue
            ticket.wait()
            with lock:
                result.issued += 1
                result._absorb(ticket)

    threads = [threading.Thread(target=client_loop, args=(client_id,),
                                name=f"traffic-client-{client_id}",
                                daemon=True)
               for client_id in range(clients)]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.duration_seconds = time.monotonic() - start
    return result


def run_open_loop(server: QueryServer,
                  make_query: Callable[[int], Any], *,
                  rate_qps: float,
                  duration_seconds: float,
                  method: str = "max",
                  timeout_seconds: Optional[float] = None,
                  burst_factor: float = 1.0,
                  burst_period_seconds: float = 1.0) -> TrafficResult:
    """Submit on a fixed arrival schedule; collect outcomes at the end.

    With ``burst_factor > 1`` the schedule alternates each half period
    between ``burst_factor``× and ``(2 - burst_factor)``× the base rate
    (floored at a trickle), keeping the same average arrival count.
    """
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be > 0: {rate_qps}")
    result = TrafficResult(mode="open" if burst_factor <= 1.0 else "bursty")
    tickets: List[Ticket] = []
    start = time.monotonic()
    stop_at = start + duration_seconds
    sequence = 0
    next_arrival = start
    while next_arrival < stop_at:
        delay = next_arrival - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        query = make_query(sequence)
        sequence += 1
        result.issued += 1
        try:
            tickets.append(server.submit(query, method, timeout_seconds))
        except ShedError:
            result.shed += 1
        # Next arrival from the instantaneous rate at this point of the
        # burst cycle (deterministic schedule: repeatable, and immune to
        # coordinated omission since it never waits on completions).
        if burst_factor > 1.0:
            phase = ((next_arrival - start) % burst_period_seconds
                     ) / burst_period_seconds
            factor = burst_factor if phase < 0.5 else \
                max(0.1, 2.0 - burst_factor)
            instantaneous = rate_qps * factor
        else:
            instantaneous = rate_qps
        next_arrival += 1.0 / instantaneous
    # Let in-flight tickets finish (bounded by their own deadlines plus
    # a scheduling grace).
    grace = (timeout_seconds if timeout_seconds is not None
             else server.config.default_timeout_seconds)
    deadline = time.monotonic() + (grace if grace is not None else 30.0) + 5.0
    for ticket in tickets:
        ticket.wait(max(0.0, deadline - time.monotonic()))
    result.duration_seconds = time.monotonic() - start
    for ticket in tickets:
        if ticket.done():
            result._absorb(ticket)
        else:
            ticket.cancel()
            result.cancelled += 1
    return result
