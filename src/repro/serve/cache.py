"""Plan-keyed result cache with watermark-token invalidation.

A cache entry is keyed on the triple

``(PlanSpec, TkLUSQuery, version token)``

where the :class:`~repro.query.pipeline.planner.PlanSpec` is the
planner's memo key (so two queries that execute the same physical plan
shape share nothing unless their parameters also match — both are
frozen dataclasses and hash structurally), and the *version token* is
the ``(watermark LSN, generation epoch)`` pair from
:meth:`repro.ingest.live.LiveIndex.version_token`.

Correctness rests entirely on the token: every append advances the
memtable watermark and every flush/compaction advances the generation
epoch, so tokens never repeat and a stale entry can never be *looked
up* — its token no longer matches the live one.  Invalidation is
therefore purely a memory-bound concern: :meth:`purge_stale` drops
entries from superseded tokens, and an LRU bound caps the rest.  A hit
returns the exact object sequence the original execution produced —
byte-identical to re-running the query at the same watermark, which
``BENCH_serve.json``'s ``cached_results_identical`` headline asserts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional, Tuple

#: ``(watermark LSN, generation token)`` — see LiveIndex.version_token.
VersionToken = Tuple[int, int]

#: Full cache key: (plan spec, query, version token).
CacheKey = Tuple[Hashable, Hashable, VersionToken]

#: What a hit returns: the ranked users exactly as first computed.
CachedResult = List[Tuple[int, float]]


class ResultCache:
    """Bounded LRU over ``(PlanSpec, query, token) -> ranked users``.

    Thread-safe: workers hit it concurrently; all state is guarded by
    one lock (operations are dict moves, never query execution, so the
    critical sections are tiny).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CachedResult]" = \
            OrderedDict()  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._invalidated = 0  # guarded-by: _lock
        self._evicted = 0  # guarded-by: _lock

    def lookup(self, spec: Hashable, query: Hashable,
               token: VersionToken) -> Optional[CachedResult]:
        """The cached ranking for this exact (plan, query, watermark),
        or ``None``.  A hit refreshes LRU recency."""
        key = (spec, query, token)
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def store(self, spec: Hashable, query: Hashable, token: VersionToken,
              users: CachedResult) -> None:
        """Insert (or refresh) one entry, evicting LRU past capacity."""
        key = (spec, query, token)
        with self._lock:
            self._entries[key] = users
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evicted += 1

    def purge_stale(self, current: VersionToken) -> int:
        """Drop every entry whose token is not ``current``; returns the
        number dropped.  Called when the server observes the token move
        (ingest landed) — stale entries could never be served again
        (their key no longer matches), this just returns the memory."""
        with self._lock:
            stale = [key for key in self._entries if key[2] != current]
            for key in stale:
                del self._entries[key]
            self._invalidated += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._invalidated += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            hits, misses = self._hits, self._misses
            lookups = hits + misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / lookups) if lookups else 0.0,
                "invalidated": self._invalidated,
                "evicted": self._evicted,
            }
