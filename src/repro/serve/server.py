"""The serving front end: a worker pool over one TkLUS engine.

``QueryServer`` turns the single-query engine plus ``LiveIndex``
snapshots into a service:

* **admission** — ``submit`` classifies the query into a priority lane
  and offers it to the bounded :class:`~.admission.AdmissionQueue`,
  which sheds under overload (the caller gets a
  :class:`~.deadline.ShedError` immediately, never a queue slot it
  cannot use);
* **execution** — worker threads pop tickets and run them against a
  *pinned* :class:`~repro.ingest.live.LiveSnapshot`, so concurrent
  appends, flushes and compactions never shift a query's view
  mid-plan; the pin is taken with ``with live.snapshot() as snap:`` so
  it is released on every exit path — success, timeout, cancellation
  or operator failure (the RL103 release-on-all-paths discipline);
* **deadlines** — every ticket carries a
  :class:`~.deadline.CancelToken`; a query that spent its deadline in
  the queue fails without executing at all, and one that blows it
  mid-execution stops at the next operator boundary;
* **caching** — results are cached under ``(PlanSpec, query, version
  token)``; the token (see
  :meth:`~repro.ingest.live.LiveIndex.version_token`) changes with
  every append and every flush, so a cached answer is returned only
  while the database is *exactly* the version that produced it —
  byte-identical to re-executing.

Metrics flow through :mod:`repro.obs` under the ``serve.*`` prefix and
feed the serve panel of ``repro top``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import obs
from .admission import AdmissionConfig, AdmissionQueue
from .cache import ResultCache, VersionToken
from .deadline import CancelToken, QueryCancelled, QueryTimeout, ServeError

#: Version token reported when serving a static (non-live) index; the
#: index never changes, so one fixed token is exact.
STATIC_TOKEN: VersionToken = (0, 0)


@dataclass(frozen=True)
class ServeConfig:
    """Sizing and policy for one :class:`QueryServer`."""

    workers: int = 4
    #: per-query deadline when the caller does not set one (None = none)
    default_timeout_seconds: Optional[float] = 5.0
    cache_enabled: bool = True
    cache_capacity: int = 1024
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: worker poll interval against the queue — bounds shutdown latency
    poll_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.poll_seconds <= 0:
            raise ValueError(f"poll_seconds must be > 0: {self.poll_seconds}")


class Ticket:
    """One submitted query: its cancel token, outcome and timings.

    Created by :meth:`QueryServer.submit`; callers block on
    :meth:`result` (or poll :attr:`outcome`).  All completion fields are
    written by exactly one worker before the event is set, so readers
    that saw the event need no lock.
    """

    __slots__ = ("query", "method", "cancel_token", "enqueued_at",
                 "started_at", "finished_at", "cached", "users", "outcome",
                 "error", "_done")

    def __init__(self, query: Any, method: str, cancel_token: CancelToken,
                 enqueued_at: float) -> None:
        self.query = query
        self.method = method
        self.cancel_token = cancel_token
        self.enqueued_at = enqueued_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cached = False
        self.users: Optional[List[Tuple[int, float]]] = None
        self.outcome: Optional[str] = None  # ok|timeout|cancelled|error
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    def cancel(self) -> None:
        """Ask the server to abandon this query (cooperative: it stops
        at the next operator boundary)."""
        self.cancel_token.cancel()

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None
               ) -> List[Tuple[int, float]]:
        """Block for the ranked users; re-raises the query's failure."""
        if not self._done.wait(timeout):
            raise QueryTimeout("timed out waiting for ticket completion")
        if self.error is not None:
            raise self.error
        assert self.users is not None
        return self.users

    def latency_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.enqueued_at

    # -- completion (worker side) -------------------------------------------

    def _complete(self, users: List[Tuple[int, float]], cached: bool,
                  now: float) -> None:
        self.users = users
        self.cached = cached
        self.outcome = "ok"
        self.finished_at = now
        self._done.set()

    def _fail(self, error: BaseException, outcome: str, now: float) -> None:
        self.error = error
        self.outcome = outcome
        self.finished_at = now
        self._done.set()


class QueryServer:
    """Concurrent query serving over one engine (optionally live)."""

    def __init__(self, engine: Any, live: Optional[Any] = None,
                 config: Optional[ServeConfig] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.engine = engine
        # ``live`` is anything with version_token()/snapshot(); when
        # absent we probe the engine's index (the ingest-service wiring
        # hands a LiveIndex there) and otherwise serve the static index
        # under one fixed token.
        if live is None:
            candidate = getattr(engine, "index", None)
            if hasattr(candidate, "version_token"):
                live = candidate
        self.live = live
        self.config = config if config is not None else ServeConfig()
        self._clock = clock if clock is not None else time.monotonic
        self.queue = AdmissionQueue(self.config.admission,
                                    workers=self.config.workers,
                                    clock=self._clock)
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_capacity)
            if self.config.cache_enabled else None)
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        self._started = False  # guarded-by: _state_lock
        self._started_at: Optional[float] = None  # guarded-by: _state_lock
        self._completed = 0  # guarded-by: _state_lock
        self._timeouts = 0  # guarded-by: _state_lock
        self._cancelled = 0  # guarded-by: _state_lock
        self._errors = 0  # guarded-by: _state_lock
        self._busy_seconds: Dict[int, float] = {}  # guarded-by: _state_lock
        self._busy_now = 0  # guarded-by: _state_lock
        self._last_token: Optional[VersionToken] = None  # guarded-by: _state_lock

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "QueryServer":
        with self._state_lock:
            if self._started:
                return self
            self._started = True
            self._started_at = self._clock()
        for worker_id in range(self.config.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      args=(worker_id,),
                                      name=f"serve-worker-{worker_id}",
                                      daemon=True)
            self._threads.append(thread)
            thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut the pool down.  ``drain=True`` lets queued tickets
        finish; ``drain=False`` fails them as cancelled."""
        self.queue.close()
        if not drain:
            while True:
                ticket = self.queue.take(timeout=0)
                if ticket is None:
                    break
                ticket.cancel_token.cancel()
                ticket._fail(QueryCancelled("server stopped"), "cancelled",
                             self._clock())
        self._stop.set()
        for thread in self._threads:
            thread.join()
        self._threads = []

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()

    # -- client API ---------------------------------------------------------

    def submit(self, query: Any, method: str = "max",
               timeout_seconds: Optional[float] = None) -> Ticket:
        """Admit one query; returns its :class:`Ticket` or raises
        :class:`~.deadline.ShedError` under overload."""
        if timeout_seconds is None:
            timeout_seconds = self.config.default_timeout_seconds
        token = CancelToken.after(timeout_seconds, self._clock)
        ticket = Ticket(query, method, token, self._clock())
        fast = self.config.admission.is_fast(query)
        try:
            self.queue.offer(ticket, fast)
        except ServeError:
            obs.inc("serve.shed")
            raise
        obs.inc("serve.submitted")
        obs.inc("serve.lane.fast" if fast else "serve.lane.normal")
        obs.set_gauge("serve.queue_depth", self.queue.depth())
        return ticket

    def execute(self, query: Any, method: str = "max",
                timeout_seconds: Optional[float] = None
                ) -> List[Tuple[int, float]]:
        """Synchronous convenience: submit and block for the ranking."""
        return self.submit(query, method, timeout_seconds).result()

    # -- worker -------------------------------------------------------------

    def _worker_loop(self, worker_id: int) -> None:
        # ``take`` hands each ticket to exactly one consumer, returns
        # None on poll timeout and (immediately) once the queue is
        # closed and drained; the stop flag is only checked on a None,
        # so queued work always drains before a drain-mode shutdown.
        poll = self.config.poll_seconds
        while True:
            ticket = self.queue.take(timeout=poll)
            if ticket is None:
                if self._stop.is_set():
                    return
                continue
            self._run_ticket(ticket, worker_id)

    def _run_ticket(self, ticket: Ticket, worker_id: int) -> None:
        now = self._clock()
        obs.observe("serve.queue_delay_seconds", now - ticket.enqueued_at)
        obs.set_gauge("serve.queue_depth", self.queue.depth())
        with self._state_lock:
            self._busy_now += 1
            busy = self._busy_now
        obs.set_gauge("serve.workers_busy", busy)
        ticket.started_at = now
        try:
            self._execute_ticket(ticket)
        finally:
            elapsed = self._clock() - now
            self.queue.observe_service_time(elapsed)
            with self._state_lock:
                self._busy_now -= 1
                busy = self._busy_now
                self._busy_seconds[worker_id] = \
                    self._busy_seconds.get(worker_id, 0.0) + elapsed
            obs.set_gauge("serve.workers_busy", busy)

    def _execute_ticket(self, ticket: Ticket) -> None:
        token = ticket.cancel_token
        try:
            # A deadline spent entirely in the queue fails here, before
            # any execution work (or snapshot pin) happens.
            token.check()
            users, cached = self._execute_query(ticket.query, ticket.method,
                                                token)
        except QueryTimeout as exc:
            with self._state_lock:
                self._timeouts += 1
            obs.inc("serve.timeouts")
            ticket._fail(exc, "timeout", self._clock())
        except QueryCancelled as exc:
            with self._state_lock:
                self._cancelled += 1
            obs.inc("serve.cancelled")
            ticket._fail(exc, "cancelled", self._clock())
        except Exception as exc:  # noqa: BLE001 - ticket carries the failure
            with self._state_lock:
                self._errors += 1
            obs.inc("serve.errors")
            ticket._fail(exc, "error", self._clock())
        else:
            with self._state_lock:
                self._completed += 1
            obs.inc("serve.completed")
            obs.inc("serve.cache.hits" if cached else "serve.cache.misses")
            finished = self._clock()
            obs.observe("serve.latency_seconds", finished - ticket.enqueued_at)
            ticket._complete(users, cached, finished)

    def _plan_spec(self, query: Any, method: str) -> Any:
        processor = self.engine.processor(method)
        return processor.plan_for(query).spec

    def _execute_query(self, query: Any, method: str, token: CancelToken
                       ) -> Tuple[List[Tuple[int, float]], bool]:
        """Cache-or-execute; returns ``(users, was_cache_hit)``."""
        if self.live is None:
            # Static index: one fixed version, cache always valid.
            if self.cache is not None:
                spec = self._plan_spec(query, method)
                hit = self.cache.lookup(spec, query, STATIC_TOKEN)
                if hit is not None:
                    return hit, True
                result = self.engine.search(query, method, cancel=token)
                self.cache.store(spec, query, STATIC_TOKEN, result.users)
                return result.users, False
            return self.engine.search(query, method, cancel=token).users, False

        spec = None
        if self.cache is not None:
            spec = self._plan_spec(query, method)
            current = self.live.version_token()
            hit = self.cache.lookup(spec, query, current)
            if hit is not None:
                return hit, True
            self._maybe_purge(current)
        # Miss (or cache off): execute against a pinned snapshot.  The
        # ``with`` guarantees the generation-set pin is released on every
        # exit path — timeout and cancellation included.
        with self.live.snapshot() as snap:
            result = self.engine.search(query, method, source=snap,
                                        cancel=token)
            if self.cache is not None and spec is not None:
                # Keyed on the *snapshot's* token, not the pre-lookup
                # one: the result is exact for the version the snapshot
                # actually captured, even if ingest landed in between.
                self.cache.store(spec, query, snap.version_token,
                                 result.users)
        return result.users, False

    def _maybe_purge(self, current: VersionToken) -> None:
        """Reclaim superseded cache entries when the token moves.

        Correctness never depends on this — a stale token can never be
        looked up again — so the purge is opportunistic, amortised to
        token transitions."""
        with self._state_lock:
            changed = self._last_token != current
            self._last_token = current
        if changed and self.cache is not None:
            dropped = self.cache.purge_stale(current)
            if dropped:
                obs.inc("serve.cache.purged", dropped)

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._state_lock:
            uptime = (self._clock() - self._started_at
                      if self._started_at is not None else 0.0)
            busy_total = sum(self._busy_seconds.values())
            completed = self._completed
            counts = {
                "completed": completed,
                "timeouts": self._timeouts,
                "cancelled": self._cancelled,
                "errors": self._errors,
                "workers_busy": self._busy_now,
            }
        capacity_seconds = uptime * self.config.workers
        payload: Dict[str, Any] = {
            "workers": self.config.workers,
            "uptime_seconds": uptime,
            "throughput_qps": (completed / uptime) if uptime > 0 else 0.0,
            "worker_utilization": (busy_total / capacity_seconds
                                   if capacity_seconds > 0 else 0.0),
            "queue": self.queue.stats(),
            "cache": self.cache.stats() if self.cache is not None else None,
        }
        payload.update(counts)
        return payload
