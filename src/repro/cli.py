"""Command-line interface for the TkLUS reproduction.

Subcommands mirror the operational pipeline of the paper's Figure 3:

* ``generate``     — synthesise a geo-tagged corpus to JSON lines
                     (the "crawl" stage);
* ``build``        — run ETL + index construction and save the built
                     deployment to a directory;
* ``query``        — answer TkLUS queries against a saved deployment
                     (or build one on the fly from a corpus file);
* ``profile``      — run one query with tracing on and print the span
                     tree, the per-query profile, and the metrics dump;
* ``explain``      — print the physical operator plan of each query
                     execution path (no deployment needed — plans are
                     query-class level);
* ``stats``        — corpus statistics (Table II style);
* ``experiments``  — regenerate the paper's tables and figures;
* ``top``          — live terminal dashboard (throughput, tail latency,
                     funnel, SLO, health) over a mixed ingest+query
                     workload with the telemetry runtime installed;
* ``perf-contract``— check the committed bench reports against the
                     committed performance baseline (see
                     ``repro.eval.contract``);
* ``check``        — correctness tooling: project lint rules
                     (``--rules``) and deep structural invariant
                     validation of a built index (``--deep``); see
                     docs/STATIC_ANALYSIS.md.

``query``, ``profile`` and ``experiments`` accept ``--trace FILE`` to
write the collected spans as JSON lines (see docs/OBSERVABILITY.md).

Examples::

    python -m repro.cli generate -o corpus.jsonl --users 500 --roots 2000
    python -m repro.cli build corpus.jsonl -o deployment/
    python -m repro.cli query deployment/ --lat 43.65 --lon -79.38 \\
        --radius 10 --keywords hotel --k 5 --method max
    python -m repro.cli profile --synthetic --keywords hotel --radius 20
    python -m repro.cli experiments --small --trace spans.jsonl
    python -m repro.cli check --rules src tests
    python -m repro.cli check --deep --users 150 --roots 700
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.model import Semantics


def _cmd_generate(args: argparse.Namespace) -> int:
    from .data.etl import dump_posts
    from .data.generator import generate_corpus

    corpus = generate_corpus(num_users=args.users,
                             num_root_tweets=args.roots, seed=args.seed)
    with open(args.output, "w") as handle:
        count = dump_posts(corpus.posts, handle)
    print(f"wrote {count} posts to {args.output}")
    return 0


def _load_corpus(path: str):
    from .data.etl import load_posts

    with open(path) as handle:
        posts = load_posts(handle)
    if not posts:
        print(f"error: no geo-tagged posts in {path}", file=sys.stderr)
        raise SystemExit(2)
    return posts


def _cmd_build(args: argparse.Namespace) -> int:
    from .index.builder import IndexConfig
    from .query.engine import EngineConfig, TkLUSEngine
    from .query.persistence import save_engine

    posts = _load_corpus(args.corpus)
    config = EngineConfig(index=IndexConfig(geohash_length=args.geohash_length))
    engine = TkLUSEngine.from_posts(posts, config=config)
    save_engine(engine, args.output)
    report = engine.index_report()
    print(f"built index over {report['tweets']} tweets "
          f"(geohash length {report['geohash_length']}); "
          f"saved to {args.output}")
    return 0


def _write_trace(path: str, spans) -> None:
    from .obs import write_spans_jsonl

    with open(path, "w") as handle:
        count = write_spans_jsonl(spans, handle)
    print(f"wrote {count} spans to {path}", file=sys.stderr)


def _cmd_query(args: argparse.Namespace) -> int:
    from . import obs
    from .query.persistence import load_engine

    if args.corpus:
        from .query.engine import TkLUSEngine
        engine = TkLUSEngine.from_posts(_load_corpus(args.corpus))
    else:
        engine = load_engine(args.deployment)
    semantics = Semantics.AND if args.semantics == "and" else Semantics.OR
    query = engine.make_query((args.lat, args.lon), args.radius,
                              args.keywords, k=args.k, semantics=semantics)
    if args.trace:
        with obs.observed() as (tracer, _registry):
            result = engine.search(query, method=args.method)
        _write_trace(args.trace, tracer.roots())
    else:
        result = engine.search(query, method=args.method)
    if not result.users:
        print("no local users found")
        return 0
    for rank, (uid, score) in enumerate(result.users, start=1):
        print(f"#{rank}\tuser {uid}\tscore {score:.6f}")
    stats = result.stats
    print(f"({stats.candidates} candidates, {stats.threads_built} threads "
          f"built, {stats.threads_pruned} pruned, "
          f"{stats.elapsed_seconds * 1000:.1f} ms)", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from . import obs
    from .query.engine import TkLUSEngine

    if args.synthetic:
        from .data.generator import generate_corpus
        from .data.queries import QueryWorkload

        corpus = generate_corpus(num_users=args.users,
                                 num_root_tweets=args.roots, seed=args.seed)
        engine = TkLUSEngine.from_posts(corpus.posts)
        location = (args.lat, args.lon)
        if args.lat is None or args.lon is None:
            location = QueryWorkload(corpus, seed=args.seed).sample_location()
    elif args.corpus:
        engine = TkLUSEngine.from_posts(_load_corpus(args.corpus))
        location = (args.lat, args.lon)
    else:
        from .query.persistence import load_engine
        engine = load_engine(args.deployment)
        location = (args.lat, args.lon)
    if location[0] is None or location[1] is None:
        print("error: --lat/--lon are required unless --synthetic",
              file=sys.stderr)
        return 2

    semantics = Semantics.AND if args.semantics == "and" else Semantics.OR
    query = engine.make_query(location, args.radius, args.keywords,
                              k=args.k, semantics=semantics)
    result, spans, registry = engine.profile_search(query, method=args.method)

    for rank, (uid, score) in enumerate(result.users, start=1):
        print(f"#{rank}\tuser {uid}\tscore {score:.6f}")
    if not result.users:
        print("no local users found")
    print()
    print("── span tree " + "─" * 47)
    print(obs.render_span_tree(spans))
    print()
    print("── query profile " + "─" * 43)
    print(result.profile.describe())
    print()
    print("── metrics " + "─" * 49)
    if args.prometheus:
        print(obs.to_prometheus_text(registry), end="")
    else:
        print(obs.render_metrics(registry))
    if args.trace:
        _write_trace(args.trace, spans)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .query.federation import federated_plan
    from .query.pipeline import Planner

    semantics = Semantics.AND if args.semantics == "and" else Semantics.OR
    planner = Planner()
    pruning = not args.no_pruning
    methods = (["sum", "max", "baseline", "distributed", "federated"]
               if args.method == "all" else [args.method])
    blocks = []
    for method in methods:
        if method == "baseline":
            text = planner.explain(args.aggregate, semantics,
                                   temporal=args.temporal, scan=True)
        elif method == "distributed":
            text = planner.explain(args.aggregate, semantics,
                                   temporal=args.temporal, distributed=True)
        elif method == "federated":
            text = federated_plan(args.aggregate).describe()
        else:
            text = planner.explain(method, semantics, pruning=pruning,
                                   temporal=args.temporal,
                                   kernels=args.kernels)
        blocks.append(text)
    print("\n\n".join(blocks))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from collections import Counter

    posts = _load_corpus(args.corpus)
    users = {post.uid for post in posts}
    replies = sum(1 for post in posts if post.rsid is not None)
    terms = Counter()
    for post in posts:
        terms.update(post.words)
    print(f"posts:   {len(posts)}")
    print(f"users:   {len(users)}")
    print(f"replies: {replies} ({replies / len(posts):.1%})")
    print("top keywords:")
    for rank, (term, count) in enumerate(terms.most_common(args.top), 1):
        print(f"  {rank:2d}. {term:15s} {count}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from . import obs
    from .eval.experiments import (
        ExperimentContext,
        fig5_index_construction_time,
        fig6_index_size,
        fig7_geohash_length,
        fig8_single_keyword,
        fig9_kendall_single,
        fig10_multi_keyword,
        fig11_kendall_multi,
        fig12_specific_bounds,
        fig13_user_study,
        table2_keyword_frequencies,
        table4_geohash_lengths,
    )
    from .eval.report import print_table

    if args.small:
        context = ExperimentContext.create(num_users=300,
                                           num_root_tweets=1500,
                                           queries_per_point=4)
    else:
        context = ExperimentContext.create()

    def run_all() -> None:
        print_table(table2_keyword_frequencies(context.corpus), "Table II")
        print_table(table4_geohash_lengths(), "Table IV")
        print_table(fig5_index_construction_time(context.corpus), "Fig 5")
        print_table(fig6_index_size(context.corpus), "Fig 6")
        print_table(fig7_geohash_length(context), "Fig 7")
        print_table(fig8_single_keyword(context), "Fig 8")
        print_table(fig9_kendall_single(context), "Fig 9")
        print_table(fig10_multi_keyword(context), "Fig 10")
        print_table(fig11_kendall_multi(context), "Fig 11")
        print_table(fig12_specific_bounds(context), "Fig 12")
        print_table(fig13_user_study(context), "Fig 13")

    if args.trace:
        with obs.observed() as (tracer, registry):
            run_all()
        _write_trace(args.trace, tracer.roots())
        print(obs.render_metrics(registry), file=sys.stderr)
    else:
        run_all()
    return 0


def _cmd_bench_matrix(args: argparse.Namespace) -> int:
    import json

    from .eval.matrix import (
        MatrixConfig,
        diff_matrix,
        list_cells,
        render_matrix,
        run_matrix,
        validate_matrix_report,
        write_report,
    )

    config = (MatrixConfig.smoke() if args.smoke
              else MatrixConfig(seed=args.seed))
    if args.list_cells:
        for cell in list_cells(config):
            print(cell)
        return 0
    try:
        payload = run_matrix(config, only_cell=args.cell or None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = validate_matrix_report(payload)
    if problems:
        for problem in problems:
            print(f"invalid matrix report: {problem}", file=sys.stderr)
        return 1
    if args.output:
        write_report(payload, args.output)
        print(f"wrote {args.output}")
    print(render_matrix(payload))
    if args.diff is not None:
        with open(args.diff) as handle:
            committed = json.load(handle)
        notes = diff_matrix(payload, committed)
        for note in notes:
            print(f"diff vs {args.diff}: {note}", file=sys.stderr)
        if not notes:
            print(f"no speedup drift vs {args.diff}", file=sys.stderr)
    if not payload["results_identical"]:
        print("kernel parity violated: batched results diverged from "
              "scalar", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.matrix or args.list_cells or args.cell or args.diff is not None:
        return _cmd_bench_matrix(args)

    from .eval.bench import (
        BenchConfig,
        render_summary,
        run_bench,
        validate_bench_report,
        write_report,
    )

    config = BenchConfig(
        num_users=args.users, num_root_tweets=args.roots, seed=args.seed,
        queries_per_workload=args.queries, radius_km=args.radius,
        k=args.k, block_size=args.block_size,
        overhead_rounds=args.overhead_rounds,
        overhead_budget=args.max_overhead)
    payload = run_bench(config)
    problems = validate_bench_report(payload)
    if problems:
        for problem in problems:
            print(f"invalid bench report: {problem}", file=sys.stderr)
        return 1
    if args.output:
        write_report(payload, args.output)
        print(f"wrote {args.output}")
    print(render_summary(payload))
    mismatched = [w["name"] for w in payload["workloads"]
                  if not w["results_identical"]]
    if mismatched:
        print(f"format parity violated on: {', '.join(mismatched)}",
              file=sys.stderr)
        return 1
    overhead = payload.get("telemetry_overhead")
    if overhead is not None and not overhead["within_budget"]:
        print(f"telemetry overhead {overhead['overhead_ratio']:.3f}x exceeds "
              f"budget {overhead['budget_ratio']:.3f}x", file=sys.stderr)
        return 1
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json

    from .ingest import IngestConfig, IngestService, load_posts_file

    if args.corpus:
        posts = load_posts_file(args.corpus)
    else:
        from .data.generator import generate_corpus
        corpus = generate_corpus(num_users=args.users,
                                 num_root_tweets=args.roots, seed=args.seed)
        posts = list(corpus.posts)
    if not posts:
        print("error: nothing to ingest", file=sys.stderr)
        return 2

    service = IngestService(
        args.directory,
        ingest_config=IngestConfig(flush_posts=args.flush_posts,
                                   sync_every=args.sync_every))
    for post in posts:
        service.append(post)
    if args.flush:
        service.flush()
    status = service.status()
    service.close()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        recovery = status["recovery"]
        print(f"ingested {len(posts)} posts into {args.directory}")
        print(f"  generations={len(status['generations'])} "
              f"memtable={status['memtable_posts']} posts "
              f"({status['memtable_bytes']} bytes)")
        print(f"  wal: {status['wal']['appends']} appends, "
              f"{status['wal']['fsyncs']} fsyncs, "
              f"next_lsn={status['next_lsn']}")
        if recovery["records_replayed"] or recovery["generations_loaded"]:
            print(f"  recovered on open: "
                  f"{recovery['generations_loaded']} generations, "
                  f"{recovery['records_replayed']} WAL records replayed")
    return 0


def _cmd_ingest_status(args: argparse.Namespace) -> int:
    import json

    from .ingest import inspect_ingest_dir

    report = inspect_ingest_dir(args.directory)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.exists else 2
    if not report.exists:
        print(f"error: {args.directory} is not an ingest directory",
              file=sys.stderr)
        return 2
    manifest = report.manifest
    generations = manifest.get("generations", [])
    flushed = sum(entry["post_count"] for entry in generations)
    print(f"ingest directory {args.directory}")
    print(f"  generations: {len(generations)} ({flushed} posts flushed)")
    tiers = {}
    for entry in generations:
        bucket = tiers.setdefault(int(entry.get("tier", 0)),
                                  {"generations": 0, "posts": 0, "bytes": 0})
        bucket["generations"] += 1
        bucket["posts"] += int(entry["post_count"])
        bucket["bytes"] += int(entry.get("size_bytes", 0))
    for tier in sorted(tiers):
        bucket = tiers[tier]
        print(f"  tier {tier}: {bucket['generations']} generation(s), "
              f"{bucket['posts']} posts, {bucket['bytes']} bytes")
    print(f"  last_flushed_lsn: {manifest.get('last_flushed_lsn', 0)}")
    print(f"  unflushed WAL records: {report.unflushed_records}"
          + (" (torn tail on final segment)" if report.torn_tail else ""))
    for segment in report.segments:
        flags = []
        if segment["flushed"]:
            flags.append("flushed")
        if segment["torn_tail"]:
            flags.append("torn")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        print(f"  {segment['name']}: {segment['records']} records{suffix}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    import json

    from .compaction import CompactionConfig
    from .ingest import IngestError, IngestService

    try:
        service = IngestService(
            args.directory,
            compaction_config=CompactionConfig(
                mode=args.mode, min_inputs=args.min_inputs,
                max_inputs=args.max_inputs))
    except IngestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        if args.dry_run:
            plan = service.compaction_plan()
            payload = {
                "tiers": service.tier_breakdown(),
                "debt": service.compaction.debt(),
                "plan": plan.describe() if plan is not None else None,
            }
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                print(f"ingest directory {args.directory}")
                for tier, bucket in payload["tiers"].items():
                    print(f"  tier {tier}: {bucket['generations']} "
                          f"generation(s), {bucket['posts']} posts, "
                          f"{bucket['bytes']} bytes")
                print(f"  compaction debt: {payload['debt']} generation(s)")
                print(f"  next plan: {payload['plan'] or 'nothing to do'}")
            return 0
        before = service.tier_breakdown()
        merges = service.compact(max_steps=args.max_steps)
        after = service.tier_breakdown()
        reclaimed = service.generations.drain()
        payload = {
            "merges_committed": merges,
            "generations_before": sum(b["generations"]
                                      for b in before.values()),
            "generations_after": sum(b["generations"] for b in after.values()),
            "reclaimed": reclaimed,
            "tiers": after,
        }
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"compacted {args.directory}: {merges} merge(s), "
                  f"{payload['generations_before']} -> "
                  f"{payload['generations_after']} generations")
            for tier, bucket in after.items():
                print(f"  tier {tier}: {bucket['generations']} "
                      f"generation(s), {bucket['posts']} posts, "
                      f"{bucket['bytes']} bytes")
        return 0
    finally:
        service.close()


def _cmd_ingest_bench(args: argparse.Namespace) -> int:
    import tempfile

    from .eval.ingest_bench import (
        IngestBenchConfig,
        render_ingest_summary,
        run_ingest_bench,
        validate_ingest_bench_report,
        write_ingest_report,
    )

    config = IngestBenchConfig(
        num_users=args.users, num_root_tweets=args.roots, seed=args.seed,
        queries=args.queries, appends_per_query=args.appends_per_query,
        flush_posts=args.flush_posts, sync_every=args.sync_every,
        radius_km=args.radius, k=args.k, telemetry=args.telemetry)
    if args.directory:
        payload = run_ingest_bench(args.directory, config)
    else:
        with tempfile.TemporaryDirectory() as scratch:
            payload = run_ingest_bench(f"{scratch}/ingest", config)
    problems = validate_ingest_bench_report(payload)
    if problems:
        for problem in problems:
            print(f"invalid ingest bench report: {problem}", file=sys.stderr)
        return 1
    if args.output:
        write_ingest_report(payload, args.output)
        print(f"wrote {args.output}")
    print(render_ingest_summary(payload))
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import tempfile

    from .eval.serve_bench import (
        ServeBenchConfig,
        render_serve_summary,
        run_serve_bench,
        validate_serve_bench_report,
        write_serve_report,
    )

    if args.smoke:
        config = ServeBenchConfig.smoke()
        config.seed = args.seed
    else:
        config = ServeBenchConfig(
            num_users=args.users, num_root_tweets=args.roots, seed=args.seed,
            closed_duration_seconds=args.duration,
            overload_duration_seconds=args.duration,
            mixed_duration_seconds=args.duration,
            closed_clients=args.clients)
    if args.directory:
        payload = run_serve_bench(args.directory, config)
    else:
        with tempfile.TemporaryDirectory() as scratch:
            payload = run_serve_bench(f"{scratch}/serve", config)
    problems = validate_serve_bench_report(payload)
    if problems:
        for problem in problems:
            print(f"invalid serve bench report: {problem}", file=sys.stderr)
        return 1
    if args.output:
        write_serve_report(payload, args.output)
        print(f"wrote {args.output}")
    print(render_serve_summary(payload))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Stand up the serving stack over a synthetic live deployment and
    drive demonstration traffic through it (there is no network front
    end — the subsystem under test is the pool/queue/cache)."""
    import tempfile
    import threading
    import time

    from .data.generator import generate_corpus
    from .data.queries import QueryWorkload
    from .ingest import IngestConfig, IngestService
    from .serve import (AdmissionConfig, QueryServer, ServeConfig,
                        run_closed_loop, run_open_loop)

    corpus = generate_corpus(num_users=args.users,
                             num_root_tweets=args.roots, seed=args.seed)
    posts = list(corpus.posts)
    workload = QueryWorkload(corpus, seed=args.seed)
    queries = workload.make_queries(2, args.radius, k=args.k,
                                    semantics=Semantics.OR, limit=16)

    with tempfile.TemporaryDirectory() as scratch:
        service = IngestService(
            f"{scratch}/serve",
            ingest_config=IngestConfig(flush_posts=args.flush_posts))
        preload = len(posts) // 2
        for post in posts[:preload]:
            service.append(post)
        service.flush()
        engine = service.build_query_engine()

        server = QueryServer(engine, live=service.live, config=ServeConfig(
            workers=args.workers,
            default_timeout_seconds=args.timeout,
            cache_enabled=not args.no_cache,
            admission=AdmissionConfig(
                max_queue_depth=args.queue_depth,
                queue_delay_budget_ms=args.delay_budget_ms)))

        stop = threading.Event()
        appended = 0

        def ingest_loop() -> None:
            nonlocal appended
            stream = iter(posts[preload:])
            while not stop.is_set():
                post = next(stream, None)
                if post is None:
                    return
                service.append(post)
                appended += 1
                time.sleep(1.0 / max(1.0, args.ingest_rate))

        ingester = None
        with server:
            if args.ingest_rate > 0:
                ingester = threading.Thread(target=ingest_loop, daemon=True)
                ingester.start()
            if args.rate > 0:
                result = run_open_loop(
                    server, lambda i: queries[i % len(queries)],
                    rate_qps=args.rate, duration_seconds=args.duration)
            else:
                result = run_closed_loop(
                    server, lambda i: queries[i % len(queries)],
                    clients=args.clients, duration_seconds=args.duration)
            stop.set()
            if ingester is not None:
                ingester.join(timeout=5.0)
            stats = server.stats()
        service.close()

    latency = result.latency_quantiles_ms()
    print(f"served {result.completed}/{result.issued} queries in "
          f"{result.duration_seconds:.1f}s "
          f"({result.throughput_qps():.1f} qps, {args.workers} workers)")
    print(f"  latency p50={latency['p50']:.2f}ms p95={latency['p95']:.2f}ms "
          f"p99={latency['p99']:.2f}ms p999={latency['p999']:.2f}ms")
    print(f"  shed {result.shed} ({result.shed_rate():.1%}), "
          f"timeouts {result.timeouts}, errors {result.errors}")
    cache = stats.get("cache")
    if cache:
        print(f"  cache: {cache['hits']} hits / "
              f"{cache['hits'] + cache['misses']} lookups "
              f"({cache['hit_rate']:.1%}), "
              f"{cache['invalidated']} invalidated")
    print(f"  ingest during run: {appended} appends, "
          f"worker utilization {stats['worker_utilization']:.0%}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import tempfile
    import threading
    import time

    from . import obs
    from .data.generator import generate_corpus
    from .data.queries import QueryWorkload
    from .ingest import IngestConfig, IngestService
    from .obs.top import render_top
    from .serve import QueryServer, ServeConfig, ShedError

    corpus = generate_corpus(num_users=args.users,
                             num_root_tweets=args.roots, seed=args.seed)
    posts = list(corpus.posts)
    workload = QueryWorkload(corpus, seed=args.seed)
    queries = workload.make_queries(2, args.radius, k=args.k,
                                    semantics=Semantics.OR, limit=16)

    runtime = obs.enable_runtime(obs.RuntimeConfig(
        window_seconds=1.0, num_windows=120,
        slow_query_ms=args.slow_query_ms))
    frames = args.frames or max(1, int(args.duration / args.interval))
    clear = sys.stdout.isatty() and not args.no_clear
    stop = threading.Event()

    with tempfile.TemporaryDirectory() as scratch:
        service = IngestService(
            f"{scratch}/ingest",
            ingest_config=IngestConfig(flush_posts=args.flush_posts))
        preload = len(posts) // 2
        for post in posts[:preload]:
            service.append(post)
        service.flush()
        engine = service.build_query_engine()
        server = QueryServer(engine, live=service.live,
                             config=ServeConfig(workers=args.serve_workers))

        def worker() -> None:
            # Mixed workload: drip the remaining posts in while cycling
            # the query set through the serving pool, so every dashboard
            # panel — serve included — has live data.
            stream = iter(posts[preload:])
            cursor = 0
            while not stop.is_set():
                for _ in range(4):
                    post = next(stream, None)
                    if post is not None:
                        service.append(post)
                try:
                    server.execute(queries[cursor % len(queries)], "max")
                except ShedError:
                    pass
                cursor += 1

        thread = threading.Thread(target=worker, daemon=True)
        with server:
            thread.start()
            try:
                for _frame in range(frames):
                    time.sleep(args.interval)
                    frame = render_top(runtime, health=service.health(),
                                       service_status=service.status(),
                                       serve_stats=server.stats(),
                                       recent_seconds=args.recent)
                    if clear:
                        print("\x1b[2J\x1b[H" + frame, flush=True)
                    else:
                        print(frame, flush=True)
            finally:
                stop.set()
                thread.join(timeout=5.0)
                obs.disable_runtime()
                service.close()
    return 0


def _cmd_perf_contract(args: argparse.Namespace) -> int:
    import json
    import os

    from .eval.contract import (
        build_baseline,
        check_contract,
        extract_headlines,
        load_baseline,
        render_contract,
        write_baseline,
    )

    def read_report(path: str):
        if not os.path.exists(path):
            return None
        with open(path) as handle:
            return json.load(handle)

    query_payload = read_report(args.query_report)
    ingest_payload = read_report(args.ingest_report)
    matrix_payload = read_report(args.matrix_report)
    serve_payload = read_report(args.serve_report)
    if query_payload is None and ingest_payload is None \
            and matrix_payload is None and serve_payload is None:
        print(f"error: none of {args.query_report}, {args.ingest_report}, "
              f"{args.matrix_report} or {args.serve_report} exists",
              file=sys.stderr)
        return 2
    if matrix_payload is not None:
        from .eval.matrix import validate_matrix_report
        matrix_problems = validate_matrix_report(matrix_payload)
        if matrix_problems:
            for problem in matrix_problems:
                print(f"invalid matrix report: {problem}", file=sys.stderr)
            return 1
    if serve_payload is not None:
        from .eval.serve_bench import validate_serve_bench_report
        serve_problems = validate_serve_bench_report(serve_payload)
        if serve_problems:
            for problem in serve_problems:
                print(f"invalid serve report: {problem}", file=sys.stderr)
            return 1

    current = extract_headlines(query_payload, ingest_payload,
                                matrix_payload, serve_payload)
    if args.write_baseline:
        baseline = build_baseline(query_payload, ingest_payload,
                                  matrix_payload, serve_payload)
        parent = os.path.dirname(args.baseline)
        if parent:
            os.makedirs(parent, exist_ok=True)
        write_baseline(baseline, args.baseline)
        print(f"wrote {len(baseline['headlines'])} headline(s) to "
              f"{args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"error: baseline {args.baseline} not found "
              f"(run with --write-baseline first)", file=sys.stderr)
        return 2
    baseline = load_baseline(args.baseline)
    problems = check_contract(current, baseline)
    if args.json:
        print(json.dumps({"headlines": current, "problems": problems},
                         indent=2, sort_keys=True))
    else:
        print(render_contract(current, baseline))
        for problem in problems:
            print(f"contract violation: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("perf contract holds "
          f"({len(current)} headline(s) checked)", file=sys.stderr)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import json
    import os

    from . import lint

    if args.list_rules:
        for rule in lint.all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    fmt = args.format or ("json" if args.json else "text")
    run_rules = args.rules or args.concurrency or not args.deep
    exit_code = 0
    payload = {}

    if run_rules:
        baseline = set()
        if not args.no_baseline and os.path.exists(args.baseline):
            baseline = lint.load_baseline(args.baseline)
        rules = None
        if args.concurrency:
            # The RL100 family: guarded-by discipline, lock ordering,
            # pin/lifecycle/commit protocols.
            rules = [rule for rule in lint.all_rules()
                     if rule.rule_id.startswith("RL10")]
        report = lint.lint_paths(args.paths, rules=rules, baseline=baseline)
        if args.write_baseline:
            lint.write_baseline(args.baseline, report.findings)
            print(f"wrote {len(report.findings)} baseline entries to "
                  f"{args.baseline}", file=sys.stderr)
            report.baselined.extend(report.findings)
            report.findings = []
        if fmt == "sarif":
            print(lint.render_sarif(report))
        elif fmt == "json":
            payload["rules"] = report.to_dict()
        else:
            print(lint.render_text(report, verbose=args.verbose))
        if not report.ok:
            exit_code = 1

    if args.concurrency:
        from .lint.sanitizer import run_sanitizer_smoke
        sanitizer_report = run_sanitizer_smoke()
        if fmt == "json":
            payload["sanitizer"] = sanitizer_report.to_dict()
        else:
            # stderr so --format sarif keeps stdout pure SARIF.
            stream = sys.stderr if fmt == "sarif" else sys.stdout
            for line in sanitizer_report.describe():
                print(line, file=stream)
            print(f"sanitizer: {sanitizer_report.acquisitions} sanitized "
                  f"acquisitions, {len(sanitizer_report.edges)} order "
                  f"edge(s), "
                  f"{'ok' if sanitizer_report.ok else 'NOT OK'}",
                  file=stream)
        if not sanitizer_report.ok:
            exit_code = 1

    if args.deep:
        deep_report = lint.run_deep_checks(users=args.users,
                                           roots=args.roots, seed=args.seed)
        if fmt == "json":
            payload["deep"] = deep_report.to_dict()
        else:
            print(deep_report.render_text())
        if not deep_report.ok:
            exit_code = 1

    if fmt == "json":
        print(json.dumps(payload, indent=2))
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TkLUS: top-k local user search (ICDE 2015 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate",
                                   help="synthesise a geo-tagged corpus")
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--users", type=int, default=800)
    generate.add_argument("--roots", type=int, default=4000)
    generate.add_argument("--seed", type=int, default=42)
    generate.set_defaults(func=_cmd_generate)

    build = commands.add_parser("build",
                                help="build and save a TkLUS deployment")
    build.add_argument("corpus", help="JSON-lines corpus file")
    build.add_argument("-o", "--output", required=True,
                       help="deployment directory")
    build.add_argument("--geohash-length", type=int, default=4)
    build.set_defaults(func=_cmd_build)

    query = commands.add_parser("query", help="run a TkLUS query")
    query.add_argument("deployment", nargs="?", default="",
                       help="saved deployment directory")
    query.add_argument("--corpus", default="",
                       help="build from this corpus file instead")
    query.add_argument("--lat", type=float, required=True)
    query.add_argument("--lon", type=float, required=True)
    query.add_argument("--radius", type=float, required=True,
                       help="radius in km")
    query.add_argument("--keywords", nargs="+", required=True)
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--method", choices=("sum", "max"), default="max")
    query.add_argument("--semantics", choices=("and", "or"), default="or")
    query.add_argument("--trace", default="", metavar="FILE",
                       help="write tracing spans to FILE as JSON lines")
    query.set_defaults(func=_cmd_query)

    profile = commands.add_parser(
        "profile",
        help="run one query with tracing on; print span tree + metrics")
    profile.add_argument("deployment", nargs="?", default="",
                         help="saved deployment directory")
    profile.add_argument("--corpus", default="",
                         help="build from this corpus file instead")
    profile.add_argument("--synthetic", action="store_true",
                         help="build from a generated mini-corpus")
    profile.add_argument("--users", type=int, default=200,
                         help="synthetic corpus users (with --synthetic)")
    profile.add_argument("--roots", type=int, default=1000,
                         help="synthetic corpus root tweets (with --synthetic)")
    profile.add_argument("--seed", type=int, default=42)
    profile.add_argument("--lat", type=float, default=None)
    profile.add_argument("--lon", type=float, default=None)
    profile.add_argument("--radius", type=float, default=20.0,
                         help="radius in km")
    profile.add_argument("--keywords", nargs="+", required=True)
    profile.add_argument("--k", type=int, default=10)
    profile.add_argument("--method", choices=("sum", "max"), default="max")
    profile.add_argument("--semantics", choices=("and", "or"), default="or")
    profile.add_argument("--prometheus", action="store_true",
                         help="dump metrics in Prometheus text format")
    profile.add_argument("--trace", default="", metavar="FILE",
                         help="also write the spans to FILE as JSON lines")
    profile.set_defaults(func=_cmd_profile)

    explain = commands.add_parser(
        "explain",
        help="print the physical operator plan for an execution path")
    explain.add_argument("--method",
                         choices=("sum", "max", "baseline", "distributed",
                                  "federated", "all"),
                         default="all",
                         help="which execution path to explain")
    explain.add_argument("--aggregate", choices=("sum", "max"), default="sum",
                         help="keyword aggregate for baseline/distributed/"
                              "federated paths")
    explain.add_argument("--semantics", choices=("and", "or"), default="or")
    explain.add_argument("--no-pruning", action="store_true",
                         help="show the max path without upper-bound pruning")
    explain.add_argument("--kernels", choices=("scalar", "batched"),
                         default="scalar",
                         help="operator kernel selection for the sum/max "
                              "pipelines (batched = columnar fused ops)")
    explain.add_argument("--temporal", action="store_true",
                         help="include the temporal clipping stage")
    explain.set_defaults(func=_cmd_explain)

    stats = commands.add_parser("stats", help="corpus statistics")
    stats.add_argument("corpus")
    stats.add_argument("--top", type=int, default=10)
    stats.set_defaults(func=_cmd_stats)

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures")
    experiments.add_argument("--small", action="store_true")
    experiments.add_argument("--trace", default="", metavar="FILE",
                             help="trace the full run; write spans to FILE "
                                  "as JSON lines (can be large)")
    experiments.set_defaults(func=_cmd_experiments)

    bench = commands.add_parser(
        "bench",
        help="benchmark flat vs block postings on the paper workloads")
    bench.add_argument("--users", type=int, default=400,
                       help="synthetic corpus users")
    bench.add_argument("--roots", type=int, default=2000,
                       help="synthetic corpus root tweets")
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--queries", type=int, default=12,
                       help="queries per workload")
    bench.add_argument("--radius", type=float, default=20.0,
                       help="query radius (km)")
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument("--block-size", type=int, default=128,
                       help="postings entries per block")
    bench.add_argument("--output", default="", metavar="FILE",
                       help="write the JSON report to FILE "
                            "(e.g. BENCH_query.json)")
    bench.add_argument("--overhead-rounds", type=int, default=3,
                       help="rounds for the telemetry-overhead measurement "
                            "(0 disables it)")
    bench.add_argument("--max-overhead", type=float, default=1.05,
                       help="fail when enabled/disabled latency ratio "
                            "exceeds this budget")
    bench.add_argument("--matrix", action="store_true",
                       help="run the scalar-vs-batched kernel matrix "
                            "instead of the flat-vs-block bench")
    bench.add_argument("--smoke", action="store_true",
                       help="matrix: use the fast CI grid (latencies not "
                            "comparable to the committed report)")
    bench.add_argument("--list-cells", action="store_true",
                       help="matrix: print the grid's cell ids and exit")
    bench.add_argument("--cell", default="", metavar="ID",
                       help="matrix: run only this cell "
                            "(see --list-cells)")
    bench.add_argument("--diff", default=None, metavar="FILE", nargs="?",
                       const="BENCH_matrix.json",
                       help="matrix: report speedup drift against a "
                            "committed report (default BENCH_matrix.json)")
    bench.set_defaults(func=_cmd_bench)

    ingest = commands.add_parser(
        "ingest",
        help="stream posts through the real-time write path "
             "(WAL + memtable + flush)")
    ingest.add_argument("directory", help="ingest directory (created or "
                                          "recovered if it exists)")
    ingest.add_argument("--corpus", default="", metavar="FILE",
                        help="JSON-lines posts file; omitted = synthetic")
    ingest.add_argument("--users", type=int, default=200,
                        help="synthetic corpus users")
    ingest.add_argument("--roots", type=int, default=1000,
                        help="synthetic corpus root tweets")
    ingest.add_argument("--seed", type=int, default=42)
    ingest.add_argument("--flush-posts", type=int, default=1024,
                        help="memtable post count that triggers a flush")
    ingest.add_argument("--sync-every", type=int, default=1,
                        help="fsync once per N appends (group commit)")
    ingest.add_argument("--flush", action="store_true",
                        help="force a final flush before exiting")
    ingest.add_argument("--json", action="store_true",
                        help="emit the service status as JSON")
    ingest.set_defaults(func=_cmd_ingest)

    ingest_status = commands.add_parser(
        "ingest-status",
        help="inspect an ingest directory without opening it")
    ingest_status.add_argument("directory")
    ingest_status.add_argument("--json", action="store_true")
    ingest_status.set_defaults(func=_cmd_ingest_status)

    compact = commands.add_parser(
        "compact",
        help="drive background compaction of an ingest directory to "
             "quiescence")
    compact.add_argument("directory", help="ingest directory (opened, "
                                           "recovered if needed)")
    compact.add_argument("--dry-run", action="store_true",
                         help="show the tier shape, debt and next plan "
                              "without merging anything")
    compact.add_argument("--mode", choices=["tiered", "leveled"],
                         default="tiered")
    compact.add_argument("--min-inputs", type=int, default=4,
                         help="tier members that trigger a merge")
    compact.add_argument("--max-inputs", type=int, default=8,
                         help="most generations merged at once")
    compact.add_argument("--max-steps", type=int, default=10_000,
                         help="abort if quiescence takes more steps")
    compact.add_argument("--json", action="store_true")
    compact.set_defaults(func=_cmd_compact)

    ingest_bench = commands.add_parser(
        "ingest-bench",
        help="mixed workload bench: query latency while appends land")
    ingest_bench.add_argument("--users", type=int, default=300,
                              help="synthetic corpus users")
    ingest_bench.add_argument("--roots", type=int, default=1500,
                              help="synthetic corpus root tweets")
    ingest_bench.add_argument("--seed", type=int, default=42)
    ingest_bench.add_argument("--queries", type=int, default=24)
    ingest_bench.add_argument("--appends-per-query", type=int, default=8)
    ingest_bench.add_argument("--flush-posts", type=int, default=400)
    ingest_bench.add_argument("--sync-every", type=int, default=1)
    ingest_bench.add_argument("--radius", type=float, default=20.0)
    ingest_bench.add_argument("--k", type=int, default=10)
    ingest_bench.add_argument("--directory", default="", metavar="DIR",
                              help="run against DIR instead of a "
                                   "temporary directory (kept afterwards)")
    ingest_bench.add_argument("--telemetry", action="store_true",
                              help="run with the continuous telemetry "
                                   "runtime on; attach its status and "
                                   "the health verdict to the report")
    ingest_bench.add_argument("--output", default="", metavar="FILE",
                              help="write the JSON report to FILE "
                                   "(e.g. BENCH_ingest.json)")
    ingest_bench.set_defaults(func=_cmd_ingest_bench)

    serve_bench = commands.add_parser(
        "serve-bench",
        help="serving bench: worker scaling, overload shedding, result "
             "cache under mixed ingest+query traffic")
    serve_bench.add_argument("--users", type=int, default=300,
                             help="synthetic corpus users")
    serve_bench.add_argument("--roots", type=int, default=1500,
                             help="synthetic corpus root tweets")
    serve_bench.add_argument("--seed", type=int, default=42)
    serve_bench.add_argument("--duration", type=float, default=2.5,
                             help="seconds per traffic phase")
    serve_bench.add_argument("--clients", type=int, default=8,
                             help="closed-loop client threads")
    serve_bench.add_argument("--smoke", action="store_true",
                             help="fast CI path: tiny corpus and "
                                  "sub-second phases, same report schema")
    serve_bench.add_argument("--directory", default="", metavar="DIR",
                             help="run against DIR instead of a "
                                  "temporary directory (kept afterwards)")
    serve_bench.add_argument("--output", default="", metavar="FILE",
                             help="write the JSON report to FILE "
                                  "(e.g. BENCH_serve.json)")
    serve_bench.set_defaults(func=_cmd_serve_bench)

    serve = commands.add_parser(
        "serve",
        help="stand up the serving stack and drive demo traffic")
    serve.add_argument("--users", type=int, default=200,
                       help="synthetic corpus users")
    serve.add_argument("--roots", type=int, default=1000,
                       help="synthetic corpus root tweets")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--radius", type=float, default=20.0)
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--flush-posts", type=int, default=400)
    serve.add_argument("--workers", type=int, default=4,
                       help="serving worker threads")
    serve.add_argument("--clients", type=int, default=8,
                       help="closed-loop clients (when --rate is 0)")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="open-loop arrival rate in qps "
                            "(0 = closed loop)")
    serve.add_argument("--duration", type=float, default=5.0,
                       help="traffic duration in seconds")
    serve.add_argument("--timeout", type=float, default=5.0,
                       help="per-query deadline in seconds")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission queue bound")
    serve.add_argument("--delay-budget-ms", type=float, default=500.0,
                       help="estimated queue delay beyond which arrivals "
                            "are shed")
    serve.add_argument("--ingest-rate", type=float, default=50.0,
                       help="background appends per second (0 = none)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the plan-keyed result cache")
    serve.set_defaults(func=_cmd_serve)

    top = commands.add_parser(
        "top",
        help="live terminal dashboard over a mixed ingest+query workload")
    top.add_argument("--users", type=int, default=200,
                     help="synthetic corpus users")
    top.add_argument("--roots", type=int, default=1000,
                     help="synthetic corpus root tweets")
    top.add_argument("--seed", type=int, default=42)
    top.add_argument("--radius", type=float, default=20.0,
                     help="query radius (km)")
    top.add_argument("--k", type=int, default=10)
    top.add_argument("--flush-posts", type=int, default=400,
                     help="memtable post count that triggers a flush")
    top.add_argument("--frames", type=int, default=0,
                     help="render exactly N frames (0 = derive from "
                          "--duration / --interval)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between frames")
    top.add_argument("--duration", type=float, default=10.0,
                     help="total run time when --frames is 0")
    top.add_argument("--recent", type=float, default=30.0,
                     help="trailing window (seconds) for rates/quantiles")
    top.add_argument("--slow-query-ms", type=float, default=250.0,
                     help="slow-query capture threshold")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen")
    top.add_argument("--serve-workers", type=int, default=2,
                     help="serving pool size behind the dashboard's "
                          "query traffic")
    top.set_defaults(func=_cmd_top)

    contract = commands.add_parser(
        "perf-contract",
        help="check committed bench headlines against the perf baseline")
    contract.add_argument("--query-report", default="BENCH_query.json",
                          metavar="FILE")
    contract.add_argument("--ingest-report", default="BENCH_ingest.json",
                          metavar="FILE")
    contract.add_argument("--matrix-report", default="BENCH_matrix.json",
                          metavar="FILE")
    contract.add_argument("--serve-report", default="BENCH_serve.json",
                          metavar="FILE")
    contract.add_argument("--baseline",
                          default="benchmarks/baselines/perf_contract.json",
                          metavar="FILE")
    contract.add_argument("--write-baseline", action="store_true",
                          help="rewrite the baseline from the current "
                               "reports")
    contract.add_argument("--json", action="store_true",
                          help="emit headlines + violations as JSON")
    contract.set_defaults(func=_cmd_perf_contract)

    check = commands.add_parser(
        "check",
        help="run project lint rules and/or deep invariant validation")
    check.add_argument("paths", nargs="*", default=["src", "tests"],
                       help="files or directories to lint "
                            "(default: src tests)")
    check.add_argument("--rules", action="store_true",
                       help="run the static lint rules (default when "
                            "--deep is not given)")
    check.add_argument("--deep", action="store_true",
                       help="build a synthetic index and validate its "
                            "structural invariants")
    check.add_argument("--concurrency", action="store_true",
                       help="run the RL100-family concurrency rules plus "
                            "the runtime lock sanitizer smoke workload")
    check.add_argument("--json", action="store_true",
                       help="emit a JSON report instead of text "
                            "(alias for --format json)")
    check.add_argument("--format", choices=("text", "json", "sarif"),
                       default=None,
                       help="report format; sarif emits a SARIF 2.1.0 "
                            "log for CI annotation upload")
    check.add_argument("--baseline", default="lint-baseline.json",
                       metavar="FILE",
                       help="baseline of forgiven findings "
                            "(default: lint-baseline.json)")
    check.add_argument("--no-baseline", action="store_true",
                       help="ignore the baseline file")
    check.add_argument("--write-baseline", action="store_true",
                       help="rewrite the baseline to forgive all current "
                            "findings")
    check.add_argument("--list-rules", action="store_true",
                       help="list the registered rules and exit")
    check.add_argument("--verbose", action="store_true",
                       help="also show baselined findings")
    check.add_argument("--users", type=int, default=150,
                       help="synthetic corpus users (with --deep)")
    check.add_argument("--roots", type=int, default=700,
                       help="synthetic corpus root tweets (with --deep)")
    check.add_argument("--seed", type=int, default=42)
    check.set_defaults(func=_cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "query" and not args.deployment and not args.corpus:
        parser.error("query needs a deployment directory or --corpus")
    if (args.command == "profile" and not args.deployment
            and not args.corpus and not args.synthetic):
        parser.error(
            "profile needs a deployment directory, --corpus or --synthetic")
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
