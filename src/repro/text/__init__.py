"""Text-analysis substrate: tokenizer, stop words and Porter stemmer.

Implements the text normalisation applied by Algorithm 2 of the paper
("tokenized ... stemmed ... stop words are filtered out").
"""

from .analyzer import DEFAULT_ANALYZER, Analyzer
from .porter import PorterStemmer, stem
from .stopwords import ENGLISH_STOPWORDS, is_stopword
from .tokenizer import tokenize

__all__ = [
    "DEFAULT_ANALYZER",
    "Analyzer",
    "ENGLISH_STOPWORDS",
    "PorterStemmer",
    "is_stopword",
    "stem",
    "tokenize",
]
