"""English stop-word list.

The paper assumes a vocabulary "that excludes popular stop words (e.g.,
this and that)" (Definition 1) and filters stop words during tokenization
in the index-construction mapper (Algorithm 2).  This is the classic
Van Rijsbergen / SMART-derived list commonly shipped with IR systems,
augmented with a handful of microblog artefacts (``rt``, ``via``, ``amp``).
"""

from __future__ import annotations

from typing import FrozenSet

ENGLISH_STOPWORDS: FrozenSet[str] = frozenset("""
a about above after again against all am an and any are aren arent as at
be because been before being below between both but by
can cannot cant could couldn couldnt
did didn didnt do does doesn doesnt doing don dont down during
each
few for from further
had hadn hadnt has hasn hasnt have haven havent having he hed hell hes her
here heres hers herself him himself his how hows
i id ill im ive if in into is isn isnt it its itself
just
lets
me more most mustn mustnt my myself
no nor not now
of off on once only or other ought our ours ourselves out over own
same shan shant she shed shell shes should shouldn shouldnt so some such
than that thats the their theirs them themselves then there theres these
they theyd theyll theyre theyve this those through to too
under until up
very
was wasn wasnt we wed well were weren werent weve what whats when whens
where wheres which while who whos whom why whys will with won wont would
wouldn wouldnt
you youd youll youre youve your yours yourself yourselves
rt via amp http https www
""".split())


def is_stopword(word: str) -> bool:
    """True when ``word`` (already lowercased) is a stop word."""
    return word in ENGLISH_STOPWORDS
