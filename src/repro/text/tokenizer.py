"""Tokenization of social-media post text.

Algorithm 2 of the paper: "the content of each post is tokenized and each
term is stemmed. Stop words are filtered out during the tokenization
process."  The tokenizer here is microblog-aware: it strips URLs and
user mentions, keeps hashtag bodies, lowercases, and splits on
non-alphanumeric boundaries.
"""

from __future__ import annotations

import re
from typing import Iterator, List

_URL_RE = re.compile(r"https?://\S+|www\.\S+", re.IGNORECASE)
_MENTION_RE = re.compile(r"@\w+")
_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")
_APOSTROPHE_RE = re.compile(r"'[a-z]+$")


def tokenize(text: str) -> List[str]:
    """Split raw post text into lowercase word tokens.

    URLs and @-mentions are removed entirely; hashtags contribute their
    word body (``#toronto`` -> ``toronto``); possessive/clitic suffixes
    (``marriott's`` -> ``marriott``) are dropped; purely numeric tokens
    are kept (they can be meaningful, e.g. postcodes).
    """
    text = _URL_RE.sub(" ", text)
    text = _MENTION_RE.sub(" ", text)
    tokens = []
    for match in _TOKEN_RE.finditer(text.lower()):
        token = _APOSTROPHE_RE.sub("", match.group(0))
        if token:
            tokens.append(token)
    return tokens


def iter_tokens(text: str) -> Iterator[str]:
    """Streaming variant of :func:`tokenize`."""
    text = _URL_RE.sub(" ", text)
    text = _MENTION_RE.sub(" ", text)
    for match in _TOKEN_RE.finditer(text.lower()):
        token = _APOSTROPHE_RE.sub("", match.group(0))
        if token:
            yield token
