"""The Porter stemming algorithm, implemented from scratch.

Algorithm 2 of the paper stems each term during index construction ("each
term is stemmed").  This is a faithful implementation of Porter's original
1980 algorithm ("An algorithm for suffix stripping", *Program* 14(3)),
steps 1a through 5b, without the later "Porter2" revisions.
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    """Porter's consonant test: a, e, i, o, u are vowels; y is a consonant
    only when it follows a vowel-position character."""
    char = word[i]
    if char in _VOWELS:
        return False
    if char == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The measure m of a stem: the number of VC (vowel-consonant) blocks
    in its [C](VC)^m[V] form."""
    m = 0
    i = 0
    n = len(stem)
    # Skip initial consonant run.
    while i < n and _is_consonant(stem, i):
        i += 1
    while i < n:
        # Vowel run.
        while i < n and not _is_consonant(stem, i):
            i += 1
        if i >= n:
            break
        # Consonant run terminates one VC block.
        while i < n and _is_consonant(stem, i):
            i += 1
        m += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (len(word) >= 2 and word[-1] == word[-2]
            and _is_consonant(word, len(word) - 1))


def _ends_cvc(word: str) -> bool:
    """True for a consonant-vowel-consonant ending where the final
    consonant is not w, x or y (Porter's *o condition)."""
    if len(word) < 3:
        return False
    n = len(word)
    return (_is_consonant(word, n - 3)
            and not _is_consonant(word, n - 2)
            and _is_consonant(word, n - 1)
            and word[-1] not in "wxy")


def _replace_suffix(word: str, suffix: str, replacement: str, min_measure: int) -> str:
    """If ``word`` ends with ``suffix`` and the remaining stem has measure
    greater than ``min_measure``, swap the suffix; otherwise return ``word``."""
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
)

_STEP3_RULES = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
)

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _step_2(word: str) -> str:
    for suffix, replacement in _STEP2_RULES:
        if word.endswith(suffix):
            return _replace_suffix(word, suffix, replacement, 0)
    return word


def _step_3(word: str) -> str:
    for suffix, replacement in _STEP3_RULES:
        if word.endswith(suffix):
            return _replace_suffix(word, suffix, replacement, 0)
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    if word.endswith("ion"):
        stem = word[:-3]
        if stem and stem[-1] in "st" and _measure(stem) > 1:
            return stem
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word: str) -> str:
    if word.endswith("ll") and _measure(word) > 1:
        return word[:-1]
    return word


def stem(word: str) -> str:
    """Stem a single lowercase word with the Porter algorithm.

    Words of length <= 2 are returned unchanged, per Porter's original
    guard.
    """
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _step_2(word)
    word = _step_3(word)
    word = _step_4(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word


class PorterStemmer:
    """Object wrapper around :func:`stem` with a memo cache.

    Social-media corpora repeat terms heavily (Zipf), so caching the
    stem of each distinct surface form removes nearly all stemming cost
    from index construction.
    """

    def __init__(self, cache_size: int = 65536) -> None:
        self._cache: dict = {}
        self._cache_size = cache_size

    def stem(self, word: str) -> str:
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        result = stem(word)
        if len(self._cache) < self._cache_size:
            self._cache[word] = result
        return result

    def __call__(self, word: str) -> str:
        return self.stem(word)
