"""The full text-analysis pipeline: tokenize -> stop-filter -> stem.

This is the single entry point used by index construction (Algorithm 2),
query parsing, and the data generator, so that query keywords and indexed
terms always pass through identical normalisation.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from .porter import PorterStemmer
from .stopwords import is_stopword
from .tokenizer import tokenize


class Analyzer:
    """Configurable analysis pipeline producing normalised terms.

    Parameters
    ----------
    use_stemming:
        Apply the Porter stemmer to each surviving token (paper default).
    use_stopwords:
        Drop stop words before stemming (paper default).
    min_token_length:
        Tokens shorter than this are dropped (single letters are noise in
        microblog text).
    """

    def __init__(self, use_stemming: bool = True, use_stopwords: bool = True,
                 min_token_length: int = 2,
                 stemmer: Optional[PorterStemmer] = None) -> None:
        self.use_stemming = use_stemming
        self.use_stopwords = use_stopwords
        self.min_token_length = min_token_length
        self._stemmer = stemmer if stemmer is not None else PorterStemmer()

    def analyze(self, text: str) -> List[str]:
        """Normalise raw text to a list of terms (order preserved,
        duplicates kept — the bag model of Definition 6)."""
        terms: List[str] = []
        for token in tokenize(text):
            if len(token) < self.min_token_length:
                continue
            if self.use_stopwords and is_stopword(token):
                continue
            if self.use_stemming:
                token = self._stemmer.stem(token)
            if token:
                terms.append(token)
        return terms

    def term_frequencies(self, text: str) -> Dict[str, int]:
        """Term -> frequency map of the analysed text: the associative
        array ``H`` of Algorithm 2."""
        return dict(Counter(self.analyze(text)))

    def analyze_query_keywords(self, keywords) -> List[str]:
        """Normalise query keywords through the same pipeline, preserving
        order and de-duplicating (``q.W`` is a set, Definition 6)."""
        seen = set()
        result: List[str] = []
        for keyword in keywords:
            for term in self.analyze(keyword):
                if term not in seen:
                    seen.add(term)
                    result.append(term)
        return result


#: Shared default pipeline.  Modules that need one-off analysis use this
#: instance so the stemmer cache is shared process-wide.
DEFAULT_ANALYZER = Analyzer()
