"""Tweet threads and popularity (Section III-A, Algorithm 1).

A tweet thread is the tree of replies/forwards rooted at a tweet
(Definition 3).  Popularity (Definition 4) is

    phi(p) = epsilon                      if the thread is only the root
    phi(p) = sum_{i=2..n} |T_i| * (1/i)   otherwise

where ``|T_i|`` is the number of tweets at level ``i`` (the root is level
1).  Construction runs against the metadata database exactly as
Algorithm 1 does — one ``rsid`` index lookup per expanded tweet, bounded
by the thread depth ``d`` "since constructing a complete tweet thread can
incur quite a number of I/Os".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs
from ..storage.metadata import MetadataDatabase

#: Paper defaults: epsilon = 0.1 (Section VI-B1); the depth bound is the
#: practical cap Algorithm 1 mentions (the paper does not publish its
#: value; 6 keeps >99 % of branching-process cascades complete).
DEFAULT_EPSILON = 0.1
DEFAULT_DEPTH = 6


@dataclass
class TweetThread:
    """A materialised tweet thread: the root sid and the sids per level.

    ``levels[0]`` is the root level (level 1 in the paper's numbering).
    """

    root: int
    levels: List[List[int]] = field(default_factory=list)

    @property
    def height(self) -> int:
        """``T.h``: number of non-empty levels."""
        return len(self.levels)

    @property
    def size(self) -> int:
        return sum(len(level) for level in self.levels)

    def level_sizes(self) -> List[int]:
        return [len(level) for level in self.levels]

    def popularity(self, epsilon: float = DEFAULT_EPSILON) -> float:
        """Definition 4 evaluated on this materialised thread."""
        if self.height <= 1:
            return epsilon
        total = 0.0
        for index, level in enumerate(self.levels[1:], start=2):
            total += len(level) / index
        return total


class ThreadBuilder:
    """Constructs tweet threads and computes their popularity against a
    :class:`~repro.storage.metadata.MetadataDatabase`.

    A per-instance memo caches popularity by root sid: thread popularity
    is query-independent (the keyword filter applies only to the *root*),
    so within one query — and across queries in one session — repeated
    roots cost no extra I/O.  Set ``cache=False`` to measure raw I/O
    behaviour.
    """

    def __init__(self, database: MetadataDatabase,
                 depth: int = DEFAULT_DEPTH,
                 epsilon: float = DEFAULT_EPSILON,
                 cache: bool = True) -> None:
        if depth < 1:
            raise ValueError(f"thread depth must be >= 1: {depth}")
        self._db = database
        self.depth = depth
        self.epsilon = epsilon
        self._cache: Optional[Dict[int, float]] = {} if cache else None
        self.threads_built = 0

    def build(self, root_sid: int) -> TweetThread:
        """Materialise the thread rooted at ``root_sid`` down to the
        configured depth (Algorithm 1's traversal, keeping the tweets)."""
        with obs.trace("query.thread_build", root=root_sid) as span:
            thread = TweetThread(root=root_sid, levels=[[root_sid]])
            frontier = [root_sid]
            for _level in range(1, self.depth):
                next_level: List[int] = []
                for sid in frontier:
                    for record in self._db.replies_to(sid):
                        next_level.append(record.sid)
                if not next_level:
                    break
                thread.levels.append(next_level)
                frontier = next_level
            self.threads_built += 1
            span.set(size=thread.size, height=thread.height)
        obs.inc("query.threads_built")
        return thread

    def popularity(self, root_sid: int) -> float:
        """Algorithm 1: construct the thread (level by level, one rsid
        lookup per tweet) and return its popularity score."""
        if self._cache is not None:
            cached = self._cache.get(root_sid)
            if cached is not None:
                return cached
        score = self.build(root_sid).popularity(self.epsilon)
        if self._cache is not None:
            self._cache[root_sid] = score
        return score

    def clear_cache(self) -> None:
        if self._cache is not None:
            self._cache.clear()


class DatasetThreadBuilder:
    """Thread construction over an in-memory :class:`~repro.core.model.Dataset`
    (no storage engine): used by tests as an oracle, by the effectiveness
    experiments, and for offline pre-computation of hot-keyword bounds.

    The reply mapping is built once; lookups are then O(children).
    """

    def __init__(self, dataset, depth: int = DEFAULT_DEPTH,
                 epsilon: float = DEFAULT_EPSILON) -> None:
        if depth < 1:
            raise ValueError(f"thread depth must be >= 1: {depth}")
        self.depth = depth
        self.epsilon = epsilon
        self._children: Dict[int, List[int]] = {}
        for post in dataset.posts.values():
            if post.rsid is not None:
                self._children.setdefault(post.rsid, []).append(post.sid)

    def build(self, root_sid: int) -> TweetThread:
        thread = TweetThread(root=root_sid, levels=[[root_sid]])
        frontier = [root_sid]
        for _level in range(1, self.depth):
            next_level: List[int] = []
            for sid in frontier:
                next_level.extend(self._children.get(sid, []))
            if not next_level:
                break
            thread.levels.append(next_level)
            frontier = next_level
        return thread

    def popularity(self, root_sid: int) -> float:
        return self.build(root_sid).popularity(self.epsilon)
