"""Temporal extensions to TkLUS queries (the paper's first future-work
direction, Section VIII):

    "we can define a query for a particular period of time and only
    search the tweets that are posted in that period. Also, we can
    still search all tweets but give priority to more recent tweets
    (and their users) in ranking."

Both are implemented:

* a **time window** ``[time_start, time_end]`` restricts candidates to
  tweets posted in the period.  Because tweet ids are timestamps and
  postings lists are tid-sorted, the window is applied directly on the
  postings with a binary search — no metadata I/O for out-of-window
  tweets;
* a **recency half-life** multiplies each tweet's keyword relevance by
  ``0.5 ** ((t_ref - t) / half_life)`` where ``t_ref`` is the window end
  (or the newest tweet considered), prioritising recent tweets and
  their users.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .errors import QueryError


@dataclass(frozen=True)
class TimeWindow:
    """An inclusive tweet-timestamp interval."""

    start: Optional[int] = None  # None = unbounded
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.start is not None and self.end is not None
                and self.start > self.end):
            raise QueryError(
                f"empty time window: start {self.start} > end {self.end}")

    @property
    def unbounded(self) -> bool:
        return self.start is None and self.end is None

    def contains(self, timestamp: int) -> bool:
        if self.start is not None and timestamp < self.start:
            return False
        if self.end is not None and timestamp > self.end:
            return False
        return True

    def clip_postings(self, postings: Sequence[Tuple[int, int]]
                      ) -> Sequence[Tuple[int, int]]:
        """Restrict a tid-sorted postings sequence to the window.

        Lazy block views (anything exposing a ``clip`` method, i.e.
        :class:`repro.index.blocks.BlockPostingsReader`) narrow through
        their skip table — whole blocks outside the window are discarded
        without decoding.  Plain lists fall back to binary search on the
        materialised tids (tweet ids are timestamps either way).
        """
        clip = getattr(postings, "clip", None)
        if clip is not None:
            if self.unbounded:
                return postings
            return clip(self.start, self.end)
        if self.unbounded or not postings:
            return list(postings)
        tids = [tid for tid, _tf in postings]
        lo = 0 if self.start is None else bisect.bisect_left(tids, self.start)
        hi = len(tids) if self.end is None else bisect.bisect_right(tids, self.end)
        return list(postings[lo:hi])


@dataclass(frozen=True)
class RecencyModel:
    """Exponential recency decay on keyword relevance.

    ``weight(t) = 0.5 ** ((reference - t) / half_life)`` — a tweet
    posted ``half_life`` timestamp units before the reference contributes
    half the relevance of one posted at the reference.
    """

    half_life: float
    reference: Optional[int] = None  # None = newest tweet in the data set

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise QueryError(f"half_life must be positive: {self.half_life}")

    def weight(self, timestamp: int, reference: int) -> float:
        age = max(0, reference - timestamp)
        return 0.5 ** (age / self.half_life)

    def resolve_reference(self, newest_candidate: int) -> int:
        return self.reference if self.reference is not None else newest_candidate


@dataclass(frozen=True)
class TemporalSpec:
    """Bundle of temporal options attached to a query."""

    window: TimeWindow = field(default_factory=TimeWindow)
    recency: Optional[RecencyModel] = None

    @property
    def is_trivial(self) -> bool:
        return self.window.unbounded and self.recency is None


NO_TEMPORAL = TemporalSpec()
