"""Scoring tweets and users (Section III, Definitions 4-10).

All functions take a :class:`ScoringConfig` carrying the paper's tuning
parameters: the keyword/distance mixing weight ``alpha`` (0.5 in the
experiments, "so that the two factors are considered as having the same
impact"), the keyword-relevance normaliser ``N`` ("empirically set around
40"), and the singleton-thread smoothing ``epsilon`` (0.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from ..geo.distance import DEFAULT_METRIC, Metric

Coordinate = Tuple[float, float]


@dataclass(frozen=True)
class ScoringConfig:
    """Paper parameters for scoring (Section VI-B1 defaults)."""

    alpha: float = 0.5
    keyword_normalizer: float = 40.0
    epsilon: float = 0.1
    #: which kernel family the planner should select: "scalar" (the
    #: per-element reference pipeline), "batched" (columnar operators),
    #: or "auto" (batched wherever it exists — results are bitwise
    #: identical either way, so this is purely a performance knob).
    kernels: str = "scalar"

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1]: {self.alpha}")
        if self.keyword_normalizer <= 0:
            raise ValueError(f"N must be positive: {self.keyword_normalizer}")
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be non-negative: {self.epsilon}")
        if self.kernels not in ("scalar", "batched", "auto"):
            raise ValueError("kernels must be 'scalar', 'batched' or "
                             f"'auto': {self.kernels!r}")

    def resolved_kernels(self) -> str:
        """The concrete kernel family ("auto" resolves to batched: the
        columnar layer always has a working backend — numpy when
        importable and calibrated, the stdlib fallback otherwise)."""
        return "batched" if self.kernels == "auto" else self.kernels


DEFAULT_CONFIG = ScoringConfig()


def thread_popularity(level_sizes: Sequence[int],
                      epsilon: float = DEFAULT_CONFIG.epsilon) -> float:
    """Definition 4 from raw level sizes (level_sizes[0] is the root level).

    >>> thread_popularity([1, 3, 4, 2])  # the paper's Figure 2 example
    3.3333333333333335
    """
    if len(level_sizes) <= 1:
        return epsilon
    return sum(size / index for index, size in enumerate(level_sizes[1:], start=2))


def distance_score(post_location: Coordinate, query_location: Coordinate,
                   radius_km: float, metric: Metric = DEFAULT_METRIC) -> float:
    """Definition 5: ``(r - ||q.l, p.l||) / r`` within radius, else 0.

    Range [0, 1]; 1 at the query point, 0 on/outside the circle edge.
    """
    distance = metric(query_location, post_location)
    if distance > radius_km:
        return 0.0
    return (radius_km - distance) / radius_km


def keyword_match_count(post_bag: Dict[str, int],
                        query_keywords: FrozenSet[str]) -> int:
    """``|q.W ∩ p.W|`` under the paper's bag model: q.W is a set, p.W a
    multiset, so a query keyword occurring twice in the post counts twice
    (Definition 6's "spicy restaurant" example)."""
    return sum(post_bag.get(keyword, 0) for keyword in query_keywords)


def keyword_relevance(post_bag: Dict[str, int], query_keywords: FrozenSet[str],
                      popularity: float,
                      config: ScoringConfig = DEFAULT_CONFIG) -> float:
    """Definition 6: ``rho(p, q) = (|q.W ∩ p.W| / N) * phi(p)``.

    May exceed 1 — the paper allows this deliberately.
    """
    matches = keyword_match_count(post_bag, query_keywords)
    return (matches / config.keyword_normalizer) * popularity


def sum_score(relevances: Iterable[float]) -> float:
    """Definition 7: user keyword relevance as the sum over the user's
    (relevant) tweets."""
    return sum(relevances)


def max_score(relevances: Iterable[float]) -> float:
    """Definition 8: user keyword relevance as the maximum over the
    user's tweets (0.0 for a user with no relevant tweets)."""
    return max(relevances, default=0.0)


def user_distance_score(post_locations: Sequence[Coordinate],
                        query_location: Coordinate, radius_km: float,
                        metric: Metric = DEFAULT_METRIC) -> float:
    """Definition 9: the average of the user's per-post distance scores.

    The average runs over ``P_u`` — all the user's posts passed in, with
    posts outside the radius contributing 0.
    """
    if not post_locations:
        return 0.0
    total = sum(distance_score(location, query_location, radius_km, metric)
                for location in post_locations)
    return total / len(post_locations)


def user_score(keyword_part: float, distance_part: float,
               config: ScoringConfig = DEFAULT_CONFIG) -> float:
    """Definition 10: ``score(u, q) = alpha * rho(u, q) + (1 - alpha) *
    delta(u, q)``."""
    return config.alpha * keyword_part + (1.0 - config.alpha) * distance_part


def upper_bound_popularity(max_fanout: int, depth: int) -> float:
    """Definition 11: the global upper bound on any thread's popularity.

    ``phi_m = sum_{i=2..n} t_m^(i-1) / i`` for a thread of depth ``n``
    whose every tweet has the maximum observed fanout ``t_m``: level ``i``
    can hold at most ``t_m^(i-1)`` tweets.  (The paper's Definition 11
    writes ``|t_m|`` per level; interpreting it as the per-node fanout
    compounds across levels, which is the sound bound — with the paper's
    literal per-level reading the bound would be incorrect for deep
    threads.  For depth 2 both readings coincide.)
    """
    if max_fanout <= 0:
        return 0.0
    total = 0.0
    width = 1
    for level in range(2, depth + 1):
        width *= max_fanout
        total += width / level
    return total


def upper_bound_popularity_literal(max_fanout: int, depth: int) -> float:
    """Definition 11 read literally: ``phi_m = sum_{i=2..n} t_m / i`` with
    ``t_m`` tweets at *every* level.

    Much tighter than :func:`upper_bound_popularity` but only a heuristic
    bound — a thread can exceed it whenever fanout compounds over more
    than one level.  Provided for the ablation benchmark comparing the
    two readings; the sound compounding bound is the library default.
    """
    if max_fanout <= 0:
        return 0.0
    return sum(max_fanout / level for level in range(2, depth + 1))


def upper_bound_user_score(popularity_bound: float, max_matches: int,
                           config: ScoringConfig = DEFAULT_CONFIG) -> float:
    """The pruning bound of Algorithm 5, line 18: combine the popularity
    upper bound (via Definition 6 with ``max_matches`` keyword hits) with
    the maximum possible distance score of 1."""
    keyword_bound = (max_matches / config.keyword_normalizer) * popularity_bound
    return config.alpha * keyword_bound + (1.0 - config.alpha) * 1.0
