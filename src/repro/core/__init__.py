"""The paper's core concepts: data model, tweet threads, scoring.

Sections II and III of the paper: Definition 1 (post), Definition 2
(social network), the TkLUS problem definition, tweet threads
(Definition 3), popularity (Definition 4) and the tweet/user scoring
functions (Definitions 5-11).
"""

from .errors import DatasetError, QueryError, ReproError
from .model import (
    Dataset,
    EdgeKind,
    Post,
    Semantics,
    SocialNetwork,
    TkLUSQuery,
)
from .influence import InfluenceConfig, InfluenceModel, blend_influence
from .temporal import (
    NO_TEMPORAL,
    RecencyModel,
    TemporalSpec,
    TimeWindow,
)
from .scoring import (
    DEFAULT_CONFIG,
    ScoringConfig,
    distance_score,
    keyword_match_count,
    keyword_relevance,
    max_score,
    sum_score,
    thread_popularity,
    upper_bound_popularity,
    upper_bound_user_score,
    user_distance_score,
    user_score,
)
from .thread import (
    DEFAULT_DEPTH,
    DEFAULT_EPSILON,
    DatasetThreadBuilder,
    ThreadBuilder,
    TweetThread,
)

__all__ = [
    "DEFAULT_CONFIG",
    "InfluenceConfig",
    "InfluenceModel",
    "NO_TEMPORAL",
    "RecencyModel",
    "TemporalSpec",
    "TimeWindow",
    "DEFAULT_DEPTH",
    "DEFAULT_EPSILON",
    "Dataset",
    "DatasetError",
    "DatasetThreadBuilder",
    "EdgeKind",
    "Post",
    "QueryError",
    "ReproError",
    "ScoringConfig",
    "Semantics",
    "SocialNetwork",
    "ThreadBuilder",
    "TkLUSQuery",
    "TweetThread",
    "distance_score",
    "keyword_match_count",
    "keyword_relevance",
    "max_score",
    "sum_score",
    "thread_popularity",
    "blend_influence",
    "upper_bound_popularity",
    "upper_bound_user_score",
    "user_distance_score",
    "user_score",
]
