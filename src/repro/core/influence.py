"""Social-influence scoring over the interaction graph.

Section I motivates exploiting the social network itself: "Twitter
maintains the social relationships among users, which can be exploited
to score the users for the purpose of recommending local users."  The
tweet-thread popularity of Section III captures per-conversation
influence; this module adds the *global* counterpart: a PageRank-style
influence score over Definition 2's reply/forward graph, where an
interaction from ``u1`` to ``u2`` is an endorsement of ``u2``.

:class:`InfluenceModel` computes the scores once per dataset (power
iteration, implemented from scratch); :func:`blend_influence` folds a
normalised influence term into a user's TkLUS score:

    score'(u, q) = (1 - beta) * score(u, q) + beta * influence(u)

with ``beta = 0`` recovering the paper's ranking exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from .model import Dataset, SocialNetwork


@dataclass(frozen=True)
class InfluenceConfig:
    """Power-iteration parameters."""

    damping: float = 0.85
    max_iterations: int = 100
    tolerance: float = 1e-9
    forward_weight: float = 1.5  # forwards endorse more strongly than replies

    def __post_init__(self) -> None:
        if not 0.0 < self.damping < 1.0:
            raise ValueError(f"damping must be in (0, 1): {self.damping}")
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1: {self.max_iterations}")
        if self.forward_weight <= 0:
            raise ValueError(f"forward_weight must be positive: "
                             f"{self.forward_weight}")


class InfluenceModel:
    """PageRank over the interaction graph.

    Edges point from the interacting user to the interacted-with user
    (``u1`` replies to / forwards ``u2`` ⇒ ``u1 -> u2``), weighted by
    interaction count, with forwards weighted ``forward_weight`` times a
    reply (a retweet is a stronger endorsement).  Dangling users spread
    their mass uniformly, the standard PageRank fix.
    """

    def __init__(self, network: SocialNetwork,
                 config: InfluenceConfig = InfluenceConfig()) -> None:
        self.config = config
        self._scores = self._compute(network)

    @classmethod
    def from_dataset(cls, dataset: Dataset,
                     config: InfluenceConfig = InfluenceConfig()
                     ) -> "InfluenceModel":
        return cls(dataset.network, config)

    def _out_weights(self, network: SocialNetwork
                     ) -> Dict[int, List[Tuple[int, float]]]:
        weights: Dict[int, Dict[int, float]] = {}
        for (source, target), posts in network.reply_edges.items():
            weights.setdefault(source, {})
            weights[source][target] = (weights[source].get(target, 0.0)
                                       + len(posts))
        for (source, target), posts in network.forward_edges.items():
            weights.setdefault(source, {})
            weights[source][target] = (
                weights[source].get(target, 0.0)
                + len(posts) * self.config.forward_weight)
        return {source: sorted(targets.items())
                for source, targets in weights.items()}

    def _compute(self, network: SocialNetwork) -> Dict[int, float]:
        users = sorted(network.users)
        if not users:
            return {}
        n = len(users)
        out_weights = self._out_weights(network)
        out_totals = {source: sum(w for _t, w in targets)
                      for source, targets in out_weights.items()}
        damping = self.config.damping
        rank = {uid: 1.0 / n for uid in users}
        for _iteration in range(self.config.max_iterations):
            dangling_mass = sum(rank[uid] for uid in users
                                if not out_weights.get(uid))
            base = (1.0 - damping) / n + damping * dangling_mass / n
            next_rank = {uid: base for uid in users}
            for source, targets in out_weights.items():
                share = damping * rank[source] / out_totals[source]
                for target, weight in targets:
                    next_rank[target] += share * weight
            delta = sum(abs(next_rank[uid] - rank[uid]) for uid in users)
            rank = next_rank
            if delta < self.config.tolerance:
                break
        # Normalise to [0, 1] so the blend weight is interpretable.
        peak = max(rank.values())
        if peak > 0:
            rank = {uid: value / peak for uid, value in rank.items()}
        return rank

    def influence(self, uid: int) -> float:
        """Normalised influence in [0, 1]; 0 for unknown users."""
        return self._scores.get(uid, 0.0)

    def top(self, count: int) -> List[Tuple[int, float]]:
        ordered = sorted(self._scores.items(),
                         key=lambda item: (-item[1], item[0]))
        return ordered[:count]

    def __len__(self) -> int:
        return len(self._scores)


def blend_influence(ranked_users: Iterable[Tuple[int, float]],
                    model: InfluenceModel,
                    beta: float = 0.2) -> List[Tuple[int, float]]:
    """Re-rank a TkLUS result by blending in social influence.

    ``beta = 0`` returns the input order (scores unchanged); ``beta = 1``
    ranks purely by influence.
    """
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1]: {beta}")
    blended = [
        (uid, (1.0 - beta) * score + beta * model.influence(uid))
        for uid, score in ranked_users
    ]
    blended.sort(key=lambda item: (-item[1], item[0]))
    return blended
