"""Exception hierarchy for the TkLUS library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class QueryError(ReproError):
    """Raised for malformed TkLUS queries (bad radius, empty keywords...)."""


class DatasetError(ReproError):
    """Raised for inconsistent dataset construction."""


class IndexError_(ReproError):
    """Raised for hybrid-index corruption or misuse.

    Named with a trailing underscore to avoid shadowing the builtin.
    """
