"""The social-media data model of Section II.

* :class:`Post` — Definition 1's 4-tuple ``p = (uid, t, l, W)`` plus the
  reply/forward linkage (``ruid``/``rsid``) the metadata relation carries;
* :class:`SocialNetwork` — Definition 2's directed graph with reply and
  forward edge sets and their post-label mappings;
* :class:`Dataset` — ``D = (P, U, G)``;
* :class:`TkLUSQuery` — the query ``q(l, r, W)`` with result size ``k``
  and keyword semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .errors import DatasetError, QueryError
from .temporal import NO_TEMPORAL, TemporalSpec

Coordinate = Tuple[float, float]


class EdgeKind(enum.Enum):
    """The two interaction kinds Definition 2 distinguishes."""

    REPLY = "reply"
    FORWARD = "forward"


@dataclass(frozen=True)
class Post:
    """A social media post (Definition 1) with reply/forward linkage.

    ``sid`` doubles as the timestamp ``t`` ("the tweet ID ... is
    essentially the tweet timestamp", Section IV-A).  ``words`` is the
    analysed term bag of the content; ``text`` retains the raw content for
    presentation (the user-study output lines).
    """

    sid: int
    uid: int
    location: Coordinate
    words: Tuple[str, ...]
    text: str = ""
    ruid: Optional[int] = None
    rsid: Optional[int] = None
    kind: Optional[EdgeKind] = None  # how this post references rsid, if at all

    @property
    def timestamp(self) -> int:
        return self.sid

    @property
    def is_response(self) -> bool:
        """True when this post replies to or forwards another post."""
        return self.rsid is not None

    def word_bag(self) -> Dict[str, int]:
        """Term -> occurrence count (p.W is a bag/multiset, Definition 6)."""
        bag: Dict[str, int] = {}
        for word in self.words:
            bag[word] = bag.get(word, 0) + 1
        return bag


@dataclass
class SocialNetwork:
    """Definition 2's graph ``G = (U, E_reply, l_reply, E_forward,
    l_forward)``.

    Edge label maps return the posts in which ``u1`` replies to /
    forwards ``u2``, keyed by the ``(u1, u2)`` user pair.
    """

    users: Set[int] = field(default_factory=set)
    reply_edges: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    forward_edges: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)

    def add_user(self, uid: int) -> None:
        self.users.add(uid)

    def add_interaction(self, from_uid: int, to_uid: int, post_sid: int,
                        kind: EdgeKind) -> None:
        """Record that ``from_uid`` replied to / forwarded ``to_uid`` in
        post ``post_sid``."""
        self.users.add(from_uid)
        self.users.add(to_uid)
        edges = self.reply_edges if kind is EdgeKind.REPLY else self.forward_edges
        edges.setdefault((from_uid, to_uid), []).append(post_sid)

    def l_reply(self, u1: int, u2: int) -> List[int]:
        """Posts in which ``u1`` replies to ``u2`` (Definition 2.3)."""
        return list(self.reply_edges.get((u1, u2), []))

    def l_forward(self, u1: int, u2: int) -> List[int]:
        """Posts of ``u2`` forwarded by ``u1`` (Definition 2.5)."""
        return list(self.forward_edges.get((u1, u2), []))

    def out_degree(self, uid: int) -> int:
        """Number of distinct users ``uid`` has replied to or forwarded."""
        targets = {pair[1] for pair in self.reply_edges if pair[0] == uid}
        targets |= {pair[1] for pair in self.forward_edges if pair[0] == uid}
        return len(targets)

    def in_degree(self, uid: int) -> int:
        """Number of distinct users who replied to or forwarded ``uid``."""
        sources = {pair[0] for pair in self.reply_edges if pair[1] == uid}
        sources |= {pair[0] for pair in self.forward_edges if pair[1] == uid}
        return len(sources)


@dataclass
class Dataset:
    """Geo-tagged social media data ``D = (P, U, G)``."""

    posts: Dict[int, Post] = field(default_factory=dict)
    network: SocialNetwork = field(default_factory=SocialNetwork)
    _posts_by_user: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def users(self) -> Set[int]:
        return self.network.users

    def __len__(self) -> int:
        return len(self.posts)

    def add_post(self, post: Post) -> None:
        if post.sid in self.posts:
            raise DatasetError(f"duplicate post sid {post.sid}")
        if post.is_response:
            parent = self.posts.get(post.rsid)  # type: ignore[arg-type]
            if parent is None:
                raise DatasetError(
                    f"post {post.sid} references unknown post {post.rsid}")
            kind = post.kind if post.kind is not None else EdgeKind.REPLY
            self.network.add_interaction(post.uid, parent.uid, post.sid, kind)
        self.posts[post.sid] = post
        self.network.add_user(post.uid)
        self._posts_by_user.setdefault(post.uid, []).append(post.sid)

    def extend(self, posts: Iterable[Post]) -> None:
        for post in posts:
            self.add_post(post)

    def posts_of(self, uid: int) -> List[Post]:
        """``P_u``: all posts by user ``uid``."""
        return [self.posts[sid] for sid in self._posts_by_user.get(uid, [])]

    def post_count_of(self, uid: int) -> int:
        return len(self._posts_by_user.get(uid, []))

    def get(self, sid: int) -> Optional[Post]:
        return self.posts.get(sid)


class Semantics(enum.Enum):
    """Multi-keyword matching semantics (Section V-A): AND requires all
    query keywords in a result, OR requires at least one."""

    AND = "and"
    OR = "or"


@dataclass(frozen=True)
class TkLUSQuery:
    """A top-k local user search query ``q(l, r, W)``.

    ``keywords`` should already be normalised through the same
    :class:`~repro.text.Analyzer` used at indexing time; the query engine
    does this for callers passing raw strings.
    """

    location: Coordinate
    radius_km: float
    keywords: FrozenSet[str]
    k: int = 10
    semantics: Semantics = Semantics.OR
    temporal: TemporalSpec = NO_TEMPORAL

    def __post_init__(self) -> None:
        if self.radius_km <= 0:
            raise QueryError(f"radius must be positive: {self.radius_km}")
        if not self.keywords:
            raise QueryError("query needs at least one keyword")
        if self.k < 1:
            raise QueryError(f"k must be >= 1: {self.k}")
        lat, lon = self.location
        if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
            raise QueryError(f"invalid query location: {self.location}")

    @classmethod
    def create(cls, location: Coordinate, radius_km: float, keywords,
               k: int = 10, semantics: Semantics = Semantics.OR,
               temporal: TemporalSpec = NO_TEMPORAL,
               analyzer=None) -> "TkLUSQuery":
        """Build a query from raw keyword strings, normalising them
        through ``analyzer`` (defaults to the shared pipeline)."""
        if analyzer is None:
            from ..text import DEFAULT_ANALYZER
            analyzer = DEFAULT_ANALYZER
        if isinstance(keywords, str):
            keywords = [keywords]
        terms = analyzer.analyze_query_keywords(keywords)
        return cls(location=location, radius_km=radius_km,
                   keywords=frozenset(terms), k=k, semantics=semantics,
                   temporal=temporal)
