"""repro — a full reproduction of "Finding Top-k Local Users in
Geo-Tagged Social Media Data" (Jiang, Lu, Yang, Cui; ICDE 2015).

The package implements the paper's TkLUS query system end to end:

* :mod:`repro.core` — data model, tweet threads, scoring (Sections II-III);
* :mod:`repro.geo` — geohash/quadtree/Z-order spatial substrate (Section IV-B1);
* :mod:`repro.text` — tokenizer, stop words, Porter stemmer;
* :mod:`repro.storage` — page/B+-tree metadata database (Section IV-A);
* :mod:`repro.dfs` — simulated HDFS;
* :mod:`repro.mapreduce` — mini MapReduce engine;
* :mod:`repro.index` — the hybrid spatial-keyword index (Section IV-B);
* :mod:`repro.query` — Algorithms 4 and 5 with upper-bound pruning (Section V);
* :mod:`repro.data` — synthetic corpus and query workloads;
* :mod:`repro.eval` — experiment harness reproducing Section VI;
* :mod:`repro.obs` — tracing spans, metrics, per-query profiles
  (see ``docs/OBSERVABILITY.md``).

Quickstart::

    from repro import TkLUSEngine, TkLUSQuery, generate_corpus

    corpus = generate_corpus(num_users=1000, num_root_tweets=5000)
    engine = TkLUSEngine.from_posts(corpus.posts)
    query = engine.make_query((43.65, -79.38), radius_km=10,
                              keywords=["hotel"], k=5)
    for uid, score in engine.search(query).users:
        print(uid, score)
"""

from .core import (
    Dataset,
    Post,
    RecencyModel,
    ScoringConfig,
    Semantics,
    SocialNetwork,
    TemporalSpec,
    TimeWindow,
    TkLUSQuery,
    TweetThread,
)
from .data import QueryWorkload, generate_corpus
from .index import HybridIndex, IndexConfig
from .obs import QueryProfile
from .query import (
    BruteForceProcessor,
    EngineConfig,
    QueryResult,
    TkLUSEngine,
)
from .query.persistence import load_engine, save_engine
from .storage import MetadataDatabase

__version__ = "1.0.0"

__all__ = [
    "BruteForceProcessor",
    "Dataset",
    "EngineConfig",
    "HybridIndex",
    "IndexConfig",
    "MetadataDatabase",
    "Post",
    "QueryProfile",
    "QueryResult",
    "QueryWorkload",
    "RecencyModel",
    "ScoringConfig",
    "Semantics",
    "SocialNetwork",
    "TemporalSpec",
    "TimeWindow",
    "TkLUSEngine",
    "TkLUSQuery",
    "TweetThread",
    "generate_corpus",
    "load_engine",
    "save_engine",
]
