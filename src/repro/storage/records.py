"""Serialisation of tweet metadata records.

All tweets form "a relation with the schema of (sid, uid, lat, lon, ruid,
rsid)" (Section IV-A):

* ``sid``  — tweet id, "essentially the tweet timestamp" (primary key);
* ``uid``  — posting user's id;
* ``lat``/``lon`` — coordinates of the post;
* ``ruid`` — user whose tweet this one replies to / forwards, or NONE;
* ``rsid`` — the tweet replied to / forwarded, or NONE.

Records are fixed-size binary for cheap slotted-page storage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

#: Sentinel for "no reply/forward target".
NO_REF = -1

_RECORD = struct.Struct("<qqddqq")

RECORD_SIZE = _RECORD.size

#: partial views into a packed record, used by the batched read paths to
#: skip materialising whole :class:`TweetRecord` objects
_RESOLVED = struct.Struct("<qdd")      # uid, lat, lon
_RESOLVED_OFFSET = struct.calcsize("<q")
_LOCATION = struct.Struct("<dd")       # lat, lon
_LOCATION_OFFSET = struct.calcsize("<qq")


def unpack_resolved(data: bytes) -> "tuple[int, float, float]":
    """``(uid, lat, lon)`` of a packed record without building the
    dataclass — the candidate-resolution projection."""
    uid, lat, lon = _RESOLVED.unpack_from(data, _RESOLVED_OFFSET)
    return uid, lat, lon


def unpack_location(data: bytes) -> "tuple[float, float]":
    """``(lat, lon)`` of a packed record without building the dataclass."""
    lat, lon = _LOCATION.unpack_from(data, _LOCATION_OFFSET)
    return lat, lon


@dataclass(frozen=True)
class TweetRecord:
    """One row of the tweet metadata relation."""

    sid: int
    uid: int
    lat: float
    lon: float
    ruid: int = NO_REF
    rsid: int = NO_REF

    @property
    def is_reply_or_forward(self) -> bool:
        return self.rsid != NO_REF

    def pack(self) -> bytes:
        return _RECORD.pack(self.sid, self.uid, self.lat, self.lon,
                            self.ruid, self.rsid)

    @classmethod
    def unpack(cls, data: bytes) -> "TweetRecord":
        sid, uid, lat, lon, ruid, rsid = _RECORD.unpack(data)
        return cls(sid=sid, uid=uid, lat=lat, lon=lon, ruid=ruid, rsid=rsid)

    def replace_location(self, lat: float, lon: float) -> "TweetRecord":
        return TweetRecord(self.sid, self.uid, lat, lon, self.ruid, self.rsid)


def make_record(sid: int, uid: int, lat: float, lon: float,
                ruid: Optional[int] = None,
                rsid: Optional[int] = None) -> TweetRecord:
    """Convenience constructor mapping ``None`` reply targets to the
    :data:`NO_REF` sentinel."""
    return TweetRecord(
        sid=sid, uid=uid, lat=lat, lon=lon,
        ruid=NO_REF if ruid is None else ruid,
        rsid=NO_REF if rsid is None else rsid,
    )
