"""Page storage backends and the buffer pool.

Two backends implement physical page I/O:

* :class:`FilePager` — pages live in a real file on disk;
* :class:`MemoryPager` — pages live in a dict (for tests and for
  experiments that want deterministic "I/O" counts without disk noise).

:class:`BufferPool` sits on top of either, caching up to ``capacity`` pages
with LRU eviction of unpinned pages, and tracking hits/misses/evictions in
an :class:`~repro.storage.iostats.IOStats`.  The experiments on thread-
construction cost (the bottleneck identified in Section V-B) read their
I/O numbers from here.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Protocol

from .. import obs
from .iostats import IOStats
from .page import PAGE_SIZE, Page


class PagerError(RuntimeError):
    """Raised for invalid page accesses at the backend level."""


class Pager(Protocol):
    """The physical page-I/O interface :class:`BufferPool` builds on.

    :class:`MemoryPager` and :class:`FilePager` both satisfy it
    structurally; tests can substitute fakes that inject I/O failures.
    """

    stats: IOStats

    @property
    def page_count(self) -> int: ...

    @property
    def free_count(self) -> int: ...

    def allocate(self) -> int: ...

    def free_page(self, page_no: int) -> None: ...

    def read_page(self, page_no: int) -> Page: ...

    def write_page(self, page: Page) -> None: ...

    def sync(self) -> None: ...

    def close(self) -> None: ...


class MemoryPager:
    """In-memory page store with the same interface as :class:`FilePager`."""

    def __init__(self, stats: Optional[IOStats] = None) -> None:
        self._pages: Dict[int, bytes] = {}
        self._next_page = 0
        self._free_list: List[int] = []
        self.stats = stats if stats is not None else IOStats()

    @property
    def page_count(self) -> int:
        return self._next_page

    @property
    def free_count(self) -> int:
        return len(self._free_list)

    def allocate(self) -> int:
        if self._free_list:
            page_no = self._free_list.pop()
        else:
            page_no = self._next_page
            self._next_page += 1
        self._pages[page_no] = bytes(PAGE_SIZE)
        self.stats.record_write()
        return page_no

    def free_page(self, page_no: int) -> None:
        """Return a page to the allocator for reuse."""
        if page_no not in self._pages:
            raise PagerError(f"cannot free unallocated page {page_no}")
        if page_no in self._free_list:
            raise PagerError(f"double free of page {page_no}")
        self._free_list.append(page_no)

    def read_page(self, page_no: int) -> Page:
        data = self._pages.get(page_no)
        if data is None:
            raise PagerError(f"page {page_no} was never allocated")
        self.stats.record_read()
        return Page(page_no, data)

    def write_page(self, page: Page) -> None:
        if page.page_no not in self._pages:
            raise PagerError(f"page {page.page_no} was never allocated")
        self._pages[page.page_no] = bytes(page.data)
        self.stats.record_write()

    def close(self) -> None:
        self._pages.clear()

    def sync(self) -> None:
        """No-op for the memory backend."""


class FilePager:
    """File-backed page store.

    The file grows by whole pages; page numbers are file offsets divided by
    :data:`PAGE_SIZE`.
    """

    def __init__(self, path: str, stats: Optional[IOStats] = None) -> None:
        self.path = path
        flags = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, flags)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE != 0:
            raise PagerError(f"{path} is not page-aligned ({size} bytes)")
        self._next_page = size // PAGE_SIZE
        # The free list is process-local: pages freed in this session are
        # reused, but are conservatively leaked across reopen (persisting
        # it would need an on-disk free map).
        self._free_list: List[int] = []
        self.stats = stats if stats is not None else IOStats()

    @property
    def page_count(self) -> int:
        return self._next_page

    @property
    def free_count(self) -> int:
        return len(self._free_list)

    def allocate(self) -> int:
        if self._free_list:
            page_no = self._free_list.pop()
        else:
            page_no = self._next_page
            self._next_page += 1
        self._file.seek(page_no * PAGE_SIZE)
        self._file.write(bytes(PAGE_SIZE))
        self.stats.record_write()
        return page_no

    def free_page(self, page_no: int) -> None:
        """Return a page to the allocator (session-local free list)."""
        if not 0 <= page_no < self._next_page:
            raise PagerError(f"cannot free unallocated page {page_no}")
        if page_no in self._free_list:
            raise PagerError(f"double free of page {page_no}")
        self._free_list.append(page_no)

    def read_page(self, page_no: int) -> Page:
        if not 0 <= page_no < self._next_page:
            raise PagerError(f"page {page_no} out of range [0, {self._next_page})")
        self._file.seek(page_no * PAGE_SIZE)
        data = self._file.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise PagerError(f"short read on page {page_no}")
        self.stats.record_read()
        return Page(page_no, data)

    def write_page(self, page: Page) -> None:
        if not 0 <= page.page_no < self._next_page:
            raise PagerError(f"page {page.page_no} out of range [0, {self._next_page})")
        self._file.seek(page.page_no * PAGE_SIZE)
        self._file.write(bytes(page.data))
        self.stats.record_write()

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()


class BufferPool:
    """LRU page cache with pinning.

    ``get_page`` pins the returned page; callers must balance every get
    with :meth:`unpin` (or use :meth:`pinned`, a context manager).  Dirty
    pages are written back on eviction and on :meth:`flush_all`.
    """

    def __init__(self, pager: Pager, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"buffer pool capacity must be >= 1: {capacity}")
        self._pager = pager
        self._capacity = capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()

    @property
    def stats(self) -> IOStats:
        return self._pager.stats

    @property
    def capacity(self) -> int:
        return self._capacity

    def allocate_page(self) -> Page:
        """Allocate a fresh page and return it pinned."""
        page_no = self._pager.allocate()
        page = Page(page_no)
        page.pin_count = 1
        self._install(page_no, page)
        return page

    def get_page(self, page_no: int) -> Page:
        """Fetch a page (from cache or backend), pinned."""
        # Per-access counts live in the always-on IOStats; the obs
        # registry gets them bridged as per-query deltas (see
        # ProfileRecorder.finish) so this hot path stays metric-free.
        page = self._frames.get(page_no)
        if page is not None:
            self._frames.move_to_end(page_no)
            page.pin_count += 1
            self.stats.record_hit()
            return page
        self.stats.record_miss()
        with obs.trace("storage.page_read", page_no=page_no):
            page = self._pager.read_page(page_no)
        page.pin_count = 1
        self._install(page_no, page)
        return page

    def unpin(self, page: Page) -> None:
        if page.pin_count <= 0:
            raise RuntimeError(f"page {page.page_no} is not pinned")
        page.pin_count -= 1

    def free_page(self, page_no: int) -> None:
        """Discard a page: drop any cached frame (its contents are dead)
        and hand the slot back to the pager for reuse."""
        frame = self._frames.pop(page_no, None)
        if frame is not None and frame.pin_count > 0:
            raise RuntimeError(f"cannot free pinned page {page_no}")
        self._pager.free_page(page_no)

    def pinned(self, page_no: int) -> "_PinnedPage":
        """Context manager yielding a pinned page and unpinning on exit."""
        return _PinnedPage(self, page_no)

    def _install(self, page_no: int, page: Page) -> None:
        if len(self._frames) >= self._capacity:
            self._evict_one()
        self._frames[page_no] = page

    def _evict_one(self) -> None:
        for victim_no, victim in self._frames.items():
            if victim.pin_count == 0:
                if victim.dirty:
                    self._pager.write_page(victim)
                    victim.dirty = False
                del self._frames[victim_no]
                self.stats.record_eviction()
                return
        # All pages pinned: allow the pool to exceed capacity rather than
        # deadlock.  This mirrors what real buffer managers do under
        # pin-pressure and keeps the engine usable with tiny pools.

    def flush_all(self) -> None:
        for page in self._frames.values():
            if page.dirty:
                self._pager.write_page(page)
                page.dirty = False
        self._pager.sync()

    def close(self) -> None:
        self.flush_all()
        self._frames.clear()
        self._pager.close()

    def cached_pages(self) -> int:
        return len(self._frames)


class _PinnedPage:
    """``with pool.pinned(n) as page:`` — the pin is handed to
    ``__exit__``, which balances it unconditionally."""

    def __init__(self, pool: BufferPool, page_no: int) -> None:
        self._pool = pool
        self._page_no = page_no

    def __enter__(self) -> Page:
        self.page = self._pool.get_page(self._page_no)
        return self.page

    def __exit__(self, *exc: object) -> None:
        self._pool.unpin(self.page)
