"""I/O accounting for the storage engine.

The paper's analysis is I/O-centric: thread construction "will cost several
I/Os" per posting (Section V-B), and the B+-trees on ``sid``/``rsid`` exist
to bound those I/Os.  Every physical page read/write in the storage layer
is counted here so experiments can report logical work alongside wall-clock
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class IOStats:
    """Mutable counters for one storage component."""

    page_reads: int = 0
    page_writes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0

    def record_read(self) -> None:
        self.page_reads += 1

    def record_write(self) -> None:
        self.page_writes += 1

    def record_hit(self) -> None:
        self.cache_hits += 1

    def record_miss(self) -> None:
        self.cache_misses += 1

    def record_eviction(self) -> None:
        self.evictions += 1

    @property
    def total_ios(self) -> int:
        return self.page_reads + self.page_writes

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evictions": self.evictions,
        }

    def delta_since(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Difference between the current counters and an earlier
        :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}

    # Alias matching the snapshot()/diff() vocabulary used elsewhere in
    # the observability layer.
    diff = delta_since


@dataclass
class StatsRegistry:
    """Named collection of :class:`IOStats`, one per storage component,
    so an experiment can report e.g. metadata-DB I/O separately from
    index I/O."""

    components: Dict[str, IOStats] = field(default_factory=dict)

    def get(self, name: str) -> IOStats:
        stats = self.components.get(name)
        if stats is None:
            stats = IOStats()
            self.components[name] = stats
        return stats

    def reset_all(self) -> None:
        for stats in self.components.values():
            stats.reset()

    def total_ios(self) -> int:
        return sum(stats.total_ios for stats in self.components.values())

    def report(self) -> Dict[str, Dict[str, int]]:
        return {name: stats.snapshot() for name, stats in self.components.items()}

    # -- delta accounting --------------------------------------------------
    #
    # Experiments used to call :meth:`reset_all` between queries to read
    # per-query I/O, which destroys the session-wide totals (and races
    # when two measurements overlap).  Take a :meth:`snapshot_all` before
    # the work and :meth:`diff_all` after it instead.

    def snapshot_all(self) -> Dict[str, Dict[str, int]]:
        """Point-in-time copy of every component's counters."""
        return {name: stats.snapshot()
                for name, stats in self.components.items()}

    def diff_all(self, earlier: Dict[str, Dict[str, int]]
                 ) -> Dict[str, Dict[str, int]]:
        """Per-component counter deltas since an earlier
        :meth:`snapshot_all`.  Components created after the snapshot
        diff against zero."""
        return {name: stats.diff(earlier.get(name, {}))
                for name, stats in self.components.items()}
