"""The centralized tweet metadata database.

Section IV-A: "All tweets in our system form a relation with the schema of
(sid, uid, lat, lon, ruid, rsid) which is stored in a centralized metadata
database ... attribute 'sid' is the primary key for which we build a
B+-tree. Another B+-tree is built on attribute 'rsid'. These indexes are
used to accelerate the query processing phase."

:class:`MetadataDatabase` bundles a heap file with those two B+-trees and
exposes exactly the two query shapes the algorithms need:

* ``select all where rsid equals Id`` (Algorithm 1 line 7 — thread
  expansion), via a prefix scan of the ``(rsid, sid)`` tree;
* ``select userId where sid = ...`` (Algorithms 4/5 — user attribution),
  via the unique ``(sid, 0)`` tree.

We additionally maintain a ``(uid, sid)`` B+-tree the paper does not
mention: Definition 9 averages the distance score over *all* of a user's
posts (``P_u``), which needs an efficient user-to-posts lookup.  The
paper leaves the access path unstated; a secondary index is the natural
engineering choice and its cost is accounted like the others.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, List, Optional

from .bptree import BPlusTree
from .heapfile import HeapFile
from .iostats import StatsRegistry
from .pager import BufferPool, FilePager, MemoryPager
from .records import NO_REF, TweetRecord, unpack_location, unpack_resolved


class MetadataError(RuntimeError):
    """Raised for metadata-database misuse (e.g. duplicate sid)."""


class MetadataDatabase:
    """Heap file + B+-tree(sid) + B+-tree(rsid) over pluggable pagers.

    Use :meth:`in_memory` for tests and small experiments, or
    :meth:`open_directory` to persist to disk.  The database also tracks
    ``t_m`` — "the maximum number of replied tweets a tweet can have in our
    database" — which Definition 11 needs for the global upper-bound
    popularity.
    """

    def __init__(self, heap_pool: BufferPool, sid_pool: BufferPool,
                 rsid_pool: BufferPool, uid_pool: BufferPool,
                 registry: StatsRegistry) -> None:
        self._registry = registry
        self._heap = HeapFile(heap_pool)
        self._sid_tree = BPlusTree(sid_pool, unique=True)
        self._rsid_tree = BPlusTree(rsid_pool, unique=True)
        self._uid_tree = BPlusTree(uid_pool, unique=True)
        self._reply_counts: Dict[int, int] = {}
        self._user_columns_cache: Dict[int, "tuple[List[float], List[float]]"] = {}
        self._max_reply_fanout = 0
        self._max_sid = 0
        for (sid, _zero), _pointer in self._sid_tree.range(
                (int(-2**62), 0), (int(2**62), 0)):
            if sid > self._max_sid:
                self._max_sid = sid
        self._rebuild_fanout_cache()

    # -- construction -------------------------------------------------------

    @classmethod
    def in_memory(cls, pool_size: int = 512) -> "MetadataDatabase":
        registry = StatsRegistry()
        return cls(
            heap_pool=BufferPool(MemoryPager(registry.get("heap")), pool_size),
            sid_pool=BufferPool(MemoryPager(registry.get("sid_index")), pool_size),
            rsid_pool=BufferPool(MemoryPager(registry.get("rsid_index")), pool_size),
            uid_pool=BufferPool(MemoryPager(registry.get("uid_index")), pool_size),
            registry=registry,
        )

    @classmethod
    def open_directory(cls, directory: str, pool_size: int = 512) -> "MetadataDatabase":
        os.makedirs(directory, exist_ok=True)
        registry = StatsRegistry()
        return cls(
            heap_pool=BufferPool(
                FilePager(os.path.join(directory, "tweets.heap"),
                          registry.get("heap")), pool_size),
            sid_pool=BufferPool(
                FilePager(os.path.join(directory, "sid.btree"),
                          registry.get("sid_index")), pool_size),
            rsid_pool=BufferPool(
                FilePager(os.path.join(directory, "rsid.btree"),
                          registry.get("rsid_index")), pool_size),
            uid_pool=BufferPool(
                FilePager(os.path.join(directory, "uid.btree"),
                          registry.get("uid_index")), pool_size),
            registry=registry,
        )

    def _rebuild_fanout_cache(self) -> None:
        """Recompute reply-fanout counts from the rsid index (used when
        reopening a persisted database)."""
        self._reply_counts.clear()
        self._max_reply_fanout = 0
        current: Optional[int] = None
        count = 0
        for (rsid, _sid), _pointer in self._rsid_tree.items():
            if rsid != current:
                if current is not None:
                    self._reply_counts[current] = count
                    self._max_reply_fanout = max(self._max_reply_fanout, count)
                current = rsid
                count = 0
            count += 1
        if current is not None:
            self._reply_counts[current] = count
            self._max_reply_fanout = max(self._max_reply_fanout, count)

    # -- properties ---------------------------------------------------------

    @property
    def stats(self) -> StatsRegistry:
        return self._registry

    @property
    def size(self) -> int:
        return len(self._sid_tree)

    def __len__(self) -> int:
        return self.size

    @property
    def max_sid(self) -> int:
        """The newest tweet id (== timestamp) in the relation; the
        temporal extension's notion of "now"."""
        return self._max_sid

    @property
    def max_reply_fanout(self) -> int:
        """``t_m`` of Definition 11: the largest number of direct replies /
        forwards any single tweet has received."""
        return self._max_reply_fanout

    @property
    def heap(self) -> HeapFile:
        """The record heap — exposed for deep invariant validation."""
        return self._heap

    def indexes(self) -> Dict[str, BPlusTree]:
        """The named B+-trees — exposed for deep invariant validation."""
        return {"sid": self._sid_tree, "rsid": self._rsid_tree,
                "uid": self._uid_tree}

    # -- writes ----------------------------------------------------------

    def insert(self, record: TweetRecord) -> None:
        """Insert one tweet record, maintaining both indexes and the
        fanout cache."""
        if self._sid_tree.get((record.sid, 0)) is not None:
            raise MetadataError(f"duplicate sid {record.sid}")
        pointer = self._heap.insert(record.pack())
        self._user_columns_cache.pop(record.uid, None)
        self._sid_tree.insert((record.sid, 0), pointer)
        if record.sid > self._max_sid:
            self._max_sid = record.sid
        self._uid_tree.insert((record.uid, record.sid), pointer)
        if record.rsid != NO_REF:
            self._rsid_tree.insert((record.rsid, record.sid), pointer)
            count = self._reply_counts.get(record.rsid, 0) + 1
            self._reply_counts[record.rsid] = count
            if count > self._max_reply_fanout:
                self._max_reply_fanout = count

    def bulk_load(self, records: Iterable[TweetRecord]) -> int:
        """Insert many records; returns the number loaded."""
        loaded = 0
        for record in records:
            self.insert(record)
            loaded += 1
        return loaded

    # -- reads ----------------------------------------------------------

    def get(self, sid: int) -> Optional[TweetRecord]:
        """Point lookup by primary key."""
        pointer = self._sid_tree.get((sid, 0))
        if pointer is None:
            return None
        return TweetRecord.unpack(self._heap.read(pointer))

    def get_many(self, sids: Iterable[int]) -> Dict[int, TweetRecord]:
        """Batch point lookups: one sorted index pass (shared-path node
        memo), then page-grouped heap reads.  Absent sids are missing
        from the result."""
        pointers = self._sid_tree.get_many([(sid, 0) for sid in sids])
        keys = sorted(pointers)
        records = self._heap.read_many([pointers[key] for key in keys])
        return {key[0]: TweetRecord.unpack(data)
                for key, data in zip(keys, records)}

    def resolve_many(self, sids: Iterable[int]
                     ) -> Dict[int, "tuple[int, float, float]"]:
        """Batch ``sid -> (uid, lat, lon)`` projection — the candidate
        resolution of Algorithms 4/5 line 16 over a whole batch, without
        materialising :class:`TweetRecord` objects."""
        pointers = self._sid_tree.get_many([(sid, 0) for sid in sids])
        keys = sorted(pointers)
        records = self._heap.read_many([pointers[key] for key in keys])
        return {key[0]: unpack_resolved(data)
                for key, data in zip(keys, records)}

    def user_location_columns(self, uid: int
                              ) -> "tuple[List[float], List[float]]":
        """Latitude/longitude columns of ``P_u`` in sid order — the batch
        access path behind the vectorized Definition 9 kernel.  Heap
        pages are each pinned once and only the coordinates are
        unpacked.

        Columns are memoised per user (a user's ``P_u`` only changes
        when they post, which invalidates their entry in
        :meth:`insert`).  Callers must treat the returned lists as
        read-only.
        """
        cached = self._user_columns_cache.get(uid)
        if cached is not None:
            return cached
        pointers = [pointer for _key, pointer in self._uid_tree.prefix(uid)]
        lats: List[float] = []
        lons: List[float] = []
        for data in self._heap.read_many(pointers):
            lat, lon = unpack_location(data)
            lats.append(lat)
            lons.append(lon)
        self._user_columns_cache[uid] = (lats, lons)
        return lats, lons

    def user_of(self, sid: int) -> Optional[int]:
        """``select userId where sid = ...`` (Algorithm 4 line 20)."""
        record = self.get(sid)
        return record.uid if record is not None else None

    def replies_to(self, sid: int) -> List[TweetRecord]:
        """``select all where rsid equals to Id`` (Algorithm 1 line 7)."""
        result = []
        for _key, pointer in self._rsid_tree.prefix(sid):
            result.append(TweetRecord.unpack(self._heap.read(pointer)))
        return result

    def reply_count(self, sid: int) -> int:
        """Number of direct replies/forwards to ``sid`` without fetching
        the records."""
        return self._reply_counts.get(sid, 0)

    def posts_of_user(self, uid: int) -> List[TweetRecord]:
        """All tweets by ``uid`` (``P_u``), in sid order — the access
        path behind Definition 9's user distance score."""
        result = []
        for _key, pointer in self._uid_tree.prefix(uid):
            result.append(TweetRecord.unpack(self._heap.read(pointer)))
        return result

    def post_count_of_user(self, uid: int) -> int:
        """``|P_u|`` without fetching heap records."""
        return sum(1 for _ in self._uid_tree.prefix(uid))

    def scan(self) -> Iterator[TweetRecord]:
        """Full relation scan in physical (ingestion) order."""
        for _record_id, data in self._heap.scan():
            yield TweetRecord.unpack(data)

    def sid_range(self, lo: int, hi: int) -> Iterator[TweetRecord]:
        """All tweets with ``lo <= sid <= hi`` in sid order (the temporal
        filtering hook the paper lists as future work)."""
        for _key, pointer in self._sid_tree.range((lo, 0), (hi, 0)):
            yield TweetRecord.unpack(self._heap.read(pointer))

    # -- maintenance ------------------------------------------------------

    def flush(self) -> None:
        self._heap.flush()
        self._sid_tree.flush()
        self._rsid_tree.flush()
        self._uid_tree.flush()

    def check_invariants(self) -> None:
        self._sid_tree.check_invariants()
        self._rsid_tree.check_invariants()
        self._uid_tree.check_invariants()
