"""Heap files: unordered collections of records over slotted pages.

The tweet metadata relation is stored in a heap file; the B+-tree indexes
on ``sid`` and ``rsid`` map keys to packed ``(page, slot)`` record ids
pointing into it.
"""

from __future__ import annotations

import contextlib

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, cast

from .page import PageError, SlottedPage, pack_record_id, unpack_record_id
from .pager import BufferPool


class HeapFile:
    """Append-mostly record heap.

    Insertions go to the current tail page, allocating a new page on
    overflow.  This gives the timestamp-ordered physical layout the paper's
    tweet relation has naturally (``sid`` is the ingestion timestamp), so
    primary-key range scans touch contiguous pages.
    """

    def __init__(self, pool: BufferPool) -> None:
        self._pool = pool
        page_count = pool._pager.page_count
        self._tail_page: Optional[int] = page_count - 1 if page_count > 0 else None

    @property
    def page_count(self) -> int:
        return self._pool._pager.page_count

    def insert(self, record: bytes) -> int:
        """Insert a record and return its packed record id."""
        if self._tail_page is not None:
            page = self._pool.get_page(self._tail_page)
            try:
                slotted = SlottedPage(page)
                # Full tail page: fall through to allocate a fresh one.
                with contextlib.suppress(PageError):
                    slot = slotted.insert(record)
                    return pack_record_id(page.page_no, slot)
            finally:
                self._pool.unpin(page)
        page = self._pool.allocate_page()
        try:
            slotted = SlottedPage(page)
            slot = slotted.insert(record)
            self._tail_page = page.page_no
            return pack_record_id(page.page_no, slot)
        finally:
            self._pool.unpin(page)

    def read(self, record_id: int) -> bytes:
        """Fetch the record with the given packed id."""
        page_no, slot = unpack_record_id(record_id)
        with self._pool.pinned(page_no) as page:
            return SlottedPage(page).read(slot)

    def read_many(self, record_ids: Sequence[int]) -> List[bytes]:
        """Batch :meth:`read`: results align with ``record_ids``.

        Reads are grouped by page, so a page holding many requested
        records is pinned (and its buffer-pool bookkeeping paid) once
        rather than once per record; pages are visited in file order.
        """
        out: List[Optional[bytes]] = [None] * len(record_ids)
        by_page: Dict[int, List[Tuple[int, int]]] = {}
        for position, record_id in enumerate(record_ids):
            page_no, slot = unpack_record_id(record_id)
            by_page.setdefault(page_no, []).append((position, slot))
        for page_no in sorted(by_page):
            with self._pool.pinned(page_no) as page:
                slotted = SlottedPage(page)
                for position, slot in by_page[page_no]:
                    out[position] = slotted.read(slot)
        return cast(List[bytes], out)

    def delete(self, record_id: int) -> None:
        page_no, slot = unpack_record_id(record_id)
        with self._pool.pinned(page_no) as page:
            SlottedPage(page).delete(slot)

    def scan(self) -> Iterator[Tuple[int, bytes]]:
        """Full scan yielding ``(record_id, record_bytes)``."""
        for page_no in range(self.page_count):
            with self._pool.pinned(page_no) as page:
                records = list(SlottedPage(page).records())
            for slot, data in records:
                yield (pack_record_id(page_no, slot), data)

    def flush(self) -> None:
        self._pool.flush_all()
