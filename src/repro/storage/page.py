"""Fixed-size pages with a slotted layout.

The metadata database stores tweet records in heap files of slotted pages;
B+-tree nodes serialise into raw pages.  A page is a ``bytearray`` of
:data:`PAGE_SIZE` bytes plus a dirty flag and pin count managed by the
buffer pool.

Slotted-page layout (used by :class:`SlottedPage`):

* header: ``slot_count`` (u16), ``free_space_offset`` (u16)
* slot directory grows downward from the header: per slot ``offset`` (u16),
  ``length`` (u16); a zero offset marks a deleted slot
* record data grows upward from the end of the page
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

PAGE_SIZE = 4096

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size

#: Sentinel page number meaning "no page".
INVALID_PAGE = 0xFFFFFFFF


class PageError(RuntimeError):
    """Raised on page-level corruption or capacity violations."""


class Page:
    """A raw page: fixed-size buffer plus bookkeeping for the buffer pool."""

    __slots__ = ("page_no", "data", "dirty", "pin_count")

    def __init__(self, page_no: int, data: Optional[bytes] = None) -> None:
        self.page_no = page_no
        if data is None:
            self.data = bytearray(PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise PageError(f"page data must be {PAGE_SIZE} bytes, got {len(data)}")
            self.data = bytearray(data)
        self.dirty = False
        self.pin_count = 0

    def mark_dirty(self) -> None:
        self.dirty = True


class SlottedPage:
    """Slotted-record view over a :class:`Page`.

    Records are arbitrary byte strings up to the free space of the page.
    Slot indices are stable across deletes (deleted slots are tombstoned),
    which lets record ids ``(page_no, slot)`` remain valid references.
    """

    def __init__(self, page: Page) -> None:
        self.page = page

    # -- header access -----------------------------------------------------

    def _read_header(self) -> Tuple[int, int]:
        slot_count, free_offset = _HEADER.unpack_from(self.page.data, 0)
        if free_offset == 0:  # freshly zeroed page
            free_offset = PAGE_SIZE
        return slot_count, free_offset

    def _write_header(self, slot_count: int, free_offset: int) -> None:
        _HEADER.pack_into(self.page.data, 0, slot_count, free_offset)
        self.page.mark_dirty()

    def _slot_pos(self, slot: int) -> int:
        return _HEADER_SIZE + slot * _SLOT_SIZE

    def _read_slot(self, slot: int) -> Tuple[int, int]:
        return _SLOT.unpack_from(self.page.data, self._slot_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.page.data, self._slot_pos(slot), offset, length)
        self.page.mark_dirty()

    # -- public API ----------------------------------------------------------

    @property
    def slot_count(self) -> int:
        return self._read_header()[0]

    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        slot_count, free_offset = self._read_header()
        directory_end = _HEADER_SIZE + slot_count * _SLOT_SIZE
        available = free_offset - directory_end - _SLOT_SIZE
        return max(0, available)

    def insert(self, record: bytes) -> int:
        """Insert a record, returning its slot index.

        Raises :class:`PageError` when the record does not fit.
        """
        if not record:
            raise PageError("cannot insert empty record")
        slot_count, free_offset = self._read_header()
        needed = len(record) + _SLOT_SIZE
        directory_end = _HEADER_SIZE + slot_count * _SLOT_SIZE
        if free_offset - directory_end < needed:
            raise PageError("record does not fit in page")
        new_offset = free_offset - len(record)
        self.page.data[new_offset:free_offset] = record
        slot = slot_count
        self._write_header(slot_count + 1, new_offset)
        self._write_slot(slot, new_offset, len(record))
        return slot

    def read(self, slot: int) -> bytes:
        """Read the record at ``slot``; raises KeyError for deleted or
        out-of-range slots."""
        slot_count, _free = self._read_header()
        if not 0 <= slot < slot_count:
            raise KeyError(f"slot {slot} out of range (page has {slot_count})")
        offset, length = self._read_slot(slot)
        if offset == 0:
            raise KeyError(f"slot {slot} is deleted")
        return bytes(self.page.data[offset:offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone the record at ``slot`` (space is not compacted)."""
        slot_count, _free = self._read_header()
        if not 0 <= slot < slot_count:
            raise KeyError(f"slot {slot} out of range (page has {slot_count})")
        offset, _length = self._read_slot(slot)
        if offset == 0:
            raise KeyError(f"slot {slot} already deleted")
        self._write_slot(slot, 0, 0)

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(slot, record)`` for every live record."""
        slot_count, _free = self._read_header()
        for slot in range(slot_count):
            offset, length = self._read_slot(slot)
            if offset != 0:
                yield (slot, bytes(self.page.data[offset:offset + length]))

    def live_count(self) -> int:
        return sum(1 for _ in self.records())

    def capacity_for(self, record_size: int) -> int:
        """How many records of ``record_size`` bytes fit in an empty page."""
        usable = PAGE_SIZE - _HEADER_SIZE
        return usable // (record_size + _SLOT_SIZE)


def pack_record_id(page_no: int, slot: int) -> int:
    """Pack a ``(page_no, slot)`` pair into a single int64 record pointer."""
    if page_no < 0 or slot < 0 or slot > 0xFFFF:
        raise ValueError(f"bad record id components: page={page_no}, slot={slot}")
    return (page_no << 16) | slot


def unpack_record_id(pointer: int) -> Tuple[int, int]:
    """Inverse of :func:`pack_record_id`."""
    return (pointer >> 16, pointer & 0xFFFF)
