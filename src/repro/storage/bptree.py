"""A disk-backed B+-tree.

The paper's metadata database builds "a B+-tree" on the primary key ``sid``
and "another B+-tree ... on attribute 'rsid'" to accelerate tweet-thread
construction ("select all where rsid equals to Id", Algorithm 1 line 7).

Keys are pairs of signed 64-bit integers compared lexicographically, which
supports both unique indexes (``(sid, 0)``) and duplicate-key indexes
(``(rsid, sid)`` — duplicates of ``rsid`` are disambiguated by ``sid`` and
retrieved with a prefix range scan).  Values are signed 64-bit integers
(packed record pointers).

Nodes serialise into buffer-pool pages; page 0 of the tree's file is a
metadata page holding the root pointer, height and entry count.  Deletion
implements full rebalancing (borrow from siblings, merge, root collapse).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .page import INVALID_PAGE, PAGE_SIZE, Page
from .pager import BufferPool

Key = Tuple[int, int]

_META = struct.Struct("<8sIIQ")  # magic, root page, height, size
_MAGIC = b"BPTREE01"

_NODE_HEADER = struct.Struct("<BHI")  # type, key count, next-leaf page
_LEAF_ENTRY = struct.Struct("<qqq")   # k1, k2, value
_KEY = struct.Struct("<qq")
_CHILD = struct.Struct("<I")

_TYPE_LEAF = 0
_TYPE_INTERNAL = 1

#: Maximum entries per leaf: header + n * 24 bytes <= PAGE_SIZE.
LEAF_MAX = (PAGE_SIZE - _NODE_HEADER.size) // _LEAF_ENTRY.size
#: Maximum keys per internal node: header + n * 16 + (n + 1) * 4 <= PAGE_SIZE.
INTERNAL_MAX = (PAGE_SIZE - _NODE_HEADER.size - _CHILD.size) // (_KEY.size + _CHILD.size)

LEAF_MIN = LEAF_MAX // 2
INTERNAL_MIN = INTERNAL_MAX // 2

MIN_KEY: Key = (-(1 << 63), -(1 << 63))
MAX_KEY: Key = ((1 << 63) - 1, (1 << 63) - 1)


class BPlusTreeError(RuntimeError):
    """Raised on structural corruption or misuse."""


class DuplicateKeyError(BPlusTreeError):
    """Raised when inserting an existing key into a unique tree."""


@dataclass
class _Node:
    page_no: int
    is_leaf: bool
    keys: List[Key]
    # Leaf: values[i] pairs with keys[i].  Internal: children has
    # len(keys) + 1 entries.
    values: List[int]
    children: List[int]
    next_leaf: int = INVALID_PAGE


def _serialize(node: _Node, page: Page) -> None:
    buffer = page.data
    node_type = _TYPE_LEAF if node.is_leaf else _TYPE_INTERNAL
    _NODE_HEADER.pack_into(buffer, 0, node_type, len(node.keys), node.next_leaf)
    offset = _NODE_HEADER.size
    if node.is_leaf:
        for key, value in zip(node.keys, node.values):
            _LEAF_ENTRY.pack_into(buffer, offset, key[0], key[1], value)
            offset += _LEAF_ENTRY.size
    else:
        for key in node.keys:
            _KEY.pack_into(buffer, offset, key[0], key[1])
            offset += _KEY.size
        for child in node.children:
            _CHILD.pack_into(buffer, offset, child)
            offset += _CHILD.size
    page.mark_dirty()


def _deserialize(page: Page) -> _Node:
    node_type, count, next_leaf = _NODE_HEADER.unpack_from(page.data, 0)
    offset = _NODE_HEADER.size
    if node_type == _TYPE_LEAF:
        keys: List[Key] = []
        values: List[int] = []
        for _ in range(count):
            k1, k2, value = _LEAF_ENTRY.unpack_from(page.data, offset)
            offset += _LEAF_ENTRY.size
            keys.append((k1, k2))
            values.append(value)
        return _Node(page.page_no, True, keys, values, [], next_leaf)
    if node_type == _TYPE_INTERNAL:
        keys = []
        for _ in range(count):
            k1, k2 = _KEY.unpack_from(page.data, offset)
            offset += _KEY.size
            keys.append((k1, k2))
        children = []
        for _ in range(count + 1):
            (child,) = _CHILD.unpack_from(page.data, offset)
            offset += _CHILD.size
            children.append(child)
        return _Node(page.page_no, False, keys, [], children, INVALID_PAGE)
    raise BPlusTreeError(f"page {page.page_no} has invalid node type {node_type}")


def _bisect_keys(keys: List[Key], key: Key) -> int:
    """Index of the first element in ``keys`` >= ``key``."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BPlusTree:
    """A B+-tree over a :class:`~repro.storage.pager.BufferPool`.

    Parameters
    ----------
    pool:
        Buffer pool the tree's pages live in.  The tree assumes exclusive
        ownership of the underlying pager's page space.
    unique:
        When True (default), inserting an existing key raises
        :class:`DuplicateKeyError`.  Duplicate-key indexes should encode
        the duplicate dimension into the second key component instead.
    """

    def __init__(self, pool: BufferPool, unique: bool = True) -> None:
        self._pool = pool
        self.unique = unique
        if self._pool._pager.page_count == 0:
            meta = self._pool.allocate_page()
            try:
                root = self._pool.allocate_page()
                try:
                    _serialize(_Node(root.page_no, True, [], [], []), root)
                    self._root_page = root.page_no
                    self._height = 1
                    self._size = 0
                    self._write_meta(meta)
                finally:
                    self._pool.unpin(root)
            finally:
                self._pool.unpin(meta)
        else:
            with self._pool.pinned(0) as meta:
                magic, root_page, height, size = _META.unpack_from(meta.data, 0)
                if magic != _MAGIC:
                    raise BPlusTreeError("page 0 is not a B+-tree metadata page")
                self._root_page = root_page
                self._height = height
                self._size = size

    # -- metadata ----------------------------------------------------------

    def _write_meta(self, page: Optional[Page] = None) -> None:
        if page is not None:
            _META.pack_into(page.data, 0, _MAGIC, self._root_page, self._height, self._size)
            page.mark_dirty()
            return
        with self._pool.pinned(0) as meta:
            _META.pack_into(meta.data, 0, _MAGIC, self._root_page, self._height, self._size)
            meta.mark_dirty()

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    # -- node I/O ------------------------------------------------------------

    def _load(self, page_no: int) -> _Node:
        with self._pool.pinned(page_no) as page:
            return _deserialize(page)

    def _store(self, node: _Node) -> None:
        with self._pool.pinned(node.page_no) as page:
            _serialize(node, page)

    def _new_node(self, is_leaf: bool) -> _Node:
        page = self._pool.allocate_page()
        try:
            node = _Node(page.page_no, is_leaf, [], [], [])
            _serialize(node, page)
            return node
        finally:
            self._pool.unpin(page)

    # -- search ----------------------------------------------------------

    def _descend_to_leaf(self, key: Key) -> Tuple[_Node, List[Tuple[_Node, int]]]:
        """Walk from root to the leaf for ``key``, returning the leaf and
        the path of ``(internal_node, child_index)`` taken."""
        path: List[Tuple[_Node, int]] = []
        node = self._load(self._root_page)
        while not node.is_leaf:
            index = _bisect_keys(node.keys, key)
            # Internal separator keys direct equal keys to the right child.
            if index < len(node.keys) and node.keys[index] == key:
                index += 1
            path.append((node, index))
            node = self._load(node.children[index])
        return node, path

    def get(self, key: Key) -> Optional[int]:
        """Return the value stored at ``key``, or None."""
        leaf, _path = self._descend_to_leaf(key)
        index = _bisect_keys(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return None

    def __contains__(self, key: Key) -> bool:
        return self.get(key) is not None

    def get_many(self, keys: Sequence[Key]) -> Dict[Key, int]:
        """Point lookups for a whole batch of keys in one pass.

        Keys are visited in sorted order with a per-call node memo, so
        lookups whose root-to-leaf paths overlap deserialize each node
        once instead of once per key (``get`` re-deserializes the full
        path every call).  Absent keys are simply missing from the
        result.  The memo holds plain decoded nodes, never pinned
        pages, so batch size does not constrain the buffer pool.
        """
        found: Dict[Key, int] = {}
        if not keys:
            return found
        nodes: Dict[int, _Node] = {}

        def load(page_no: int) -> _Node:
            node = nodes.get(page_no)
            if node is None:
                node = self._load(page_no)
                nodes[page_no] = node
            return node

        for key in sorted(set(keys)):
            node = load(self._root_page)
            while not node.is_leaf:
                index = _bisect_keys(node.keys, key)
                # Internal separator keys direct equal keys to the right
                # child (same rule as _descend_to_leaf).
                if index < len(node.keys) and node.keys[index] == key:
                    index += 1
                node = load(node.children[index])
            index = _bisect_keys(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                found[key] = node.values[index]
        return found

    def range(self, lo: Key = MIN_KEY, hi: Key = MAX_KEY) -> Iterator[Tuple[Key, int]]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi`` in order."""
        if lo > hi:
            return
        leaf, _path = self._descend_to_leaf(lo)
        index = _bisect_keys(leaf.keys, lo)
        while True:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > hi:
                    return
                yield (key, leaf.values[index])
                index += 1
            if leaf.next_leaf == INVALID_PAGE:
                return
            leaf = self._load(leaf.next_leaf)
            index = 0

    def prefix(self, first: int) -> Iterator[Tuple[Key, int]]:
        """All entries whose first key component equals ``first`` — the
        duplicate-key lookup used for ``rsid`` scans."""
        yield from self.range((first, MIN_KEY[1]), (first, MAX_KEY[1]))

    def items(self) -> Iterator[Tuple[Key, int]]:
        yield from self.range()

    # -- insert ----------------------------------------------------------

    def insert(self, key: Key, value: int) -> None:
        """Insert ``key -> value``.

        In a unique tree, an existing key raises
        :class:`DuplicateKeyError`; in a non-unique tree the old value is
        overwritten (callers encode duplicates into the key).
        """
        leaf, path = self._descend_to_leaf(key)
        index = _bisect_keys(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            if self.unique:
                raise DuplicateKeyError(f"key {key} already present")
            leaf.values[index] = value
            self._store(leaf)
            return
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        self._size += 1
        if len(leaf.keys) <= LEAF_MAX:
            self._store(leaf)
            self._write_meta()
            return
        self._split_leaf(leaf, path)
        self._write_meta()

    def _split_leaf(self, leaf: _Node, path: List[Tuple[_Node, int]]) -> None:
        mid = len(leaf.keys) // 2
        right = self._new_node(is_leaf=True)
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next_leaf = leaf.next_leaf
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next_leaf = right.page_no
        self._store(leaf)
        self._store(right)
        self._insert_into_parent(leaf, right.keys[0], right, path)

    def _insert_into_parent(self, left: _Node, separator: Key, right: _Node,
                            path: List[Tuple[_Node, int]]) -> None:
        if not path:
            root = self._new_node(is_leaf=False)
            root.keys = [separator]
            root.children = [left.page_no, right.page_no]
            self._store(root)
            self._root_page = root.page_no
            self._height += 1
            return
        parent, child_index = path[-1]
        parent.keys.insert(child_index, separator)
        parent.children.insert(child_index + 1, right.page_no)
        if len(parent.keys) <= INTERNAL_MAX:
            self._store(parent)
            return
        mid = len(parent.keys) // 2
        up_key = parent.keys[mid]
        new_right = self._new_node(is_leaf=False)
        new_right.keys = parent.keys[mid + 1:]
        new_right.children = parent.children[mid + 1:]
        parent.keys = parent.keys[:mid]
        parent.children = parent.children[:mid + 1]
        self._store(parent)
        self._store(new_right)
        self._insert_into_parent(parent, up_key, new_right, path[:-1])

    # -- delete ----------------------------------------------------------

    def delete(self, key: Key) -> bool:
        """Remove ``key``; returns True if it was present."""
        leaf, path = self._descend_to_leaf(key)
        index = _bisect_keys(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        del leaf.keys[index]
        del leaf.values[index]
        self._size -= 1
        self._store(leaf)
        if len(leaf.keys) < LEAF_MIN and path:
            self._rebalance(leaf, path)
        elif not path:
            pass  # root leaf may be arbitrarily small
        self._write_meta()
        return True

    def _rebalance(self, node: _Node, path: List[Tuple[_Node, int]]) -> None:
        parent, child_index = path[-1]
        min_keys = LEAF_MIN if node.is_leaf else INTERNAL_MIN
        if len(node.keys) >= min_keys:
            return

        # Try borrowing from the left sibling.
        if child_index > 0:
            left = self._load(parent.children[child_index - 1])
            if len(left.keys) > min_keys:
                self._borrow_from_left(node, left, parent, child_index)
                return
        # Try borrowing from the right sibling.
        if child_index < len(parent.children) - 1:
            right = self._load(parent.children[child_index + 1])
            if len(right.keys) > min_keys:
                self._borrow_from_right(node, right, parent, child_index)
                return
        # Merge with a sibling.
        if child_index > 0:
            left = self._load(parent.children[child_index - 1])
            self._merge(left, node, parent, child_index - 1)
        else:
            right = self._load(parent.children[child_index + 1])
            self._merge(node, right, parent, child_index)

        if len(path) > 1:
            self._rebalance(parent, path[:-1])
        elif not parent.keys:
            # Root has become empty: collapse one level and reclaim it.
            old_root = self._root_page
            self._root_page = parent.children[0]
            self._height -= 1
            self._pool.free_page(old_root)

    def _borrow_from_left(self, node: _Node, left: _Node, parent: _Node,
                          child_index: int) -> None:
        if node.is_leaf:
            node.keys.insert(0, left.keys.pop())
            node.values.insert(0, left.values.pop())
            parent.keys[child_index - 1] = node.keys[0]
        else:
            node.keys.insert(0, parent.keys[child_index - 1])
            parent.keys[child_index - 1] = left.keys.pop()
            node.children.insert(0, left.children.pop())
        self._store(left)
        self._store(node)
        self._store(parent)

    def _borrow_from_right(self, node: _Node, right: _Node, parent: _Node,
                           child_index: int) -> None:
        if node.is_leaf:
            node.keys.append(right.keys.pop(0))
            node.values.append(right.values.pop(0))
            parent.keys[child_index] = right.keys[0]
        else:
            node.keys.append(parent.keys[child_index])
            parent.keys[child_index] = right.keys.pop(0)
            node.children.append(right.children.pop(0))
        self._store(right)
        self._store(node)
        self._store(parent)

    def _merge(self, left: _Node, right: _Node, parent: _Node,
               separator_index: int) -> None:
        """Merge ``right`` into ``left``; both are children of ``parent``
        separated by ``parent.keys[separator_index]``."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[separator_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[separator_index]
        del parent.children[separator_index + 1]
        self._store(left)
        self._store(parent)
        # Reclaim the merged-away node's page for future allocations.
        self._pool.free_page(right.page_no)

    # -- maintenance ------------------------------------------------------

    def flush(self) -> None:
        self._write_meta()
        self._pool.flush_all()

    def check_invariants(self) -> None:
        """Validate structural invariants; raises :class:`BPlusTreeError`
        on violation.  Used by property-based tests."""
        count = self._check_node(self._root_page, MIN_KEY, MAX_KEY,
                                 depth=1, is_root=True)
        if count != self._size:
            raise BPlusTreeError(f"size mismatch: counted {count}, recorded {self._size}")
        # All leaves must be chained in key order.
        previous: Optional[Key] = None
        for key, _value in self.items():
            if previous is not None and key <= previous:
                raise BPlusTreeError(f"leaf chain out of order: {previous} !< {key}")
            previous = key

    def _check_node(self, page_no: int, lo: Key, hi: Key, depth: int,
                    is_root: bool) -> int:
        node = self._load(page_no)
        if node.is_leaf:
            if depth != self._height:
                raise BPlusTreeError(
                    f"leaf {page_no} at depth {depth}, expected {self._height}")
            if not is_root and len(node.keys) < LEAF_MIN:
                raise BPlusTreeError(f"leaf {page_no} underfull: {len(node.keys)}")
            for key in node.keys:
                if not lo <= key <= hi:
                    raise BPlusTreeError(f"leaf key {key} outside ({lo}, {hi})")
            if node.keys != sorted(node.keys):
                raise BPlusTreeError(f"leaf {page_no} keys unsorted")
            return len(node.keys)
        if not is_root and len(node.keys) < INTERNAL_MIN:
            raise BPlusTreeError(f"internal {page_no} underfull: {len(node.keys)}")
        if is_root and not node.keys:
            raise BPlusTreeError("internal root has no keys")
        if node.keys != sorted(node.keys):
            raise BPlusTreeError(f"internal {page_no} keys unsorted")
        total = 0
        bounds = [lo] + node.keys + [hi]
        for i, child in enumerate(node.children):
            total += self._check_node(child, bounds[i], bounds[i + 1],
                                      depth + 1, is_root=False)
        return total
