"""Storage engine substrate: slotted pages, buffer pool, heap files,
B+-trees, and the tweet metadata database of Section IV-A.
"""

from .bptree import BPlusTree, BPlusTreeError, DuplicateKeyError
from .heapfile import HeapFile
from .iostats import IOStats, StatsRegistry
from .metadata import MetadataDatabase, MetadataError
from .page import PAGE_SIZE, Page, PageError, SlottedPage
from .pager import BufferPool, FilePager, MemoryPager, PagerError
from .records import NO_REF, RECORD_SIZE, TweetRecord, make_record

__all__ = [
    "BPlusTree",
    "BPlusTreeError",
    "BufferPool",
    "DuplicateKeyError",
    "FilePager",
    "HeapFile",
    "IOStats",
    "MemoryPager",
    "MetadataDatabase",
    "MetadataError",
    "NO_REF",
    "PAGE_SIZE",
    "Page",
    "PageError",
    "PagerError",
    "RECORD_SIZE",
    "SlottedPage",
    "StatsRegistry",
    "TweetRecord",
    "make_record",
]
