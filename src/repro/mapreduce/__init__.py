"""Mini MapReduce engine (Hadoop stand-in).

Jobs declare mapper/combiner/reducer factories and a partitioner; the
runtime executes map tasks, a sort-based shuffle with k-way merge, and
reduce tasks — optionally on a thread pool — with Hadoop-style counters.
"""

from .counters import Counters
from .io import DFSLineInputFormat, load_job_inputs, write_job_output
from .job import Job
from .lib import (
    IdentityMapper,
    IdentityReducer,
    MaxReducer,
    SumReducer,
    TokenCountMapper,
)
from .runtime import JobResult, MapReduceRuntime, run_job
from .types import (
    Emitter,
    HashPartitioner,
    Mapper,
    Partitioner,
    Reducer,
    TaskContext,
)

__all__ = [
    "Counters",
    "DFSLineInputFormat",
    "Emitter",
    "HashPartitioner",
    "IdentityMapper",
    "IdentityReducer",
    "Job",
    "JobResult",
    "MapReduceRuntime",
    "Mapper",
    "MaxReducer",
    "Partitioner",
    "Reducer",
    "SumReducer",
    "TaskContext",
    "TokenCountMapper",
    "load_job_inputs",
    "write_job_output",
    "run_job",
]
