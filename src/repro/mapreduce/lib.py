"""Reusable mappers and reducers (the equivalent of Hadoop's
``mapreduce.lib``): word count, identity, sum — used in tests and by the
data-statistics jobs (e.g. the Table II keyword-frequency job).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from .types import Emitter, Mapper, Reducer, TaskContext


class IdentityMapper(Mapper):
    """Passes records through unchanged."""

    def map(self, key: Hashable, value: Any, emit: Emitter,
            context: TaskContext) -> None:
        emit(key, value)


class IdentityReducer(Reducer):
    """Emits each (key, value) of the group unchanged."""

    def reduce(self, key: Hashable, values: Iterable[Any], emit: Emitter,
               context: TaskContext) -> None:
        for value in values:
            emit(key, value)


class TokenCountMapper(Mapper):
    """Emits ``(token, 1)`` for every token produced by an analyzer.

    The value of each input record is expected to be raw text; the
    analyzer is injected so tests can use a trivial one.
    """

    def __init__(self, analyzer) -> None:
        self._analyzer = analyzer

    def map(self, key: Hashable, value: Any, emit: Emitter,
            context: TaskContext) -> None:
        for token in self._analyzer.analyze(value):
            emit(token, 1)


class SumReducer(Reducer):
    """Sums integer values per key (usable as a combiner too)."""

    def reduce(self, key: Hashable, values: Iterable[Any], emit: Emitter,
               context: TaskContext) -> None:
        emit(key, sum(values))


class MaxReducer(Reducer):
    """Keeps the maximum value per key."""

    def reduce(self, key: Hashable, values: Iterable[Any], emit: Emitter,
               context: TaskContext) -> None:
        emit(key, max(values))
