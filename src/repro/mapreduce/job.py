"""Job configuration for the MapReduce engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Optional, Sequence, Tuple

from .types import HashPartitioner, Mapper, Partitioner, Reducer


@dataclass
class Job:
    """Everything needed to run one MapReduce job.

    Parameters mirror a Hadoop job configuration:

    * ``mapper_factory`` / ``reducer_factory`` — zero-arg callables
      producing fresh :class:`Mapper` / :class:`Reducer` instances, one
      per task (tasks must not share mutable state);
    * ``combiner_factory`` — optional map-side reducer;
    * ``inputs`` — the input records as ``(key, value)`` pairs (an
      in-memory stand-in for input splits read from the DFS);
    * ``num_map_tasks`` / ``num_reduce_tasks`` — task parallelism;
    * ``partitioner`` — key routing, default hash partitioning.
    """

    name: str
    mapper_factory: Any
    reducer_factory: Any
    inputs: Sequence[Tuple[Hashable, Any]]
    combiner_factory: Optional[Any] = None
    num_map_tasks: int = 4
    num_reduce_tasks: int = 4
    partitioner: Partitioner = field(default_factory=HashPartitioner)

    def validate(self) -> None:
        if self.num_map_tasks < 1:
            raise ValueError(f"num_map_tasks must be >= 1: {self.num_map_tasks}")
        if self.num_reduce_tasks < 1:
            raise ValueError(f"num_reduce_tasks must be >= 1: {self.num_reduce_tasks}")
        probe = self.mapper_factory()
        if not isinstance(probe, Mapper):
            raise TypeError(f"mapper_factory must build Mapper, got {type(probe)!r}")
        probe = self.reducer_factory()
        if not isinstance(probe, Reducer):
            raise TypeError(f"reducer_factory must build Reducer, got {type(probe)!r}")

    def input_splits(self) -> Iterable[Sequence[Tuple[Hashable, Any]]]:
        """Partition the input into ``num_map_tasks`` contiguous splits.

        Contiguous (rather than round-robin) splitting mirrors how HDFS
        input splits map to file blocks.
        """
        records = list(self.inputs)
        if not records:
            yield []
            return
        tasks = min(self.num_map_tasks, len(records))
        split_size = (len(records) + tasks - 1) // tasks
        for start in range(0, len(records), split_size):
            yield records[start:start + split_size]
