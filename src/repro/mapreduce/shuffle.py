"""The sort-based shuffle between map and reduce.

Hadoop guarantees that each reduce task sees its keys in sorted order —
the property the paper's index construction leans on: "the Hadoop
MapReduce framework can guarantee that the key of the inverted index is
sorted", so ``(geohash, term)`` postings for nearby cells land in
contiguous output (Section IV-B2).

Map tasks spill partitioned, sorted runs; each reduce partition merges its
runs with a k-way merge and groups equal keys.
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable, Iterator, List, Tuple

KeyValue = Tuple[Hashable, Any]


class MapSpill:
    """Sorted output of one map task for one reduce partition."""

    __slots__ = ("pairs",)

    def __init__(self, pairs: List[KeyValue]) -> None:
        # Sort by key only: values may not be comparable, and Hadoop
        # sorts on keys (secondary sort would use composite keys).
        self.pairs = sorted(pairs, key=lambda pair: pair[0])

    def __len__(self) -> int:
        return len(self.pairs)

    def approx_bytes(self) -> int:
        """Rough shuffle volume estimate used for the shuffle counter."""
        return sum(len(repr(key)) + len(repr(value)) for key, value in self.pairs)


def merge_spills(spills: List[MapSpill]) -> Iterator[KeyValue]:
    """K-way merge of sorted spills into one sorted (key, value) stream.

    Ties across spills are broken by spill index, keeping the merge
    stable and the stream deterministic.
    """
    streams = []
    for index, spill in enumerate(spills):
        if spill.pairs:
            streams.append(
                ((pair[0], index, position, pair[1])
                 for position, pair in enumerate(spill.pairs)))
    for key, _index, _position, value in heapq.merge(*streams):
        yield (key, value)


def group_by_key(stream: Iterator[KeyValue]) -> Iterator[Tuple[Hashable, List[Any]]]:
    """Group a key-sorted stream into ``(key, [values...])`` runs."""
    current_key: Any = None
    values: List[Any] = []
    first = True
    for key, value in stream:
        if first:
            current_key = key
            values = [value]
            first = False
        elif key == current_key:
            values.append(value)
        else:
            yield (current_key, values)
            current_key = key
            values = [value]
    if not first:
        yield (current_key, values)
