"""Core MapReduce abstractions: mappers, reducers, partitioners.

User code subclasses :class:`Mapper` and :class:`Reducer` exactly as with
Hadoop's Java API — the paper's Algorithms 2 and 3 translate line-by-line
into :class:`repro.index.builder.IndexMapper` / ``IndexReducer``.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Tuple

#: Emitted intermediate/final pairs.
KeyValue = Tuple[Hashable, Any]

#: ``emit(key, value)`` callback handed to map/reduce functions.
Emitter = Callable[[Hashable, Any], None]


class Mapper:
    """Transforms one input record into zero or more (key, value) pairs."""

    def setup(self, context: "TaskContext") -> None:
        """Called once per map task before any records."""

    def map(self, key: Hashable, value: Any, emit: Emitter,
            context: "TaskContext") -> None:
        raise NotImplementedError

    def cleanup(self, emit: Emitter, context: "TaskContext") -> None:
        """Called once per map task after all records (for in-mapper
        combining patterns)."""


class Reducer:
    """Reduces all values sharing a key into zero or more output pairs."""

    def setup(self, context: "TaskContext") -> None:
        """Called once per reduce task."""

    def reduce(self, key: Hashable, values: Iterable[Any], emit: Emitter,
               context: "TaskContext") -> None:
        raise NotImplementedError

    def cleanup(self, emit: Emitter, context: "TaskContext") -> None:
        """Called once per reduce task after the last group."""


class Partitioner:
    """Routes an intermediate key to a reduce partition."""

    def partition(self, key: Hashable, num_partitions: int) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Default partitioner: stable hash of the key modulo partitions.

    Python's ``hash`` on strings is salted per process, which would make
    partition assignment non-deterministic across runs; a small FNV-1a
    over ``repr(key)`` keeps runs reproducible.
    """

    def partition(self, key: Hashable, num_partitions: int) -> int:
        text = repr(key).encode()
        value = 0xCBF29CE484222325
        for byte in text:
            value ^= byte
            value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return value % num_partitions


class TaskContext:
    """Per-task handle exposing the job's counters and task identity."""

    def __init__(self, task_id: str, counters) -> None:
        self.task_id = task_id
        self.counters = counters
