"""The MapReduce job runner.

Executes a :class:`~repro.mapreduce.job.Job` through the full pipeline:

1. **map** — each map task runs the mapper over its input split and
   partitions emitted pairs by the job's partitioner;
2. **combine** — if configured, the combiner runs over each map task's
   sorted partition output (map-side aggregation);
3. **shuffle** — per-partition sorted spills are merged with a k-way
   merge, yielding each reduce task a key-sorted stream;
4. **reduce** — groups of equal keys are reduced; outputs are collected
   per partition in key order (Hadoop's sorted-output guarantee that
   Section IV-B2 relies on).

Map and reduce tasks can run on a thread pool (``workers > 1``) to model
the paper's multi-node cluster; results are deterministic either way.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Sequence, Tuple

from .. import obs
from .counters import Counters
from .job import Job
from .shuffle import MapSpill, group_by_key, merge_spills
from .types import TaskContext

KeyValue = Tuple[Hashable, Any]


@dataclass
class JobResult:
    """Outcome of a job run."""

    name: str
    outputs: List[List[KeyValue]]  # one key-sorted list per reduce partition
    counters: Counters = field(default_factory=Counters)

    def all_pairs(self) -> List[KeyValue]:
        """All output pairs, globally sorted by key (Hadoop's part files
        are each sorted; total order additionally needs a merge, which we
        provide for convenience)."""
        merged: List[KeyValue] = []
        for partition in self.outputs:
            merged.extend(partition)
        merged.sort(key=lambda pair: pair[0])
        return merged

    def as_dict(self) -> Dict[Hashable, Any]:
        """Outputs as a dict (requires unique output keys)."""
        result: Dict[Hashable, Any] = {}
        for key, value in self.all_pairs():
            if key in result:
                raise ValueError(f"duplicate output key: {key!r}")
            result[key] = value
        return result


class MapReduceRuntime:
    """Runs jobs with a configurable number of worker threads."""

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        self.workers = workers

    def run(self, job: Job) -> JobResult:
        job.validate()
        counters = Counters()
        splits = list(job.input_splits())

        with obs.trace("mapreduce.job", job=job.name, splits=len(splits),
                       reduce_tasks=job.num_reduce_tasks,
                       workers=self.workers):
            if self.workers == 1:
                map_results = [
                    self._run_map_task(job, counters, task_no, split)
                    for task_no, split in enumerate(splits)
                ]
            else:
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    map_results = list(pool.map(
                        lambda args: self._run_map_task(job, counters, *args),
                        list(enumerate(splits))))

            # Gather spills per reduce partition.
            with obs.trace("mapreduce.shuffle", job=job.name) as shuffle_span:
                partitions: List[List[MapSpill]] = [
                    [] for _ in range(job.num_reduce_tasks)]
                shuffle_bytes = 0
                for spills in map_results:
                    for partition_no, spill in enumerate(spills):
                        size = spill.approx_bytes()
                        counters.increment("shuffle_bytes", size)
                        shuffle_bytes += size
                        partitions[partition_no].append(spill)
                shuffle_span.set(bytes=shuffle_bytes)

            if self.workers == 1:
                outputs = [
                    self._run_reduce_task(job, counters, task_no, spills)
                    for task_no, spills in enumerate(partitions)
                ]
            else:
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    outputs = list(pool.map(
                        lambda args: self._run_reduce_task(job, counters, *args),
                        list(enumerate(partitions))))

        # Mirror the job's counters into the metrics registry so one dump
        # covers storage, index and MapReduce alike.
        if obs.is_enabled():
            obs.merge_counter_dict(obs.get_registry(), "mapreduce",
                                   counters.snapshot())
        return JobResult(name=job.name, outputs=outputs, counters=counters)

    # -- map side ------------------------------------------------------------

    def _run_map_task(self, job: Job, counters: Counters, task_no: int,
                      split: Sequence[KeyValue]) -> List[MapSpill]:
        context = TaskContext(f"map-{task_no:04d}", counters)
        mapper = job.mapper_factory()
        buckets: List[List[KeyValue]] = [[] for _ in range(job.num_reduce_tasks)]

        def emit(key: Hashable, value: Any) -> None:
            counters.increment("map_output_records")
            partition = job.partitioner.partition(key, job.num_reduce_tasks)
            buckets[partition].append((key, value))

        with obs.trace("mapreduce.map", job=job.name, task=task_no,
                       records=len(split)):
            mapper.setup(context)
            for key, value in split:
                counters.increment("map_input_records")
                mapper.map(key, value, emit, context)
            mapper.cleanup(emit, context)

            spills = [MapSpill(bucket) for bucket in buckets]
            if job.combiner_factory is not None:
                spills = [self._combine(job, counters, task_no, spill)
                          for spill in spills]
        return spills

    def _combine(self, job: Job, counters: Counters, task_no: int,
                 spill: MapSpill) -> MapSpill:
        context = TaskContext(f"combine-{task_no:04d}", counters)
        combiner = job.combiner_factory()
        combined: List[KeyValue] = []

        def emit(key: Hashable, value: Any) -> None:
            counters.increment("combine_output_records")
            combined.append((key, value))

        combiner.setup(context)
        for key, values in group_by_key(iter(spill.pairs)):
            combiner.reduce(key, values, emit, context)
        combiner.cleanup(emit, context)
        return MapSpill(combined)

    # -- reduce side -----------------------------------------------------------

    def _run_reduce_task(self, job: Job, counters: Counters, task_no: int,
                         spills: List[MapSpill]) -> List[KeyValue]:
        context = TaskContext(f"reduce-{task_no:04d}", counters)
        reducer = job.reducer_factory()
        output: List[KeyValue] = []

        def emit(key: Hashable, value: Any) -> None:
            counters.increment("reduce_output_records")
            output.append((key, value))

        with obs.trace("mapreduce.reduce", job=job.name, task=task_no,
                       spills=len(spills)) as span:
            reducer.setup(context)
            groups = 0
            for key, values in group_by_key(merge_spills(spills)):
                counters.increment("reduce_input_groups")
                groups += 1
                reducer.reduce(key, values, emit, context)
            reducer.cleanup(emit, context)
            span.set(groups=groups, output_records=len(output))
        return output


def run_job(job: Job, workers: int = 1) -> JobResult:
    """Convenience wrapper: run one job on a fresh runtime."""
    return MapReduceRuntime(workers=workers).run(job)
