"""Job counters, in the style of Hadoop's counter framework."""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict


class Counters:
    """Thread-safe named counters grouped by component.

    The runtime maintains the standard counters (``map_input_records``,
    ``map_output_records``, ``combine_output_records``,
    ``shuffle_bytes``, ``reduce_input_groups``, ``reduce_output_records``);
    user code can increment its own via :meth:`increment`.
    """

    def __init__(self) -> None:
        self._values: Dict[str, int] = defaultdict(int)
        self._lock = threading.Lock()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._values[name] += amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._values.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._values)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.snapshot().items()))
        return f"Counters({parts})"
