"""DFS input/output connectors for MapReduce jobs.

Closes the loop of Figure 3: the crawled corpus lives in the DFS as
JSON-lines files, and MapReduce jobs read their input splits from those
files (one split per block, Hadoop's alignment) and can write their
outputs back.

* :class:`DFSLineInputFormat` — splits a set of DFS files into
  block-aligned line splits and materialises each split's records;
* :func:`load_job_inputs` — convenience: ``(path, line_no) -> line``
  records for a whole directory, ready to hand to a
  :class:`~repro.mapreduce.job.Job`;
* :func:`write_job_output` — write a job's partition outputs back to
  DFS part files as tab-separated lines.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Sequence, Tuple

from ..dfs.cluster import DFSCluster


class DFSLineInputFormat:
    """Block-aligned line splits over DFS files.

    A record spanning a block boundary belongs to the split where it
    *starts* (Hadoop's convention); the following split skips its first
    partial line.
    """

    def __init__(self, cluster: DFSCluster) -> None:
        self.cluster = cluster

    def splits(self, paths: Sequence[str]) -> List[Tuple[str, int, int]]:
        """Compute ``(path, start_offset, end_offset)`` splits, one per
        block of each file."""
        result = []
        block_size = self.cluster.block_size
        for path in paths:
            size = self.cluster.file_size(path)
            offset = 0
            while offset < size:
                end = min(offset + block_size, size)
                result.append((path, offset, end))
                offset = end
        return result

    def read_split(self, split: Tuple[str, int, int]) -> List[str]:
        """Materialise the complete lines belonging to a split."""
        path, start, end = split
        reader = self.cluster.open(path)
        # Read to the end of the file but stop emitting once a line
        # *starts* at or beyond `end`.
        size = reader.size
        data = reader.pread(start, size - start)
        text = data.decode()
        lines: List[str] = []
        position = start
        buffered = text.splitlines(keepends=True)
        # Skip the first chunk only when the split begins mid-line (the
        # previous split owns the spanning line).  A split starting right
        # after a newline owns its first line.
        skip_first = start > 0 and reader.pread(start - 1, 1) != b"\n"
        for raw in buffered:
            line_start = position
            position += len(raw.encode())
            if skip_first:
                # This line started in the previous block.
                skip_first = False
                continue
            if line_start >= end:
                break
            line = raw.rstrip("\n")
            if line:
                lines.append(line)
        return lines

    def read_all(self, paths: Sequence[str]) -> List[Tuple[Hashable, str]]:
        """All records of all files as ``((path, index), line)`` pairs in
        split order — exactly the union of every split's lines."""
        records: List[Tuple[Hashable, str]] = []
        for split in self.splits(paths):
            for index, line in enumerate(self.read_split(split)):
                records.append(((split[0], split[1], index), line))
        return records


def load_job_inputs(cluster: DFSCluster, prefix: str
                    ) -> List[Tuple[Hashable, str]]:
    """Read every file under ``prefix`` into MapReduce input records."""
    paths = cluster.list_files(prefix)
    return DFSLineInputFormat(cluster).read_all(paths)


def write_job_output(cluster: DFSCluster, prefix: str,
                     outputs: Iterable[Sequence[Tuple[Hashable, object]]]
                     ) -> List[str]:
    """Write each partition's (key, value) pairs to a DFS part file as
    tab-separated lines; returns the written paths."""
    paths = []
    for partition_no, pairs in enumerate(outputs):
        path = f"{prefix}/part-{partition_no:05d}"
        with cluster.create(path) as writer:
            for key, value in pairs:
                writer.write(f"{key}\t{value}\n".encode())
        paths.append(path)
    return paths
