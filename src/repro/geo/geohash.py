"""Geohash encoding and decoding.

The paper (Section IV-B1) derives its encoding from a full-height quadtree:
each level appends two bits to the parent code, and groups of five bits are
mapped to the Base32 alphabet that omits ``a``, ``i``, ``l`` and ``o``.  The
result coincides with the standard geohash scheme — an interleaving of
longitude and latitude bisection bits, longitude first — which is what we
implement here, from scratch (no external geohash library).

The paper's worked example — the coordinate ``(-23.994140625,
-46.23046875)`` encodes to ``6gxp`` at length 4 — is covered by a unit test.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

#: The geohash Base32 alphabet (digits plus letters, excluding a, i, l, o).
BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"

_CHAR_TO_VALUE = {char: value for value, char in enumerate(BASE32)}

#: Bits of precision per geohash character.
BITS_PER_CHAR = 5

#: Longest supported geohash (12 chars resolves to roughly 3.7 cm x 1.8 cm).
MAX_LENGTH = 12


class GeohashError(ValueError):
    """Raised for malformed geohash strings or out-of-range coordinates."""


def _validate_coordinate(lat: float, lon: float) -> None:
    if not -90.0 <= lat <= 90.0:
        raise GeohashError(f"latitude out of range [-90, 90]: {lat!r}")
    if not -180.0 <= lon <= 180.0:
        raise GeohashError(f"longitude out of range [-180, 180]: {lon!r}")


def _validate_length(length: int) -> None:
    if not 1 <= length <= MAX_LENGTH:
        raise GeohashError(f"geohash length must be in [1, {MAX_LENGTH}]: {length!r}")


def encode(lat: float, lon: float, length: int = 4) -> str:
    """Encode a latitude/longitude pair to a geohash of ``length`` chars.

    ``length`` follows the paper's "Geohash configuration": length 1 is the
    coarsest grid evaluated and length 4 the finest (Section VI-B2).
    """
    _validate_coordinate(lat, lon)
    _validate_length(length)
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    chars: List[str] = []
    value = 0
    bit = 0
    even = True  # geohash interleaves longitude bits first
    while len(chars) < length:
        if even:
            mid = (lon_lo + lon_hi) / 2.0
            if lon >= mid:
                value = (value << 1) | 1
                lon_lo = mid
            else:
                value <<= 1
                lon_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2.0
            if lat >= mid:
                value = (value << 1) | 1
                lat_lo = mid
            else:
                value <<= 1
                lat_hi = mid
        even = not even
        bit += 1
        if bit == BITS_PER_CHAR:
            chars.append(BASE32[value])
            value = 0
            bit = 0
    return "".join(chars)


def decode_cell(geohash: str) -> Tuple[float, float, float, float]:
    """Decode a geohash to its bounding cell.

    Returns ``(min_lat, min_lon, max_lat, max_lon)``.
    """
    if not geohash:
        raise GeohashError("empty geohash")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    even = True
    for char in geohash:
        try:
            value = _CHAR_TO_VALUE[char]
        except KeyError:
            raise GeohashError(f"invalid geohash character {char!r} in {geohash!r}") from None
        for shift in range(BITS_PER_CHAR - 1, -1, -1):
            bit = (value >> shift) & 1
            if even:
                mid = (lon_lo + lon_hi) / 2.0
                if bit:
                    lon_lo = mid
                else:
                    lon_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2.0
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    return (lat_lo, lon_lo, lat_hi, lon_hi)


def decode(geohash: str) -> Tuple[float, float]:
    """Decode a geohash to the centre point of its cell."""
    lat_lo, lon_lo, lat_hi, lon_hi = decode_cell(geohash)
    return ((lat_lo + lat_hi) / 2.0, (lon_lo + lon_hi) / 2.0)


def cell_dimensions_degrees(length: int) -> Tuple[float, float]:
    """Return ``(lat_span, lon_span)`` in degrees of a length-``length`` cell."""
    _validate_length(length)
    total_bits = length * BITS_PER_CHAR
    lon_bits = (total_bits + 1) // 2
    lat_bits = total_bits // 2
    return (180.0 / (1 << lat_bits), 360.0 / (1 << lon_bits))


def neighbors(geohash: str) -> List[str]:
    """Return the up-to-eight neighbouring cells of ``geohash``.

    Neighbours are computed by decoding the cell, stepping one cell width in
    each compass direction and re-encoding; cells falling off the poles are
    dropped, and longitudes wrap around the antimeridian.
    """
    lat_lo, lon_lo, lat_hi, lon_hi = decode_cell(geohash)
    lat_span = lat_hi - lat_lo
    lon_span = lon_hi - lon_lo
    center_lat = (lat_lo + lat_hi) / 2.0
    center_lon = (lon_lo + lon_hi) / 2.0
    result: List[str] = []
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            if dx == 0 and dy == 0:
                continue
            lat = center_lat + dy * lat_span
            lon = center_lon + dx * lon_span
            if not -90.0 <= lat <= 90.0:
                continue
            if lon > 180.0:
                lon -= 360.0
            elif lon < -180.0:
                lon += 360.0
            neighbor = encode(lat, lon, len(geohash))
            if neighbor != geohash and neighbor not in result:
                result.append(neighbor)
    return result


def expand(geohash: str) -> List[str]:
    """Return ``geohash`` plus its neighbours (a 3x3 search block)."""
    return [geohash] + neighbors(geohash)


def children(geohash: str) -> Iterator[str]:
    """Iterate over the 32 child cells one character longer than ``geohash``."""
    if len(geohash) >= MAX_LENGTH:
        raise GeohashError(f"cannot extend geohash beyond length {MAX_LENGTH}")
    for char in BASE32:
        yield geohash + char


def is_prefix_of(prefix: str, geohash: str) -> bool:
    """True when cell ``prefix`` spatially contains cell ``geohash``."""
    return geohash.startswith(prefix)


def common_prefix(a: str, b: str) -> str:
    """Longest common prefix of two geohashes (their smallest shared cell)."""
    end = 0
    for ca, cb in zip(a, b):
        if ca != cb:
            break
        end += 1
    return a[:end]
