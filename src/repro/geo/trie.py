"""A prefix tree (trie) over geohash strings.

"Points in proximity mostly will have the same prefix so that a trie, or
prefix tree could be used for indexing the geohash" (Section IV-B1).  The
forward index uses this structure to answer "which indexed (geohash, term)
cells fall under this query prefix" without scanning every entry.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")


class _TrieNode(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode[V]"] = {}
        self.value: Optional[V] = None
        self.has_value = False


class GeohashTrie(Generic[V]):
    """Maps geohash strings to values with prefix-walk queries."""

    def __init__(self) -> None:
        self._root: _TrieNode[V] = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: str) -> bool:
        node = self._find(key)
        return node is not None and node.has_value

    def put(self, key: str, value: V) -> None:
        """Insert or replace the value stored at ``key``."""
        if not key:
            raise ValueError("empty geohash key")
        node = self._root
        for char in key:
            node = node.children.setdefault(char, _TrieNode())
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def get(self, key: str, default: Optional[V] = None) -> Optional[V]:
        node = self._find(key)
        if node is not None and node.has_value:
            return node.value
        return default

    def remove(self, key: str) -> bool:
        """Remove ``key``; returns True if it was present.

        Empty branches are pruned so the trie does not accumulate dead
        nodes under churn.
        """
        path: List[Tuple[_TrieNode[V], str]] = []
        node = self._root
        for char in key:
            child = node.children.get(char)
            if child is None:
                return False
            path.append((node, char))
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        for parent, char in reversed(path):
            child = parent.children[char]
            if child.has_value or child.children:
                break
            del parent.children[char]
        return True

    def _find(self, key: str) -> Optional[_TrieNode[V]]:
        node = self._root
        for char in key:
            node = node.children.get(char)  # type: ignore[assignment]
            if node is None:
                return None
        return node

    def items_under_prefix(self, prefix: str) -> Iterator[Tuple[str, V]]:
        """Yield ``(key, value)`` for every stored key extending ``prefix``
        (including ``prefix`` itself), in lexicographic — i.e. Z-order —
        key order."""
        start = self._find(prefix) if prefix else self._root
        if start is None:
            return
        stack: List[Tuple[str, _TrieNode[V]]] = [(prefix, start)]
        while stack:
            key, node = stack.pop()
            if node.has_value:
                assert node.value is not None or node.has_value
                yield (key, node.value)  # type: ignore[misc]
            for char in sorted(node.children, reverse=True):
                stack.append((key + char, node.children[char]))

    def keys_under_prefix(self, prefix: str) -> Iterator[str]:
        for key, _value in self.items_under_prefix(prefix):
            yield key

    def longest_prefix_value(self, key: str) -> Optional[V]:
        """Value stored at the longest stored prefix of ``key``, if any."""
        node = self._root
        best: Optional[V] = None
        if node.has_value:
            best = node.value
        for char in key:
            node = node.children.get(char)  # type: ignore[assignment]
            if node is None:
                break
            if node.has_value:
                best = node.value
        return best

    def __iter__(self) -> Iterator[str]:
        yield from self.keys_under_prefix("")
