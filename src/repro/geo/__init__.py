"""Spatial substrate: geohash encoding, Z-order curves, quadtrees, tries,
distance metrics and circle covers.

This package implements the spatial machinery of Section IV-B of the paper:
the quadtree-derived geohash encoding, the Z-order prefix covers used to
answer circle queries, and supporting structures.
"""

from .cover import circle_cover, cover_area_ratio, cover_cells_fully_inside
from .distance import (
    DEFAULT_METRIC,
    EARTH_RADIUS_KM,
    Metric,
    bounding_box,
    equirectangular_km,
    euclidean_degrees,
    haversine_km,
)
from .geohash import GeohashError, decode, decode_cell, encode, neighbors
from .quadtree import QuadTree, Rect
from .trie import GeohashTrie

__all__ = [
    "DEFAULT_METRIC",
    "EARTH_RADIUS_KM",
    "GeohashError",
    "GeohashTrie",
    "Metric",
    "QuadTree",
    "Rect",
    "bounding_box",
    "circle_cover",
    "cover_area_ratio",
    "cover_cells_fully_inside",
    "decode",
    "decode_cell",
    "encode",
    "equirectangular_km",
    "euclidean_degrees",
    "haversine_km",
    "neighbors",
]
