"""Z-order (Morton) curve utilities.

The paper uses the Z-order curve (citing Samet) to construct the set of
geohash prefixes covering a circular query region, and relies on the fact
that geohash order *is* Z-order: sorting cells by their code visits them
along the Morton curve, so all cells of a rectangular area occupy a small
number of contiguous code ranges.  This module provides the raw interleaved
encoding plus range decomposition used by :mod:`repro.geo.cover` and by the
index writer when laying out postings contiguously.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


def interleave(x: int, y: int, bits: int) -> int:
    """Interleave the low ``bits`` bits of ``x`` and ``y`` into a Morton code.

    Bit ``i`` of ``x`` lands at position ``2*i`` and bit ``i`` of ``y`` at
    ``2*i + 1``, matching the geohash convention of longitude-first.
    """
    if x < 0 or y < 0:
        raise ValueError("interleave requires non-negative inputs")
    if x >> bits or y >> bits:
        raise ValueError(f"inputs exceed {bits} bits: x={x}, y={y}")
    code = 0
    for i in range(bits):
        code |= ((x >> i) & 1) << (2 * i)
        code |= ((y >> i) & 1) << (2 * i + 1)
    return code


def deinterleave(code: int, bits: int) -> Tuple[int, int]:
    """Inverse of :func:`interleave`: split a Morton code back into (x, y)."""
    if code < 0:
        raise ValueError("Morton code must be non-negative")
    x = 0
    y = 0
    for i in range(bits):
        x |= ((code >> (2 * i)) & 1) << i
        y |= ((code >> (2 * i + 1)) & 1) << i
    return x, y


def lat_lon_to_cell(lat: float, lon: float, bits_per_axis: int) -> Tuple[int, int]:
    """Quantise a coordinate into integer grid cell indices.

    The grid has ``2**bits_per_axis`` cells along each axis over the full
    lat/lon domain.  The north pole / antimeridian edge maps into the last
    cell rather than overflowing.
    """
    n = 1 << bits_per_axis
    x = int((lon + 180.0) / 360.0 * n)
    y = int((lat + 90.0) / 180.0 * n)
    return (min(x, n - 1), min(y, n - 1))


def morton_code(lat: float, lon: float, bits_per_axis: int) -> int:
    """Morton code of a coordinate at ``bits_per_axis`` bits of resolution."""
    x, y = lat_lon_to_cell(lat, lon, bits_per_axis)
    return interleave(x, y, bits_per_axis)


def zorder_ranges(min_x: int, min_y: int, max_x: int, max_y: int,
                  bits: int, max_ranges: int = 64) -> List[Tuple[int, int]]:
    """Decompose the rectangle ``[min_x, max_x] x [min_y, max_y]`` (cell
    indices, inclusive) into at most ``max_ranges`` contiguous Morton-code
    ranges ``(lo, hi)`` that together cover it.

    The decomposition recursively splits quadrants, merging adjacent ranges
    when the budget is exceeded — exactly the trade-off the paper describes:
    covering the query region completely while keeping the number of
    contiguous slices (and hence seeks) small, at the price of some area
    outside the query region.
    """
    if min_x > max_x or min_y > max_y:
        return []
    ranges: List[Tuple[int, int]] = []

    def visit(qx: int, qy: int, level: int) -> None:
        """Visit the quadrant whose top-left cell is (qx, qy) at ``level``
        (level == bits means a single cell)."""
        size = 1 << (bits - level)
        lo_x, hi_x = qx, qx + size - 1
        lo_y, hi_y = qy, qy + size - 1
        if hi_x < min_x or lo_x > max_x or hi_y < min_y or lo_y > max_y:
            return
        if lo_x >= min_x and hi_x <= max_x and lo_y >= min_y and hi_y <= max_y:
            lo = interleave(qx >> (bits - level), qy >> (bits - level), level) << (2 * (bits - level))
            hi = lo + (1 << (2 * (bits - level))) - 1
            ranges.append((lo, hi))
            return
        if level == bits:
            code = interleave(qx, qy, bits)
            ranges.append((code, code))
            return
        half = size // 2
        # Z-order child visit order: (0,0) (1,0) (0,1) (1,1) in x,y offsets.
        visit(qx, qy, level + 1)
        visit(qx + half, qy, level + 1)
        visit(qx, qy + half, level + 1)
        visit(qx + half, qy + half, level + 1)

    visit(0, 0, 0)
    ranges.sort()
    merged = merge_ranges(ranges)
    while len(merged) > max_ranges:
        merged = _coalesce_smallest_gap(merged)
    return merged


def merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge sorted, possibly-adjacent ``(lo, hi)`` ranges."""
    merged: List[Tuple[int, int]] = []
    for lo, hi in ranges:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _coalesce_smallest_gap(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge the pair of consecutive ranges with the smallest gap between
    them, trading extra covered area for fewer contiguous slices."""
    if len(ranges) < 2:
        return ranges
    best = min(range(len(ranges) - 1), key=lambda i: ranges[i + 1][0] - ranges[i][1])
    out = list(ranges)
    out[best] = (out[best][0], out[best + 1][1])
    del out[best + 1]
    return out


def iter_codes(ranges: List[Tuple[int, int]]) -> Iterator[int]:
    """Iterate every Morton code contained in the given ranges."""
    for lo, hi in ranges:
        yield from range(lo, hi + 1)
