"""A point quadtree over latitude/longitude space.

The paper's geohash encoding is "generally derived from quadtree index"
(Section IV-B1): each split halves the parent cell along both axes and the
four children are labelled with two bits.  This module provides the actual
tree structure — used by the data generator for spatial sampling statistics,
by tests as an oracle for geohash cell containment, and available to users
as a standalone in-memory spatial index supporting range and circle queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from .distance import DEFAULT_METRIC, Metric, bounding_box

T = TypeVar("T")

Coordinate = Tuple[float, float]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in (lat, lon) space, inclusive bounds."""

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def contains(self, lat: float, lon: float) -> bool:
        return (self.min_lat <= lat <= self.max_lat
                and self.min_lon <= lon <= self.max_lon)

    def intersects(self, other: "Rect") -> bool:
        return not (other.max_lat < self.min_lat or other.min_lat > self.max_lat
                    or other.max_lon < self.min_lon or other.min_lon > self.max_lon)

    def center(self) -> Coordinate:
        return ((self.min_lat + self.max_lat) / 2.0,
                (self.min_lon + self.max_lon) / 2.0)

    def quadrants(self) -> Tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into (upper-left, upper-right, bottom-left, bottom-right),
        matching the paper's 00/10/01/11 child labelling."""
        mid_lat, mid_lon = self.center()
        return (
            Rect(mid_lat, self.min_lon, self.max_lat, mid_lon),  # upper-left
            Rect(mid_lat, mid_lon, self.max_lat, self.max_lon),  # upper-right
            Rect(self.min_lat, self.min_lon, mid_lat, mid_lon),  # bottom-left
            Rect(self.min_lat, mid_lon, mid_lat, self.max_lon),  # bottom-right
        )


WORLD = Rect(-90.0, -180.0, 90.0, 180.0)


@dataclass
class _Node(Generic[T]):
    bounds: Rect
    depth: int
    points: List[Tuple[float, float, T]] = field(default_factory=list)
    children: Optional[List["_Node[T]"]] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree(Generic[T]):
    """A bucketed point quadtree.

    Leaves hold up to ``capacity`` points and split (up to ``max_depth``)
    when they overflow.  Points lying exactly on split lines go to the
    quadrant whose ``contains`` test matches first, which keeps insertion
    deterministic.
    """

    def __init__(self, capacity: int = 16, max_depth: int = 20,
                 bounds: Rect = WORLD) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1: {max_depth}")
        self._capacity = capacity
        self._max_depth = max_depth
        self._root: _Node[T] = _Node(bounds, depth=0)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, lat: float, lon: float, value: T) -> None:
        """Insert a point; raises ValueError if outside the tree bounds."""
        if not self._root.bounds.contains(lat, lon):
            raise ValueError(f"point ({lat}, {lon}) outside bounds {self._root.bounds}")
        node = self._root
        while not node.is_leaf:
            node = self._child_for(node, lat, lon)
        node.points.append((lat, lon, value))
        self._size += 1
        if len(node.points) > self._capacity and node.depth < self._max_depth:
            self._split(node)

    def _child_for(self, node: _Node[T], lat: float, lon: float) -> _Node[T]:
        assert node.children is not None
        for child in node.children:
            if child.bounds.contains(lat, lon):
                return child
        # Floating-point edge: snap to the last quadrant.
        return node.children[-1]

    def _split(self, node: _Node[T]) -> None:
        node.children = [_Node(q, node.depth + 1) for q in node.bounds.quadrants()]
        points, node.points = node.points, []
        for lat, lon, value in points:
            self._child_for(node, lat, lon).points.append((lat, lon, value))

    def query_rect(self, rect: Rect) -> Iterator[Tuple[float, float, T]]:
        """Yield all points inside ``rect``."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.bounds.intersects(rect):
                continue
            if node.is_leaf:
                for lat, lon, value in node.points:
                    if rect.contains(lat, lon):
                        yield (lat, lon, value)
            else:
                assert node.children is not None
                stack.extend(node.children)

    def query_circle(self, center: Coordinate, radius_km: float,
                     metric: Metric = DEFAULT_METRIC) -> Iterator[Tuple[float, float, T]]:
        """Yield all points within ``radius_km`` of ``center`` under ``metric``.

        Prunes with the bounding box of the circle, then verifies with the
        exact metric.
        """
        min_lat, min_lon, max_lat, max_lon = bounding_box(center, radius_km)
        rect = Rect(min_lat, min_lon, max_lat, max_lon)
        for lat, lon, value in self.query_rect(rect):
            if metric(center, (lat, lon)) <= radius_km:
                yield (lat, lon, value)

    def depth(self) -> int:
        """Maximum depth of any node currently in the tree."""
        best = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            best = max(best, node.depth)
            if node.children is not None:
                stack.extend(node.children)
        return best

    def __iter__(self) -> Iterator[Tuple[float, float, T]]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.points
            else:
                assert node.children is not None
                stack.extend(node.children)
