"""Distance metrics between geographic coordinates.

The paper measures query radii in kilometres, while its problem definition
uses the Euclidean distance between locations (footnote 4 notes that the
techniques adapt to other metrics).  We therefore expose several metrics
behind a common callable signature ``metric(a, b) -> km`` where ``a`` and
``b`` are ``(lat, lon)`` pairs in degrees:

* :func:`haversine_km` — great-circle distance, the library default since
  query radii are expressed in kilometres;
* :func:`equirectangular_km` — fast approximation, accurate for the small
  (<100 km) radii used in the paper's experiments;
* :func:`euclidean_degrees` — the paper's literal metric, in degrees.

All query-processing code takes a metric parameter so callers can swap in
any of these (or their own).
"""

from __future__ import annotations

import math
import struct
from typing import Any, Callable, List, Sequence, Tuple

from repro import columnar

Coordinate = Tuple[float, float]
Metric = Callable[[Coordinate, Coordinate], float]

#: Mean Earth radius in kilometres (IUGG value).
EARTH_RADIUS_KM = 6371.0088

#: Kilometres per degree of latitude (and of longitude at the equator).
KM_PER_DEGREE = EARTH_RADIUS_KM * math.pi / 180.0


def haversine_km(a: Coordinate, b: Coordinate) -> float:
    """Great-circle distance between two (lat, lon) points, in kilometres."""
    lat1, lon1 = a
    lat2, lon2 = b
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    # Clamp against floating-point drift before asin.
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def haversine_km_from(origin: Coordinate) -> Callable[[Coordinate], float]:
    """A one-argument haversine closure with the origin's trigonometry
    hoisted out of the per-candidate loop.

    ``haversine_km_from(q)(p)`` is bitwise-identical to
    ``haversine_km(q, p)``: the hoisted ``phi1``/``cos(phi1)`` are the
    very same intermediates the two-argument form computes, and every
    remaining operation keeps its order and association.
    """
    lat1, lon1 = origin
    phi1 = math.radians(lat1)
    cos_phi1 = math.cos(phi1)
    radians = math.radians
    sin = math.sin
    cos = math.cos

    def distance(b: Coordinate) -> float:
        lat2, lon2 = b
        phi2 = radians(lat2)
        dphi = radians(lat2 - lat1)
        dlam = radians(lon2 - lon1)
        h = sin(dphi / 2.0) ** 2 + cos_phi1 * cos(phi2) * sin(dlam / 2.0) ** 2
        h = min(1.0, max(0.0, h))
        return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))

    return distance


def _haversine_batch_python(origin: Coordinate, lats: Sequence[float],
                            lons: Sequence[float]) -> List[float]:
    distance = haversine_km_from(origin)
    return [distance((lat, lon)) for lat, lon in zip(lats, lons)]


def _haversine_batch_numpy(np: Any, origin: Coordinate,
                           lats: Sequence[float],
                           lons: Sequence[float]) -> Any:
    lat1, lon1 = origin
    phi1 = math.radians(lat1)
    cos_phi1 = math.cos(phi1)
    lat2 = np.asarray(lats, dtype=np.float64)
    lon2 = np.asarray(lons, dtype=np.float64)
    phi2 = np.radians(lat2)
    dphi = np.radians(lat2 - lat1)
    dlam = np.radians(lon2 - lon1)
    h = np.sin(dphi / 2.0) ** 2 + cos_phi1 * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    h = np.minimum(1.0, np.maximum(0.0, h))
    root = np.sqrt(h)
    # np.arcsin is allowed to differ from math.asin in the last ULP (it
    # does on SIMD builds), so the final asin runs per element through
    # libm; everything before it is verified bitwise by the calibration
    # probe below.
    scale = 2.0 * EARTH_RADIUS_KM
    out = np.fromiter((math.asin(value) for value in root.tolist()),
                      dtype=np.float64, count=root.shape[0])
    return out * scale


#: Lazily computed: True once the numpy kernel proved bitwise equality
#: with :func:`haversine_km` on this host, False if the probe failed,
#: None before the first batched call.
_NUMPY_KERNEL_CALIBRATED: "bool | None" = None


def _calibrate_numpy_kernel(np: Any) -> bool:
    """Compare the complete numpy kernel against the scalar haversine,
    bit for bit, over a deterministic grid plus the edge cases (zero
    distance, near-antipodal clamp, poles).  Any mismatch — e.g. a
    platform whose vectorized sin/cos are not the libm ones — disables
    the numpy kernel for the whole process; the python fallback is then
    used even though numpy is importable.
    """
    import random

    rng = random.Random(0x5EED)
    origins = [(0.0, 0.0), (48.8566, 2.3522), (-89.9, 179.9), (90.0, -180.0)]
    lats = [rng.uniform(-90.0, 90.0) for _ in range(512)]
    lons = [rng.uniform(-180.0, 180.0) for _ in range(512)]
    for origin in origins:
        lats_case = lats + [origin[0], -origin[0], 90.0, -90.0]
        lons_case = lons + [origin[1], 180.0 - origin[1], 0.0, 0.0]
        batch = _haversine_batch_numpy(np, origin, lats_case, lons_case)
        scalar = _haversine_batch_python(origin, lats_case, lons_case)
        for got, want in zip(batch.tolist(), scalar):
            if struct.pack("<d", got) != struct.pack("<d", want):
                return False
    return True


def haversine_km_batch(origin: Coordinate, lats: Sequence[float],
                       lons: Sequence[float]) -> Any:
    """Distances from ``origin`` to every ``(lats[i], lons[i])``.

    Returns a float column (ndarray on the numpy backend, a plain list
    on the fallback); element ``i`` is bitwise-identical to
    ``haversine_km(origin, (lats[i], lons[i]))``.  The numpy kernel is
    only trusted after a one-time calibration probe; on failure the
    process permanently falls back to the scalar loop.
    """
    global _NUMPY_KERNEL_CALIBRATED
    np = columnar.numpy_module()
    if np is not None:
        if _NUMPY_KERNEL_CALIBRATED is None:
            _NUMPY_KERNEL_CALIBRATED = _calibrate_numpy_kernel(np)
        if _NUMPY_KERNEL_CALIBRATED:
            return _haversine_batch_numpy(np, origin, lats, lons)
    return _haversine_batch_python(origin, lats, lons)


def equirectangular_km(a: Coordinate, b: Coordinate) -> float:
    """Equirectangular-projection distance in kilometres.

    Within the paper's 5-100 km query radii the error versus haversine is
    negligible, and this metric is substantially cheaper to evaluate.
    """
    lat1, lon1 = a
    lat2, lon2 = b
    mean_phi = math.radians((lat1 + lat2) / 2.0)
    x = math.radians(lon2 - lon1) * math.cos(mean_phi)
    y = math.radians(lat2 - lat1)
    return EARTH_RADIUS_KM * math.hypot(x, y)


def euclidean_degrees(a: Coordinate, b: Coordinate) -> float:
    """Plain Euclidean distance in degree space (the paper's literal metric)."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def km_to_degrees_lat(km: float) -> float:
    """Convert a north-south distance in kilometres to degrees of latitude."""
    return km / KM_PER_DEGREE


def km_to_degrees_lon(km: float, lat: float) -> float:
    """Convert an east-west distance in kilometres to degrees of longitude
    at latitude ``lat``.

    Near the poles a kilometre spans an unbounded number of longitude
    degrees; the result is capped at 360.
    """
    cos_lat = math.cos(math.radians(lat))
    if cos_lat <= 1e-9:
        return 360.0
    return min(360.0, km / (KM_PER_DEGREE * cos_lat))


def bounding_box(center: Coordinate, radius_km: float) -> Tuple[float, float, float, float]:
    """Return ``(min_lat, min_lon, max_lat, max_lon)`` of the smallest
    latitude/longitude box containing the circle of ``radius_km`` around
    ``center``.  Latitudes are clamped to [-90, 90]; longitudes may exceed
    [-180, 180] when the circle crosses the antimeridian (callers that care
    should normalise).
    """
    lat, lon = center
    dlat = km_to_degrees_lat(radius_km)
    dlon = km_to_degrees_lon(radius_km, lat)
    return (max(-90.0, lat - dlat), lon - dlon, min(90.0, lat + dlat), lon + dlon)


def min_distance_to_rect_km(point: Coordinate,
                            rect: Tuple[float, float, float, float]) -> float:
    """Exact great-circle distance from ``point`` to the nearest point of
    the lat/lon rectangle ``(min_lat, min_lon, max_lat, max_lon)``.

    Coordinate clamping — the usual shortcut — under-estimates only for
    longitude gaps under 90 degrees; beyond that the nearest point of a
    meridian edge moves poleward off the clamped latitude.  This version
    is exact everywhere: it takes the minimum over the two parallel
    (constant-latitude) edges, where clamping the longitude *is* optimal,
    and the two meridian edges, where the optimal latitude has the closed
    form ``atan2(sin(lat_p), cos(lat_p) * cos(dlon))`` clamped into the
    edge's latitude range.
    """
    min_lat, min_lon, max_lat, max_lon = rect
    lat, lon = point
    if min_lat <= lat <= max_lat and min_lon <= lon <= max_lon:
        return 0.0

    def clamp_lon(value: float) -> float:
        return min(max(value, min_lon), max_lon)

    best = min(
        haversine_km(point, (min_lat, clamp_lon(lon))),
        haversine_km(point, (max_lat, clamp_lon(lon))),
    )
    phi = math.radians(lat)
    for edge_lon in (min_lon, max_lon):
        dlam = math.radians(edge_lon - lon)
        optimal = math.degrees(math.atan2(math.sin(phi),
                                          math.cos(phi) * math.cos(dlam)))
        # ``optimal`` is the extremum on the full great circle through the
        # meridian; for near-antipodal longitude gaps it can land on the
        # antimeridian branch (|optimal| > 90), where clamping alone picks
        # the wrong end of the segment.  Evaluating both endpoints as well
        # keeps the result the true minimum in every case.
        candidates = (min(max(optimal, min_lat), max_lat), min_lat, max_lat)
        for target_lat in candidates:
            best = min(best, haversine_km(point, (target_lat, edge_lon)))
    return best


DEFAULT_METRIC: Metric = haversine_km
