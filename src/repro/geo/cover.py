"""Constructing geohash covers of circular query regions.

Algorithm 4/5, line 1: ``Geohashes = GeoHashCircleQuery(q, r)`` — a list of
geohash cells, at the index's configured encoding length, that completely
covers the circle of radius ``r`` km around the query location while
minimising the area outside the query region (Section IV-B1).

We enumerate the grid cells of the circle's bounding box and keep those
whose minimum distance to the centre is within the radius.  Cells are
returned in geohash (Z-order) order so that the postings lists they select
are fetched in contiguous storage order.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from . import geohash
from .distance import (
    DEFAULT_METRIC,
    Metric,
    bounding_box,
    haversine_km,
    min_distance_to_rect_km,
)

Coordinate = Tuple[float, float]


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


def min_distance_to_cell(center: Coordinate, cell: Tuple[float, float, float, float],
                         metric: Metric = DEFAULT_METRIC) -> float:
    """Minimum distance (km under ``metric``) from ``center`` to a cell
    ``(min_lat, min_lon, max_lat, max_lon)``.

    Exact for the haversine metric (see
    :func:`repro.geo.distance.min_distance_to_rect_km`); other metrics use
    the closest point under coordinate clamping, which is exact for them.
    """
    if metric is haversine_km:
        return min_distance_to_rect_km(center, cell)
    min_lat, min_lon, max_lat, max_lon = cell
    nearest = (_clamp(center[0], min_lat, max_lat),
               _clamp(center[1], min_lon, max_lon))
    return metric(center, nearest)


def max_distance_to_cell(center: Coordinate, cell: Tuple[float, float, float, float],
                         metric: Metric = DEFAULT_METRIC) -> float:
    """Maximum distance (km under ``metric``) from ``center`` to any corner
    of the cell."""
    min_lat, min_lon, max_lat, max_lon = cell
    corners = ((min_lat, min_lon), (min_lat, max_lon),
               (max_lat, min_lon), (max_lat, max_lon))
    return max(metric(center, corner) for corner in corners)


def circle_cover(center: Coordinate, radius_km: float, length: int,
                 metric: Metric = DEFAULT_METRIC) -> List[str]:
    """Return the geohash cells of the given encoding ``length`` that cover
    the circle ``(center, radius_km)``, sorted in Z-order.

    The cover is complete: every point within ``radius_km`` of ``center``
    lies in some returned cell.  It is minimal at cell granularity: every
    returned cell intersects the circle.
    """
    if radius_km < 0:
        raise ValueError(f"radius must be non-negative: {radius_km}")
    lat, lon = center
    if radius_km == 0:
        return [geohash.encode(lat, lon, length)]
    min_lat, min_lon, max_lat, max_lon = bounding_box(center, radius_km)
    lat_span, lon_span = geohash.cell_dimensions_degrees(length)

    cells: List[str] = []
    seen = set()
    # March the cell grid across the bounding box.  Anchor the march on the
    # cell containing the box corner so cell boundaries align with the
    # geohash grid rather than with the box.
    lat_cursor = min_lat
    while lat_cursor <= max_lat + lat_span:
        probe_lat = _clamp(lat_cursor, -90.0, 90.0)
        lon_cursor = min_lon
        while lon_cursor <= max_lon + lon_span:
            probe_lon = lon_cursor
            if probe_lon > 180.0:
                probe_lon -= 360.0
            elif probe_lon < -180.0:
                probe_lon += 360.0
            code = geohash.encode(probe_lat, probe_lon, length)
            if code not in seen:
                seen.add(code)
                cell = geohash.decode_cell(code)
                if min_distance_to_cell(center, cell, metric) <= radius_km:
                    cells.append(code)
            lon_cursor += lon_span
        lat_cursor += lat_span
    cells.sort()
    return cells


def cover_cells_fully_inside(center: Coordinate, radius_km: float, length: int,
                             metric: Metric = DEFAULT_METRIC) -> Tuple[List[str], List[str]]:
    """Split a circle cover into ``(inside, boundary)`` cell lists.

    ``inside`` cells lie entirely within the circle, so tweets in them need
    no exact distance check; ``boundary`` cells intersect the circle edge
    and their tweets must be verified individually (the ``distance > r``
    check at line 16 of Algorithms 4/5).
    """
    inside: List[str] = []
    boundary: List[str] = []
    for code in circle_cover(center, radius_km, length, metric):
        cell = geohash.decode_cell(code)
        if max_distance_to_cell(center, cell, metric) <= radius_km:
            inside.append(code)
        else:
            boundary.append(code)
    return inside, boundary


def cover_area_ratio(center: Coordinate, radius_km: float, length: int,
                     metric: Metric = DEFAULT_METRIC) -> float:
    """Ratio of covered cell area to the circle's area (>= 1).

    A diagnostic for the precision/cell-count trade-off the paper discusses:
    longer encodings give ratios closer to 1 at the cost of more cells.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive: {radius_km}")
    circle_area = math.pi * radius_km * radius_km
    total = 0.0
    for code in circle_cover(center, radius_km, length, metric):
        min_lat, min_lon, max_lat, max_lon = geohash.decode_cell(code)
        height_km = metric((min_lat, min_lon), (max_lat, min_lon))
        width_km = metric(((min_lat + max_lat) / 2.0, min_lon),
                          ((min_lat + max_lat) / 2.0, max_lon))
        total += height_km * width_km
    return total / circle_area
