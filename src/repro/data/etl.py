"""ETL: loading and storing corpora as JSON-lines.

The paper's pipeline crawls JSON from the Twitter REST API and runs ETL
into the metadata database (Figure 3).  This module provides the same
boundary for our system: posts serialise to one JSON object per line
(a faithful subset of a tweet's JSON), and :func:`load_posts` parses them
back, tolerating records without coordinates (which real crawls are
dominated by — the <1 % geo-tagged filter happens here).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, List, Optional

from ..core.model import EdgeKind, Post
from ..text.analyzer import Analyzer


def post_to_json(post: Post) -> str:
    """Serialise one post to a JSON line (tweet-like field names)."""
    obj = {
        "id": post.sid,
        "user_id": post.uid,
        "coordinates": [post.location[0], post.location[1]],
        "text": post.text,
        "words": list(post.words),
    }
    if post.rsid is not None:
        obj["in_reply_to_status_id"] = post.rsid
        obj["in_reply_to_user_id"] = post.ruid
        obj["interaction"] = (post.kind or EdgeKind.REPLY).value
    return json.dumps(obj, separators=(",", ":"))


def dump_posts(posts: Iterable[Post], stream: IO[str]) -> int:
    """Write posts as JSON lines; returns the count written."""
    count = 0
    for post in posts:
        stream.write(post_to_json(post))
        stream.write("\n")
        count += 1
    return count


def parse_post(line: str, analyzer: Optional[Analyzer] = None) -> Optional[Post]:
    """Parse one JSON line into a :class:`Post`.

    Returns None for posts without coordinates (non-geo-tagged tweets are
    out of scope, Section II-A).  If the record carries no pre-analysed
    ``words``, the text is analysed on the fly.
    """
    obj = json.loads(line)
    coordinates = obj.get("coordinates")
    if not coordinates:
        return None
    lat, lon = float(coordinates[0]), float(coordinates[1])
    words = obj.get("words")
    text = obj.get("text", "")
    if words is None:
        if analyzer is None:
            analyzer = Analyzer()
        words = analyzer.analyze(text)
    kind_raw = obj.get("interaction")
    kind = EdgeKind(kind_raw) if kind_raw else None
    rsid = obj.get("in_reply_to_status_id")
    ruid = obj.get("in_reply_to_user_id")
    return Post(
        sid=int(obj["id"]), uid=int(obj["user_id"]), location=(lat, lon),
        words=tuple(words), text=text,
        ruid=int(ruid) if ruid is not None else None,
        rsid=int(rsid) if rsid is not None else None,
        kind=kind,
    )


def load_posts(stream: IO[str], analyzer: Optional[Analyzer] = None) -> List[Post]:
    """Parse a JSON-lines stream, dropping non-geo-tagged records."""
    posts = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        post = parse_post(line, analyzer)
        if post is not None:
            posts.append(post)
    return posts


def iter_posts(stream: IO[str], analyzer: Optional[Analyzer] = None) -> Iterator[Post]:
    """Streaming variant of :func:`load_posts`."""
    for line in stream:
        line = line.strip()
        if not line:
            continue
        post = parse_post(line, analyzer)
        if post is not None:
            yield post
