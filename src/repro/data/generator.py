"""Synthetic geo-tagged tweet corpus generator.

Substitutes for the paper's 514M-tweet Twitter crawl (see DESIGN.md).
The generator reproduces the workload *shapes* the algorithms are
sensitive to:

* **spatial clustering** — users live around real city centres with a
  Gaussian spread, and post near home (plus occasional travel);
* **Zipf keyword skew** — hot keywords (Table II) dominate, with a long
  filler tail;
* **heavy-tailed conversation cascades** — each root tweet seeds a
  branching process whose offspring counts are geometric with occasional
  "viral" boosts, producing the deep threads the popularity score and
  upper bounds care about;
* **skewed user activity** — per-user post counts are Zipf-distributed.

Everything is driven by one seed for reproducibility.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.model import Dataset, EdgeKind, Post
from ..geo.distance import km_to_degrees_lat, km_to_degrees_lon
from ..storage.records import TweetRecord
from ..text.analyzer import Analyzer
from .vocabulary import ZipfVocabulary

Coordinate = Tuple[float, float]


@dataclass(frozen=True)
class City:
    name: str
    lat: float
    lon: float
    weight: float  # relative population / tweet volume


#: Default city mix; Toronto first to honour the paper's running example.
DEFAULT_CITIES: Tuple[City, ...] = (
    City("toronto", 43.6532, -79.3832, 3.0),
    City("new_york", 40.7128, -74.0060, 5.0),
    City("los_angeles", 34.0522, -118.2437, 4.0),
    City("chicago", 41.8781, -87.6298, 2.5),
    City("london", 51.5074, -0.1278, 4.0),
    City("seoul", 37.5665, 126.9780, 3.0),
    City("sao_paulo", -23.5505, -46.6333, 3.0),
    City("sydney", -33.8688, 151.2093, 2.0),
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Corpus-shape parameters."""

    num_users: int = 2000
    num_root_tweets: int = 10000
    seed: int = 42
    cities: Tuple[City, ...] = DEFAULT_CITIES
    city_sigma_km: float = 8.0        # user home spread around city centre
    user_sigma_km: float = 3.0        # post spread around user home
    travel_probability: float = 0.05  # post from a random other city
    words_per_post: Tuple[int, int] = (3, 9)
    reply_mean_children: float = 0.45  # geometric branching mean
    viral_probability: float = 0.02    # chance a root gets a fanout boost
    viral_children: Tuple[int, int] = (8, 25)
    max_thread_depth: int = 6
    forward_fraction: float = 0.35     # of responses, how many are forwards
    user_activity_exponent: float = 1.2
    # Topic emphasis: venue-style posts repeat their subject term ("Pizza
    # pizza place, best pizza in town"), giving hot-keyword tweets tf >= 2.
    # This is both realistic and what lets the max-score algorithm's
    # upper-bound pruning differentiate candidates (Section V-B).
    emphasis_probability: float = 0.3
    emphasis_repeats: Tuple[int, int] = (1, 2)

    def __post_init__(self) -> None:
        if self.num_users < 2:
            raise ValueError("need at least 2 users")
        if self.num_root_tweets < 1:
            raise ValueError("need at least 1 root tweet")
        if not self.cities:
            raise ValueError("need at least one city")


@dataclass
class GeneratedUser:
    uid: int
    city_index: int
    home: Coordinate
    activity: float


@dataclass
class SyntheticCorpus:
    """The generator's output: posts (sid-ordered) plus provenance."""

    posts: List[Post]
    users: List[GeneratedUser]
    config: GeneratorConfig
    _dataset: Optional[Dataset] = field(default=None, repr=False)

    def to_dataset(self) -> Dataset:
        """Materialise as an in-memory :class:`Dataset` (cached)."""
        if self._dataset is None:
            dataset = Dataset()
            dataset.extend(self.posts)
            self._dataset = dataset
        return self._dataset

    def to_records(self) -> List[TweetRecord]:
        """Project onto the metadata relation (sid, uid, lat, lon, ruid,
        rsid) for loading into the metadata database."""
        records = []
        for post in self.posts:
            records.append(TweetRecord(
                sid=post.sid, uid=post.uid,
                lat=post.location[0], lon=post.location[1],
                ruid=post.ruid if post.ruid is not None else -1,
                rsid=post.rsid if post.rsid is not None else -1,
            ))
        return records

    def keyword_frequencies(self) -> Dict[str, int]:
        """Corpus-wide term frequencies (the Table II statistic)."""
        counts: Dict[str, int] = {}
        for post in self.posts:
            for word in post.words:
                counts[word] = counts.get(word, 0) + 1
        return counts

    def sample_location(self, rng: random.Random) -> Coordinate:
        """A location drawn from the corpus's spatial distribution — the
        paper samples query locations "according to the spatial
        distribution in our data set"."""
        post = self.posts[rng.randrange(len(self.posts))]
        return post.location


class CorpusGenerator:
    """Deterministic corpus builder; see :class:`GeneratorConfig`."""

    def __init__(self, config: Optional[GeneratorConfig] = None,
                 analyzer: Optional[Analyzer] = None) -> None:
        self.config = config if config is not None else GeneratorConfig()
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.vocabulary = ZipfVocabulary()

    # -- helpers ----------------------------------------------------------

    def _jitter(self, rng: random.Random, center: Coordinate,
                sigma_km: float) -> Coordinate:
        lat = center[0] + rng.gauss(0.0, km_to_degrees_lat(sigma_km))
        lon = center[1] + rng.gauss(
            0.0, km_to_degrees_lon(sigma_km, center[0]))
        return (max(-89.9, min(89.9, lat)),
                max(-179.9, min(179.9, lon)))

    def _pick_city(self, rng: random.Random) -> int:
        total = sum(city.weight for city in self.config.cities)
        u = rng.random() * total
        running = 0.0
        for index, city in enumerate(self.config.cities):
            running += city.weight
            if u <= running:
                return index
        return len(self.config.cities) - 1

    def _make_users(self, rng: random.Random) -> List[GeneratedUser]:
        users = []
        for uid in range(1, self.config.num_users + 1):
            city_index = self._pick_city(rng)
            city = self.config.cities[city_index]
            home = self._jitter(rng, (city.lat, city.lon),
                                self.config.city_sigma_km)
            rank = rng.randrange(1, self.config.num_users + 1)
            activity = 1.0 / math.pow(rank, self.config.user_activity_exponent)
            users.append(GeneratedUser(uid, city_index, home, activity))
        return users

    def _pick_user(self, rng: random.Random, users: Sequence[GeneratedUser],
                   cumulative: List[float]) -> GeneratedUser:
        u = rng.random() * cumulative[-1]
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return users[lo]

    def _compose_text(self, rng: random.Random,
                      anchor: Optional[str] = None) -> str:
        lo, hi = self.config.words_per_post
        count = rng.randint(lo, hi)
        words = self.vocabulary.sample_many(rng, count)
        if anchor is not None:
            words[0] = anchor
        if words and rng.random() < self.config.emphasis_probability:
            subject = anchor if anchor is not None else rng.choice(words)
            repeats = rng.randint(*self.config.emphasis_repeats)
            for _ in range(repeats):
                words.insert(rng.randrange(len(words) + 1), subject)
        return " ".join(words)

    def _post_location(self, rng: random.Random,
                       user: GeneratedUser) -> Coordinate:
        if rng.random() < self.config.travel_probability:
            city = self.config.cities[self._pick_city(rng)]
            return self._jitter(rng, (city.lat, city.lon),
                                self.config.city_sigma_km)
        return self._jitter(rng, user.home, self.config.user_sigma_km)

    def _num_children(self, rng: random.Random, depth: int,
                      is_viral_root: bool) -> int:
        if depth >= self.config.max_thread_depth:
            return 0
        if is_viral_root and depth == 1:
            return rng.randint(*self.config.viral_children)
        # Geometric distribution with the configured mean, thinning with
        # depth so cascades die out.
        mean = self.config.reply_mean_children / depth
        p = 1.0 / (1.0 + mean)
        count = 0
        while rng.random() > p and count < 50:
            count += 1
        return count

    # -- main entry point ----------------------------------------------------

    def generate(self) -> SyntheticCorpus:
        rng = random.Random(self.config.seed)
        users = self._make_users(rng)
        cumulative: List[float] = []
        running = 0.0
        for user in users:
            running += user.activity
            cumulative.append(running)

        posts: List[Post] = []
        next_sid = 1

        def new_post(user: GeneratedUser, parent: Optional[Post],
                     kind: Optional[EdgeKind],
                     anchor: Optional[str] = None) -> Post:
            nonlocal next_sid
            text = self._compose_text(rng, anchor)
            words = tuple(self.analyzer.analyze(text))
            post = Post(
                sid=next_sid, uid=user.uid,
                location=self._post_location(rng, user),
                words=words, text=text,
                ruid=parent.uid if parent is not None else None,
                rsid=parent.sid if parent is not None else None,
                kind=kind,
            )
            next_sid += 1
            posts.append(post)
            return post

        from .vocabulary import TABLE2_KEYWORDS

        for _root in range(self.config.num_root_tweets):
            author = self._pick_user(rng, users, cumulative)
            is_viral = rng.random() < self.config.viral_probability
            # Viral conversations cluster on popular topics: anchor viral
            # roots on a hot keyword so the corpus has the dense
            # hot-keyword thread mass real Twitter shows.
            anchor = rng.choice(TABLE2_KEYWORDS) if is_viral else None
            root = new_post(author, None, None, anchor)
            frontier = [root]
            depth = 1
            while frontier and depth < self.config.max_thread_depth:
                next_frontier: List[Post] = []
                for parent in frontier:
                    for _child in range(self._num_children(rng, depth, is_viral)):
                        responder = self._pick_user(rng, users, cumulative)
                        kind = (EdgeKind.FORWARD
                                if rng.random() < self.config.forward_fraction
                                else EdgeKind.REPLY)
                        next_frontier.append(new_post(responder, parent, kind))
                frontier = next_frontier
                depth += 1

        return SyntheticCorpus(posts=posts, users=users, config=self.config)


def generate_corpus(num_users: int = 2000, num_root_tweets: int = 10000,
                    seed: int = 42, **overrides) -> SyntheticCorpus:
    """Convenience one-call generator."""
    config = GeneratorConfig(num_users=num_users,
                             num_root_tweets=num_root_tweets,
                             seed=seed, **overrides)
    return CorpusGenerator(config).generate()
