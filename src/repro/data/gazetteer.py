"""Gazetteer-based geocoding of implicit spatial mentions.

The paper's second future-work direction (Section VIII): "There are also
tweets that lack longitude/latitude in the metadata but mention place
name(s) in the short content. It is worth studying how to exploit the
implicit spatial information in such tweets."

This module implements that pipeline:

* a :class:`Gazetteer` of place names (multi-word names supported, e.g.
  "new york"), each with coordinates, a population weight for
  disambiguation, and optional alternate names;
* :class:`Geocoder` — extracts toponym mentions from post text with a
  greedy longest-match scan over the analysed token stream, then
  resolves ambiguity by (1) proximity to a context location (e.g. the
  posting user's known home or earlier geo-tagged posts) and
  (2) population weight;
* :func:`geotag_posts` — fills in missing locations for a post stream
  so those posts can flow into the normal indexing pipeline, tagging
  confidence so callers can threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.model import Post
from ..geo.distance import DEFAULT_METRIC, Metric
from ..text.analyzer import Analyzer

Coordinate = Tuple[float, float]


@dataclass(frozen=True)
class PlaceEntry:
    """One gazetteer record."""

    name: str                 # canonical (analysed) name, space-joined
    location: Coordinate
    population: float = 1.0   # disambiguation weight
    country: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("place name must be non-empty")
        if self.population <= 0:
            raise ValueError(f"population must be positive: {self.population}")


@dataclass(frozen=True)
class GeocodeResult:
    """A resolved toponym mention."""

    mention: str          # matched (analysed) surface form
    place: PlaceEntry
    confidence: float     # in (0, 1]


class Gazetteer:
    """Dictionary of places keyed by analysed name tokens.

    Names are normalised through the same analyzer as post text, so
    "New York" matches the token stream of a tweet mentioning it
    regardless of case or inflection.
    """

    def __init__(self, analyzer: Optional[Analyzer] = None) -> None:
        self._analyzer = analyzer if analyzer is not None else Analyzer(
            use_stopwords=False)
        self._by_tokens: Dict[Tuple[str, ...], List[PlaceEntry]] = {}
        self._max_name_tokens = 1

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_tokens.values())

    def add(self, name: str, location: Coordinate, population: float = 1.0,
            country: str = "", aliases: Sequence[str] = ()) -> PlaceEntry:
        """Register a place under its name and any aliases."""
        tokens = tuple(self._analyzer.analyze(name))
        if not tokens:
            raise ValueError(f"name {name!r} analyses to nothing")
        entry = PlaceEntry(" ".join(tokens), location, population, country)
        for surface in (name, *aliases):
            key = tuple(self._analyzer.analyze(surface))
            if not key:
                continue
            self._by_tokens.setdefault(key, []).append(entry)
            self._max_name_tokens = max(self._max_name_tokens, len(key))
        return entry

    def candidates(self, tokens: Tuple[str, ...]) -> List[PlaceEntry]:
        return list(self._by_tokens.get(tokens, []))

    @property
    def max_name_tokens(self) -> int:
        return self._max_name_tokens

    @property
    def analyzer(self) -> Analyzer:
        return self._analyzer


def default_gazetteer() -> Gazetteer:
    """A small world-city gazetteer matching the corpus generator's
    cities plus a few classic ambiguity cases."""
    gazetteer = Gazetteer()
    gazetteer.add("toronto", (43.6532, -79.3832), 2_930_000, "ca")
    gazetteer.add("new york", (40.7128, -74.0060), 8_336_000, "us",
                  aliases=("nyc", "new york city"))
    gazetteer.add("los angeles", (34.0522, -118.2437), 3_979_000, "us",
                  aliases=("la",))
    gazetteer.add("chicago", (41.8781, -87.6298), 2_693_000, "us")
    gazetteer.add("london", (51.5074, -0.1278), 8_982_000, "gb")
    gazetteer.add("london ontario", (42.9849, -81.2453), 383_000, "ca")
    gazetteer.add("seoul", (37.5665, 126.9780), 9_776_000, "kr")
    gazetteer.add("sao paulo", (-23.5505, -46.6333), 12_325_000, "br")
    gazetteer.add("sydney", (-33.8688, 151.2093), 5_312_000, "au")
    gazetteer.add("paris", (48.8566, 2.3522), 2_161_000, "fr")
    gazetteer.add("paris texas", (33.6609, -95.5555), 24_000, "us")
    return gazetteer


class Geocoder:
    """Resolves place mentions in post text to coordinates."""

    def __init__(self, gazetteer: Optional[Gazetteer] = None,
                 metric: Metric = DEFAULT_METRIC,
                 context_scale_km: float = 500.0) -> None:
        self.gazetteer = gazetteer if gazetteer is not None else default_gazetteer()
        self.metric = metric
        self.context_scale_km = context_scale_km

    # -- extraction ----------------------------------------------------------

    def extract_mentions(self, text: str) -> List[Tuple[Tuple[str, ...],
                                                        List[PlaceEntry]]]:
        """Greedy longest-match scan for gazetteer names in the text.

        Returns ``(matched_tokens, candidate_places)`` pairs, left to
        right, without overlaps.
        """
        tokens = tuple(self.gazetteer.analyzer.analyze(text))
        mentions = []
        index = 0
        limit = self.gazetteer.max_name_tokens
        while index < len(tokens):
            matched = None
            for span in range(min(limit, len(tokens) - index), 0, -1):
                window = tokens[index:index + span]
                candidates = self.gazetteer.candidates(window)
                if candidates:
                    matched = (window, candidates)
                    index += span
                    break
            if matched is not None:
                mentions.append(matched)
            else:
                index += 1
        return mentions

    # -- disambiguation --------------------------------------------------------

    def _score(self, place: PlaceEntry, context: Optional[Coordinate],
               max_population: float) -> float:
        population_part = place.population / max_population
        if context is None:
            return population_part
        distance = self.metric(context, place.location)
        proximity_part = 1.0 / (1.0 + distance / self.context_scale_km)
        # Proximity dominates when a context location is known.
        return 0.3 * population_part + 0.7 * proximity_part

    def resolve(self, text: str,
                context: Optional[Coordinate] = None) -> Optional[GeocodeResult]:
        """Geocode the text's most confident place mention, if any."""
        mentions = self.extract_mentions(text)
        best: Optional[GeocodeResult] = None
        for tokens, candidates in mentions:
            max_population = max(place.population for place in candidates)
            scored = sorted(
                ((self._score(place, context, max_population), place)
                 for place in candidates),
                key=lambda pair: -pair[0])
            top_score, top_place = scored[0]
            # Confidence: margin over the runner-up candidate, scaled by
            # the specificity of the mention (longer names are safer).
            margin = (top_score - scored[1][0]) if len(scored) > 1 else 1.0
            specificity = min(1.0, len(tokens) / 2.0)
            confidence = max(0.05, min(1.0, 0.5 * (margin + specificity)))
            result = GeocodeResult(" ".join(tokens), top_place, confidence)
            if best is None or result.confidence > best.confidence:
                best = result
        return best

    # -- post enrichment --------------------------------------------------------

    def geotag_post(self, post: Post,
                    context: Optional[Coordinate] = None) -> Optional[Post]:
        """Return a located copy of a location-less post, or None when no
        place mention resolves."""
        result = self.resolve(post.text, context)
        if result is None:
            return None
        return replace(post, location=result.place.location)


def geotag_posts(posts: Iterable[Post], geocoder: Optional[Geocoder] = None,
                 min_confidence: float = 0.3,
                 user_context: Optional[Dict[int, Coordinate]] = None
                 ) -> Tuple[List[Post], int]:
    """Fill in locations for posts missing them (marked with location
    ``(None, None)``-style sentinel is not used — posts with a location
    pass through unchanged; posts whose location is the ``UNLOCATED``
    sentinel get geocoded).

    Returns ``(posts_with_locations, geocoded_count)``; unresolvable
    posts are dropped, mirroring the <1 % geo-tagged filter of the
    paper's ETL.
    """
    if geocoder is None:
        geocoder = Geocoder()
    user_context = user_context or {}
    located: List[Post] = []
    geocoded = 0
    for post in posts:
        if not is_unlocated(post.location):
            located.append(post)
            continue
        context = user_context.get(post.uid)
        result = geocoder.resolve(post.text, context)
        if result is None or result.confidence < min_confidence:
            continue
        located.append(replace(post, location=result.place.location))
        geocoded += 1
    return located, geocoded


#: Sentinel location for posts lacking coordinates.
UNLOCATED: Coordinate = (float("nan"), float("nan"))


def is_unlocated(location: Coordinate) -> bool:
    """True when either coordinate is NaN (the UNLOCATED sentinel)."""
    lat, lon = location
    return lat != lat or lon != lon
