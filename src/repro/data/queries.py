"""Query workload generation (Section VI-B1).

The paper selects "30 meaningful keywords including the top-10 frequent
ones", builds 1-keyword queries from that set, 2- and 3-keyword queries
from AOL query-log phrases containing a hot keyword (e.g. "restaurant
seafood"), samples each query's location from the data set's spatial
distribution, and forms a 90-query set — 30 per keyword count.

Our AOL substitute pairs a meaningful keyword with modifier words, which
reproduces the structural property that matters: multi-keyword queries
contain one frequent anchor term plus rarer qualifiers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.model import Semantics, TkLUSQuery
from ..text.analyzer import Analyzer
from .generator import SyntheticCorpus
from .vocabulary import EXTRA_MEANINGFUL_KEYWORDS, MODIFIER_WORDS, TABLE2_KEYWORDS

Coordinate = Tuple[float, float]

#: The paper's 30 meaningful keywords: Table II's 10 plus 20 more.
MEANINGFUL_KEYWORDS: List[str] = TABLE2_KEYWORDS + EXTRA_MEANINGFUL_KEYWORDS


@dataclass(frozen=True)
class QuerySpec:
    """A location-free query template: raw keyword strings plus how many
    keywords it has.  Bound to a location/radius/k at issue time."""

    keywords: Tuple[str, ...]

    @property
    def num_keywords(self) -> int:
        return len(self.keywords)


class QueryWorkload:
    """The 90-query workload of Section VI-B1, bound to a corpus.

    ``specs(n)`` returns the 30 templates with ``n`` keywords; ``bind``
    attaches a location sampled from the corpus's spatial distribution.
    """

    def __init__(self, corpus: SyntheticCorpus, seed: int = 7,
                 analyzer: Optional[Analyzer] = None) -> None:
        self._corpus = corpus
        self._rng = random.Random(seed)
        self._analyzer = analyzer if analyzer is not None else Analyzer()
        self._specs: dict = {1: [], 2: [], 3: []}
        self._build_specs()

    def _build_specs(self) -> None:
        rng = self._rng
        # 30 single-keyword queries: one draw per meaningful keyword.
        singles = list(MEANINGFUL_KEYWORDS)
        rng.shuffle(singles)
        self._specs[1] = [QuerySpec((keyword,)) for keyword in singles[:30]]
        # 30 two-keyword and 30 three-keyword queries: anchor + modifiers,
        # AOL style ("restaurant seafood", "morroccan restaurants houston").
        for count in (2, 3):
            specs = []
            while len(specs) < 30:
                anchor = rng.choice(MEANINGFUL_KEYWORDS)
                modifiers = rng.sample(MODIFIER_WORDS, count - 1)
                keywords = tuple([anchor] + modifiers)
                spec = QuerySpec(keywords)
                if spec not in specs:
                    specs.append(spec)
            self._specs[count] = specs

    def specs(self, num_keywords: int) -> List[QuerySpec]:
        if num_keywords not in self._specs:
            raise ValueError(f"workload has 1-3 keyword queries, not {num_keywords}")
        return list(self._specs[num_keywords])

    def all_specs(self) -> List[QuerySpec]:
        """The full 90-template set."""
        return self.specs(1) + self.specs(2) + self.specs(3)

    def sample_location(self) -> Coordinate:
        return self._corpus.sample_location(self._rng)

    def bind(self, spec: QuerySpec, radius_km: float, k: int = 10,
             semantics: Semantics = Semantics.OR,
             location: Optional[Coordinate] = None) -> TkLUSQuery:
        """Bind a template to a concrete query."""
        if location is None:
            location = self.sample_location()
        return TkLUSQuery.create(
            location=location, radius_km=radius_km, keywords=list(spec.keywords),
            k=k, semantics=semantics, analyzer=self._analyzer)

    def make_queries(self, num_keywords: int, radius_km: float, k: int = 10,
                     semantics: Semantics = Semantics.OR,
                     limit: Optional[int] = None) -> List[TkLUSQuery]:
        """Bind all (or the first ``limit``) templates of one keyword
        count, each at a freshly sampled location."""
        specs = self.specs(num_keywords)
        if limit is not None:
            specs = specs[:limit]
        return [self.bind(spec, radius_km, k, semantics) for spec in specs]

    def random_queries(self, count: int, radius_km: float, k: int = 10,
                       semantics: Semantics = Semantics.OR) -> List[TkLUSQuery]:
        """``count`` queries drawn at random from the 90-template set —
        how the geohash-length experiment (Fig 7) samples its queries."""
        pool = self.all_specs()
        chosen = [pool[self._rng.randrange(len(pool))] for _ in range(count)]
        return [self.bind(spec, radius_km, k, semantics) for spec in chosen]
