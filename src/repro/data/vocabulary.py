"""Vocabulary model for the synthetic corpus.

Seeded with the paper's Table II hot keywords and a pool of venue/topic
and filler words; term frequencies follow a Zipf law, which is the
rank-frequency shape of real microblog text and the property the hot-
keyword upper-bound optimisation (Section V-B) exploits.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

#: Table II: the top-10 frequent keywords of the paper's data set, in
#: frequency-rank order.
TABLE2_KEYWORDS: List[str] = [
    "restaurant", "game", "cafe", "shop", "hotel",
    "club", "coffee", "film", "pizza", "mall",
]

#: The remaining 20 of the paper's "30 meaningful keywords" are not
#: listed in the paper; these are plausible venue/activity terms of the
#: same flavour.
EXTRA_MEANINGFUL_KEYWORDS: List[str] = [
    "museum", "park", "beach", "concert", "bar",
    "gym", "airport", "library", "theater", "market",
    "sushi", "burger", "bakery", "zoo", "stadium",
    "spa", "gallery", "church", "bridge", "tower",
]

#: Modifier words used to build 2/3-keyword queries the way the paper
#: draws them from AOL logs ("restaurant seafood", "morroccan
#: restaurants houston").
MODIFIER_WORDS: List[str] = [
    "seafood", "mexican", "italian", "french", "cheap", "luxury", "best",
    "downtown", "night", "live", "family", "romantic", "vegan", "rooftop",
    "historic", "local", "famous", "quiet", "busy", "new",
]

#: Generic filler vocabulary for the long Zipf tail.
FILLER_WORDS: List[str] = """
love great amazing awesome beautiful happy fun nice good time day place
city street music food drink friends weekend morning evening sunny rain
walk view photo trip visit work home lunch dinner breakfast party dance
show travel flight train station building window door table chair light
river lake mountain garden flower tree winter summer spring autumn snow
run bike drive road corner square plaza avenue block neighborhood crowd
smile laugh story book movie song band artist stage ticket seat line wait
open close early late fresh sweet spicy salty warm cold hot cool
""".split()


class ZipfVocabulary:
    """Draws words with Zipf(s) rank-frequency over a fixed word list.

    The word list is the concatenation of hot keywords (ranks 1-10, per
    Table II), meaningful keywords, modifiers, and filler — so hot
    keywords really are the most frequent terms in the corpus.
    """

    def __init__(self, exponent: float = 1.0,
                 words: Sequence[str] = ()) -> None:
        if not words:
            words = (TABLE2_KEYWORDS + EXTRA_MEANINGFUL_KEYWORDS
                     + MODIFIER_WORDS + FILLER_WORDS)
        self.words = list(words)
        weights = [1.0 / math.pow(rank, exponent)
                   for rank in range(1, len(self.words) + 1)]
        total = sum(weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)

    def sample(self, rng: random.Random) -> str:
        """Draw one word."""
        u = rng.random()
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return self.words[lo]

    def sample_many(self, rng: random.Random, count: int) -> List[str]:
        return [self.sample(rng) for _ in range(count)]
