"""Data substrate: synthetic corpus generation, query workloads, ETL.

Substitutes for the paper's real Twitter crawl and AOL query log — see
the Substitutions section of DESIGN.md.
"""

from .etl import dump_posts, iter_posts, load_posts, parse_post, post_to_json
from .generator import (
    City,
    CorpusGenerator,
    DEFAULT_CITIES,
    GeneratedUser,
    GeneratorConfig,
    SyntheticCorpus,
    generate_corpus,
)
from .queries import MEANINGFUL_KEYWORDS, QuerySpec, QueryWorkload
from .vocabulary import (
    EXTRA_MEANINGFUL_KEYWORDS,
    MODIFIER_WORDS,
    TABLE2_KEYWORDS,
    ZipfVocabulary,
)

__all__ = [
    "City",
    "CorpusGenerator",
    "DEFAULT_CITIES",
    "EXTRA_MEANINGFUL_KEYWORDS",
    "GeneratedUser",
    "GeneratorConfig",
    "MEANINGFUL_KEYWORDS",
    "MODIFIER_WORDS",
    "QuerySpec",
    "QueryWorkload",
    "SyntheticCorpus",
    "TABLE2_KEYWORDS",
    "ZipfVocabulary",
    "dump_posts",
    "generate_corpus",
    "iter_posts",
    "load_posts",
    "parse_post",
    "post_to_json",
]
