"""repro.obs — unified observability: tracing spans, metrics, profiles.

One switch controls the whole layer.  Instrumented code throughout the
system (storage buffer pools, the hybrid index, MapReduce tasks, DFS
datanodes, the query processors) calls the module-level helpers below;
while observability is **disabled** (the default) every helper is a
no-op that allocates nothing, so the instrumentation stays resident in
hot paths at negligible cost.

Enable it for a region of code with :func:`observed`::

    from repro import obs

    with obs.observed() as (tracer, registry):
        engine.search(query, method="max")
    print(obs.render_span_tree(tracer.roots()))
    print(obs.render_metrics(registry))

or globally with :func:`enable` / :func:`disable` (what the CLI's
``--trace`` flag does).

For a continuously running service, :func:`enable_runtime` installs the
always-on layer from :mod:`repro.obs.runtime` instead: time-series
metrics in bounded ring buffers, sampled trace retention with tail
capture of slow traces, a slow-query log, and SLO tracking — the same
helpers below feed it, so instrumented code does not change.

Span names used by the built-in instrumentation are documented in
``docs/OBSERVABILITY.md`` (``query.*``, ``mapreduce.*``,
``storage.page_read``), as are the metric names and units.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Optional, Tuple

from .exporters import (
    parse_spans_jsonl,
    render_metrics,
    render_span_tree,
    span_to_dict,
    spans_to_dicts,
    to_prometheus_text,
    write_spans_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counter_dict,
)
from .health import (
    ComponentHealth,
    HealthMonitor,
    HealthReport,
    HealthStatus,
    HealthThresholds,
)
from .profile import QueryProfile
from .runtime import RuntimeConfig, RuntimeRegistry, RuntimeTelemetry
from .timeseries import TimeSeriesCounter, TimeSeriesHistogram
from .tracer import NULL_SPAN, NULL_SPAN_CONTEXT, Span, Tracer

__all__ = [
    "ComponentHealth",
    "Counter",
    "Gauge",
    "HealthMonitor",
    "HealthReport",
    "HealthStatus",
    "HealthThresholds",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_SPAN_CONTEXT",
    "QueryProfile",
    "RuntimeConfig",
    "RuntimeRegistry",
    "RuntimeTelemetry",
    "Span",
    "TimeSeriesCounter",
    "TimeSeriesHistogram",
    "Tracer",
    "disable",
    "disable_runtime",
    "enable",
    "enable_runtime",
    "event",
    "get_registry",
    "get_runtime",
    "get_tracer",
    "inc",
    "is_enabled",
    "merge_counter_dict",
    "observe",
    "observed",
    "parse_spans_jsonl",
    "render_metrics",
    "render_span_tree",
    "set_gauge",
    "span_to_dict",
    "spans_to_dicts",
    "to_prometheus_text",
    "trace",
    "write_spans_jsonl",
]


class _State:
    __slots__ = ("active", "tracer", "registry", "capture_spans", "runtime")

    def __init__(self) -> None:
        self.active = False
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.capture_spans = True
        self.runtime: Optional[RuntimeTelemetry] = None


_STATE = _State()


def enable(tracer: Optional[Tracer] = None,
           registry: Optional[MetricsRegistry] = None,
           capture_spans: bool = True) -> Tuple[Tracer, MetricsRegistry]:
    """Switch observability on, installing fresh collectors by default.

    ``capture_spans=False`` records metrics only — the right mode for
    benchmark runs that want counters without accumulating span trees in
    memory.  Enabling the classic mode replaces any installed runtime.
    """
    _STATE.runtime = None
    _STATE.tracer = tracer if tracer is not None else Tracer()
    _STATE.registry = registry if registry is not None else MetricsRegistry()
    _STATE.capture_spans = capture_spans
    _STATE.active = True
    return _STATE.tracer, _STATE.registry


def enable_runtime(
        config: Optional[RuntimeConfig] = None,
        runtime: Optional[RuntimeTelemetry] = None) -> RuntimeTelemetry:
    """Switch the continuous telemetry layer on (see
    :mod:`repro.obs.runtime`).  The runtime's registry and tracer become
    the active collectors, so every existing instrumentation call site
    feeds time-series metrics and sampled trace retention."""
    if runtime is None:
        runtime = RuntimeTelemetry(config)
    elif config is not None:
        raise ValueError("pass either config or a built runtime, not both")
    _STATE.runtime = runtime
    _STATE.tracer = runtime.tracer
    _STATE.registry = runtime.registry
    _STATE.capture_spans = runtime.config.span_mode != "none"
    _STATE.active = True
    return runtime


def disable_runtime() -> None:
    """Remove the runtime layer and switch observability off."""
    _STATE.runtime = None
    _STATE.active = False


def get_runtime() -> Optional[RuntimeTelemetry]:
    """The installed runtime telemetry, or None when not in runtime
    mode (disabled or classic ``enable()``)."""
    return _STATE.runtime


def disable() -> None:
    """Switch observability off (helpers become no-ops again)."""
    _STATE.active = False
    _STATE.runtime = None


def is_enabled() -> bool:
    return _STATE.active


def get_tracer() -> Tracer:
    """The currently installed tracer (even while disabled)."""
    return _STATE.tracer


def get_registry() -> MetricsRegistry:
    """The currently installed metrics registry (even while disabled)."""
    return _STATE.registry


@contextmanager
def observed(tracer: Optional[Tracer] = None,
             registry: Optional[MetricsRegistry] = None,
             capture_spans: bool = True):
    """Enable observability for a ``with`` block, restoring the previous
    state (including any previously installed collectors) on exit.

    Yields ``(tracer, registry)`` for inspection after the block.
    """
    previous = (_STATE.active, _STATE.tracer, _STATE.registry,
                _STATE.capture_spans, _STATE.runtime)
    pair = enable(tracer, registry, capture_spans)
    try:
        yield pair
    finally:
        (_STATE.active, _STATE.tracer, _STATE.registry,
         _STATE.capture_spans, _STATE.runtime) = previous


# -- hot-path helpers (no-ops while disabled) -------------------------------

def trace(name: str, **attributes: Any):
    """Context manager for a nested span; the shared no-op context while
    observability is disabled.  In runtime mode the runtime decides
    whether a span is built (head sampling in ``span_mode="sampled"``)."""
    state = _STATE
    if not (state.active and state.capture_spans):
        return NULL_SPAN_CONTEXT
    runtime = state.runtime
    if runtime is not None:
        return runtime.trace_context(name, attributes)
    return state.tracer.span(name, **attributes)


def event(name: str, **attributes: Any) -> None:
    """Record a zero-duration span under the current one."""
    state = _STATE
    if state.active and state.capture_spans:
        runtime = state.runtime
        if runtime is not None and not runtime.event_enabled():
            return
        state.tracer.event(name, **attributes)


def inc(name: str, amount: int = 1) -> None:
    """Increment a registry counter."""
    state = _STATE
    if state.active:
        state.registry.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation."""
    state = _STATE
    if state.active:
        state.registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge."""
    state = _STATE
    if state.active:
        state.registry.gauge(name).set(value)
