"""repro.obs — unified observability: tracing spans, metrics, profiles.

One switch controls the whole layer.  Instrumented code throughout the
system (storage buffer pools, the hybrid index, MapReduce tasks, DFS
datanodes, the query processors) calls the module-level helpers below;
while observability is **disabled** (the default) every helper is a
no-op that allocates nothing, so the instrumentation stays resident in
hot paths at negligible cost.

Enable it for a region of code with :func:`observed`::

    from repro import obs

    with obs.observed() as (tracer, registry):
        engine.search(query, method="max")
    print(obs.render_span_tree(tracer.roots()))
    print(obs.render_metrics(registry))

or globally with :func:`enable` / :func:`disable` (what the CLI's
``--trace`` flag does).

Span names used by the built-in instrumentation are documented in
``docs/OBSERVABILITY.md`` (``query.*``, ``mapreduce.*``,
``storage.page_read``), as are the metric names and units.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Optional, Tuple

from .exporters import (
    render_metrics,
    render_span_tree,
    span_to_dict,
    spans_to_dicts,
    to_prometheus_text,
    write_spans_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counter_dict,
)
from .profile import QueryProfile
from .tracer import NULL_SPAN, NULL_SPAN_CONTEXT, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_SPAN_CONTEXT",
    "QueryProfile",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "event",
    "get_registry",
    "get_tracer",
    "inc",
    "is_enabled",
    "merge_counter_dict",
    "observe",
    "observed",
    "render_metrics",
    "render_span_tree",
    "set_gauge",
    "span_to_dict",
    "spans_to_dicts",
    "to_prometheus_text",
    "trace",
    "write_spans_jsonl",
]


class _State:
    __slots__ = ("active", "tracer", "registry", "capture_spans")

    def __init__(self) -> None:
        self.active = False
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.capture_spans = True


_STATE = _State()


def enable(tracer: Optional[Tracer] = None,
           registry: Optional[MetricsRegistry] = None,
           capture_spans: bool = True) -> Tuple[Tracer, MetricsRegistry]:
    """Switch observability on, installing fresh collectors by default.

    ``capture_spans=False`` records metrics only — the right mode for
    benchmark runs that want counters without accumulating span trees in
    memory.
    """
    _STATE.tracer = tracer if tracer is not None else Tracer()
    _STATE.registry = registry if registry is not None else MetricsRegistry()
    _STATE.capture_spans = capture_spans
    _STATE.active = True
    return _STATE.tracer, _STATE.registry


def disable() -> None:
    """Switch observability off (helpers become no-ops again)."""
    _STATE.active = False


def is_enabled() -> bool:
    return _STATE.active


def get_tracer() -> Tracer:
    """The currently installed tracer (even while disabled)."""
    return _STATE.tracer


def get_registry() -> MetricsRegistry:
    """The currently installed metrics registry (even while disabled)."""
    return _STATE.registry


@contextmanager
def observed(tracer: Optional[Tracer] = None,
             registry: Optional[MetricsRegistry] = None,
             capture_spans: bool = True):
    """Enable observability for a ``with`` block, restoring the previous
    state (including any previously installed collectors) on exit.

    Yields ``(tracer, registry)`` for inspection after the block.
    """
    previous = (_STATE.active, _STATE.tracer, _STATE.registry,
                _STATE.capture_spans)
    pair = enable(tracer, registry, capture_spans)
    try:
        yield pair
    finally:
        (_STATE.active, _STATE.tracer, _STATE.registry,
         _STATE.capture_spans) = previous


# -- hot-path helpers (no-ops while disabled) -------------------------------

def trace(name: str, **attributes: Any):
    """Context manager for a nested span; the shared no-op context while
    observability is disabled."""
    state = _STATE
    if not (state.active and state.capture_spans):
        return NULL_SPAN_CONTEXT
    return state.tracer.span(name, **attributes)


def event(name: str, **attributes: Any) -> None:
    """Record a zero-duration span under the current one."""
    state = _STATE
    if state.active and state.capture_spans:
        state.tracer.event(name, **attributes)


def inc(name: str, amount: int = 1) -> None:
    """Increment a registry counter."""
    state = _STATE
    if state.active:
        state.registry.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation."""
    state = _STATE
    if state.active:
        state.registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge."""
    state = _STATE
    if state.active:
        state.registry.gauge(name).set(value)
